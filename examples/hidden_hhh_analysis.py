#!/usr/bin/env python3
"""Figure 2 reproduction: percentage of hidden HHHs.

Replicates the paper's grid — window sizes {5, 10, 20} s, thresholds
{1%, 5%, 10%}, sliding step 1 s, one-dimensional source-IP HHH weighted by
bytes — over the four synthetic "CAIDA days", driven entirely through the
experiment registry and string-addressable TraceSpecs (the same path as
``repro-hhh run hidden-hhh``).

Run with::

    python examples/hidden_hhh_analysis.py [duration_seconds]

Duration defaults to 120 s per day (the paper uses 1 h; the effect is
duration-stable, see EXPERIMENTS.md).
"""

import sys

from repro.analysis import ascii_bars
from repro.experiments import run_experiment


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    print(f"generating 4 synthetic days x {duration:.0f}s ...")
    result = run_experiment(
        "hidden-hhh",
        trace_specs=[
            f"caida:day={day},duration={duration}" for day in range(4)
        ],
        labels=[f"day{day}" for day in range(4)],
    )

    print("\nFigure 2 — percentage of hidden HHHs")
    print(result.to_table())
    print("\nbar view:")
    labels = [
        f"{r['trace']} W={r['window_s']:g}s phi={r['phi_%']:g}%"
        for r in result.rows
    ]
    print(ascii_bars(labels, [r["hidden_%"] for r in result.rows]))
    print(
        f"\nmax hidden: {result.headline['max_hidden_percent']:.1f}% "
        "(paper: up to 34%; 24-34% at 1% and 18-24% at 5% thresholds)"
    )


if __name__ == "__main__":
    main()
