#!/usr/bin/env python3
"""Figure 2 reproduction: percentage of hidden HHHs.

Replicates the paper's grid — window sizes {5, 10, 20} s, thresholds
{1%, 5%, 10%}, sliding step 1 s, one-dimensional source-IP HHH weighted by
bytes — over the four synthetic "CAIDA days".

Run with::

    python examples/hidden_hhh_analysis.py [duration_seconds]

Duration defaults to 120 s per day (the paper uses 1 h; the effect is
duration-stable, see EXPERIMENTS.md).
"""

import sys

from repro.analysis import HiddenHHHExperiment
from repro.trace import presets


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    print(f"generating 4 synthetic days x {duration:.0f}s ...")
    traces = presets.all_days(duration=duration)

    experiment = HiddenHHHExperiment(
        window_sizes=(5.0, 10.0, 20.0),
        thresholds=(0.01, 0.05, 0.10),
        step=1.0,
    )
    result = experiment.run_days(traces)

    print("\nFigure 2 — percentage of hidden HHHs")
    print(result.to_table())
    print("\nbar view:")
    print(result.to_bars())
    print(
        f"\nmax hidden: {result.max_hidden_percent():.1f}% "
        "(paper: up to 34%; 24-34% at 1% and 18-24% at 5% thresholds)"
    )


if __name__ == "__main__":
    main()
