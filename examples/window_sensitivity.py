#!/usr/bin/env python3
"""Figure 3 reproduction: micro window-size variations change the result.

Replicates the paper's setup: a 10-second baseline window compared against
windows 10-100 ms shorter (same start), Jaccard similarity of the reported
HHH sets at a 5% threshold, CDF across windows — driven through the
experiment registry (the same path as ``repro-hhh run window-sensitivity``).

Run with::

    python examples/window_sensitivity.py [duration_seconds]

Duration defaults to 240 s (the paper uses a 20-minute trace; pass 1200
for the full-length run).
"""

import sys

from repro.experiments import run_experiment


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 240.0
    print(f"generating sensitivity trace ({duration:.0f}s) ...")
    result = run_experiment(
        "window-sensitivity",
        trace_specs=[f"sensitivity:duration={duration}"],
        overrides={"baseline_size": 10.0, "phi": 0.05},
    )

    print("\nFigure 3 — Jaccard similarity vs shrink delta")
    print(result.to_table())
    sensitivity = result.extras["sensitivity"]
    for delta in (0.04, 0.10):
        print()
        print(sensitivity.to_cdf_plot(delta))
    print(
        "\npaper: at delta=100ms the reported set differs by ~25% "
        "(J~0.75), at 40ms by ~11% (J~0.89), for at least 70% of windows"
    )


if __name__ == "__main__":
    main()
