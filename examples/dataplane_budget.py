#!/usr/bin/env python3
"""Match-action friendliness: what each detector costs on a switch.

The poster closes with "a call for a new set of windowless-based algorithms
to be implemented with the match-action paradigm".  This example maps every
detector in the library onto the pipeline model of :mod:`repro.dataplane`
and prints the resource comparison — including whether the scheme needs
control-plane window resets (the practice the paper critiques) or per-cell
timestamps (what continuous-time decay needs instead).

Run with::

    python examples/dataplane_budget.py
"""

from repro.analysis.render import format_table
from repro.dataplane import (
    PipelineConstraints,
    map_hashpipe,
    map_ondemand_tdbf,
    map_rhhh,
    map_sliding_window_hh,
    map_spacesaving_cache,
)


def main() -> None:
    programs = [
        map_spacesaving_cache(capacity=256),
        map_hashpipe(stage_slots=256, stages=4),
        map_rhhh(counters_per_level=128, num_levels=5),
        map_sliding_window_hh(num_buckets=5, capacity_per_bucket=128),
        map_ondemand_tdbf(cells=4096, hashes=4),
    ]
    constraints = PipelineConstraints()

    rows = []
    for program in programs:
        row = program.profile().to_row()
        row["fits 12-stage target"] = "yes" if program.fits(constraints) else "NO"
        rows.append(row)

    print("resource profiles on a Tofino-like 12-stage target:")
    print(format_table(rows))
    print(
        "\nreading: the on-demand TDBF needs neither window resets nor more "
        "stages than HashPipe — decay happens in the same register access "
        "that counts the packet, using the timestamp already in pipeline "
        "metadata.  That is the concrete sense in which the paper's "
        "proposed direction is match-action friendly."
    )

    for program in programs:
        problems = program.validate(constraints)
        for problem in problems:
            print(f"constraint violation: {problem}")


if __name__ == "__main__":
    main()
