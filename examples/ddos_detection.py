#!/usr/bin/env python3
"""DDoS detection with the windowless time-decaying HHH detector.

The scenario the paper's introduction motivates: attack traffic arrives as
subnet-level episodes at arbitrary instants.  A disjoint-window detector
reports at window boundaries only — and an episode split across a boundary
can stay under the per-window threshold in both halves.  The time-decaying
detector (Section 3's direction, built out in :mod:`repro.decay`) has no
boundaries: it can be queried at any instant, and an episode is visible as
soon as its decayed volume crosses the threshold.

Run with::

    python examples/ddos_detection.py
"""

from repro.decay.laws import ExponentialDecay
from repro.decay.td_hhh import TimeDecayingHHH
from repro.trace.config import HeavyEpisodeConfig, SyntheticTraceConfig
from repro.trace.generator import SyntheticTraceGenerator

WINDOW = 10.0
PHI = 0.10


def main() -> None:
    config = SyntheticTraceConfig(
        duration_s=120.0,
        seed=909,
        episodes=HeavyEpisodeConfig(
            episodes_per_minute=2.0,
            min_share=0.25,
            max_share=0.45,
            min_duration_s=6.0,
            max_duration_s=15.0,
            subnet_fraction=1.0,  # all attacks are subnet-level
        ),
    )
    generator = SyntheticTraceGenerator(config)
    trace = generator.generate()
    attacks = generator.episodes
    print(f"trace: {len(trace)} packets, {len(attacks)} injected attacks")
    for i, ep in enumerate(attacks):
        print(f"   attack {i}: t=[{ep.start:6.1f}, {ep.end:6.1f}] "
              f"target_share={ep.target_share:.0%} subnet={ep.is_subnet}")

    detector = TimeDecayingHHH(
        law=ExponentialDecay(tau=WINDOW), counters_per_level=128
    )

    # Stream packets; query once a second (any cadence works — there is no
    # window to align with).
    alarms: list[tuple[float, str]] = []
    next_query = 1.0
    for i in range(len(trace)):
        now = float(trace.ts[i])
        while now >= next_query:
            result = detector.query(PHI, next_query)
            for item in result.items:
                if 8 <= item.prefix.length <= 24:  # aggregate-level alarms
                    alarms.append((next_query, str(item.prefix)))
            next_query += 1.0
        detector.update(int(trace.src[i]), float(trace.length[i]), now)

    print(f"\n{len(alarms)} aggregate-level alarm firings; first per prefix:")
    seen: dict[str, float] = {}
    for t, prefix in alarms:
        seen.setdefault(prefix, t)
    for prefix, t in sorted(seen.items(), key=lambda kv: kv[1]):
        print(f"   t={t:6.1f}s  {prefix}")

    # Score: was every attack alarmed during its activity span?
    detected = 0
    for ep in attacks:
        fired = [t for t, _ in alarms if ep.start <= t <= ep.end + WINDOW]
        detected += bool(fired)
    if attacks:
        print(f"\nattacks alarmed during their span: {detected}/{len(attacks)}")


if __name__ == "__main__":
    main()
