#!/usr/bin/env python3
"""Quickstart: generate a trace, find its hierarchical heavy hitters, and
see what disjoint windows hide.

Run with::

    python examples/quickstart.py
"""

from repro import ExactHHH, presets
from repro.analysis import HiddenHHHExperiment
from repro.trace.stats import compute_stats


def main() -> None:
    # 1. A synthetic Tier-1-like trace (60 seconds, seeded, reproducible).
    trace = presets.caida_like_day(day=0, duration=60.0)
    print("trace:")
    for line in compute_stats(trace).to_lines():
        print("   " + line)

    # 2. Exact HHH over one 10-second window at a 5% byte threshold.
    detector = ExactHHH(phi=0.05)
    result = detector.detect_window(trace, 10.0, 20.0)
    print(f"\nHHHs in [10s, 20s) at 5% of {result.total_bytes} bytes:")
    for item in result:
        share = item.discounted_bytes / result.total_bytes
        print(f"   {str(item.prefix):20s} {item.discounted_bytes:>12d} B "
              f"({share:.1%} discounted)")

    # 3. The paper's Figure 2 question: how much do disjoint windows hide
    #    compared to a sliding window of the same length?
    experiment = HiddenHHHExperiment(window_sizes=(10.0,), thresholds=(0.05,))
    hidden = experiment.run(trace, label="day0")
    print("\nhidden HHHs (disjoint vs sliding, step 1s):")
    print(hidden.to_table())


if __name__ == "__main__":
    main()
