#!/usr/bin/env python3
"""Quickstart: generate a trace, find its hierarchical heavy hitters, and
see what disjoint windows hide.

Everything goes through the string-addressable APIs: traces are built from
:class:`repro.trace.TraceSpec` strings and experiments come from the
registry (``repro-hhh experiments`` lists them).

Run with::

    python examples/quickstart.py
"""

from repro import ExactHHH
from repro.experiments import make_experiment
from repro.trace import build_trace
from repro.trace.stats import compute_stats


def main() -> None:
    # 1. A synthetic Tier-1-like trace (60 seconds, seeded, reproducible),
    #    addressed as a string — the same spec works as
    #    `repro-hhh run <experiment> --trace caida:day=0,duration=60`.
    trace = build_trace("caida:day=0,duration=60")
    print("trace:")
    for line in compute_stats(trace).to_lines():
        print("   " + line)

    # 2. Exact HHH over one 10-second window at a 5% byte threshold.
    detector = ExactHHH(phi=0.05)
    result = detector.detect_window(trace, 10.0, 20.0)
    print(f"\nHHHs in [10s, 20s) at 5% of {result.total_bytes} bytes:")
    for item in result:
        share = item.discounted_bytes / result.total_bytes
        print(f"   {str(item.prefix):20s} {item.discounted_bytes:>12d} B "
              f"({share:.1%} discounted)")

    # 3. The paper's Figure 2 question: how much do disjoint windows hide
    #    compared to a sliding window of the same length?
    experiment = make_experiment(
        "hidden-hhh", window_sizes=(10.0,), thresholds=(0.05,)
    )
    hidden = experiment.run(trace, label="day0")
    print("\nhidden HHHs (disjoint vs sliding, step 1s):")
    print(hidden.to_table())
    print(f"\nmax hidden: {hidden.headline['max_hidden_percent']}%")


if __name__ == "__main__":
    main()
