"""The packet record.

A :class:`Packet` is deliberately minimal: the experiments in the paper need
only a timestamp, a source address and a byte count (one-dimensional HHH over
source IPs, weighted by bytes), but we carry the full 5-tuple so the same
traces can drive 2D hierarchies and flow-level tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True, slots=True)
class Packet:
    """One observed packet.

    Attributes
    ----------
    ts:
        Capture timestamp in seconds (float, epoch-relative or
        trace-relative — the library only ever uses differences).
    src, dst:
        Source / destination IPv4 addresses as unsigned 32-bit ints.
    sport, dport:
        Transport ports (0 when not applicable).
    proto:
        IP protocol number.
    length:
        Bytes on the wire for this packet; all heavy-hitter thresholds in
        the paper are byte-volume based.
    """

    ts: float
    src: int
    dst: int
    length: int
    sport: int = 0
    dport: int = 0
    proto: int = PROTO_TCP

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"negative packet length {self.length}")
        if not 0 <= self.src <= 0xFFFFFFFF or not 0 <= self.dst <= 0xFFFFFFFF:
            raise ValueError("addresses must be 32-bit unsigned values")
        if not 0 <= self.sport <= 0xFFFF or not 0 <= self.dport <= 0xFFFF:
            raise ValueError("ports must be 16-bit unsigned values")
        if not 0 <= self.proto <= 0xFF:
            raise ValueError(f"bad protocol number {self.proto}")

    def shifted(self, dt: float) -> "Packet":
        """A copy of this packet with the timestamp moved by ``dt``."""
        return replace(self, ts=self.ts + dt)

    def with_length(self, length: int) -> "Packet":
        """A copy of this packet with a different byte count."""
        return replace(self, length=length)
