"""Flow keys: how a packet is reduced to the key a detector counts.

The paper's experiments aggregate by source address only ("one-dimension
HHH based on source IP addresses"), but detectors in this library are generic
over a key-extraction function, so 5-tuple or destination keys plug in the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.ipv4 import format_ipv4
from repro.packet.model import Packet

KeyFunc = Callable[[Packet], int]


@dataclass(frozen=True, slots=True, order=True)
class FlowKey:
    """An immutable 5-tuple key, mostly for display and tests."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int

    @classmethod
    def of(cls, pkt: Packet) -> "FlowKey":
        """The 5-tuple of ``pkt``."""
        return cls(pkt.src, pkt.dst, pkt.sport, pkt.dport, pkt.proto)

    def packed(self) -> int:
        """The key packed into one integer (src:dst:sport:dport:proto)."""
        return (
            (self.src << 72)
            | (self.dst << 40)
            | (self.sport << 24)
            | (self.dport << 8)
            | self.proto
        )

    def __str__(self) -> str:
        return (
            f"{format_ipv4(self.src)}:{self.sport} -> "
            f"{format_ipv4(self.dst)}:{self.dport} proto={self.proto}"
        )


def source_key(pkt: Packet) -> int:
    """Key a packet by its source address (the paper's setting)."""
    return pkt.src


def destination_key(pkt: Packet) -> int:
    """Key a packet by its destination address."""
    return pkt.dst


def five_tuple_key(pkt: Packet) -> int:
    """Key a packet by its packed 5-tuple."""
    return FlowKey.of(pkt).packed()


def source_dest_key(pkt: Packet) -> int:
    """Key a packet by (src, dst) packed into one 64-bit integer.

    Used by the 2D hierarchy, which interprets the high 32 bits as the
    source and the low 32 bits as the destination.
    """
    return (pkt.src << 32) | pkt.dst
