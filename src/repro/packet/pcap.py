"""Classic libpcap file format, from scratch.

Writes and reads the 24-byte global header + per-packet record format used by
tcpdump (magic ``0xA1B2C3D4``, microsecond timestamps).  Packets are
serialised as minimal Ethernet + IPv4 (+ TCP/UDP stub) frames carrying the
5-tuple; the IP ``total length`` field preserves the byte count even though
we do not materialise payload bytes on disk.

This is enough to (a) round-trip synthetic traces bit-exactly at the
granularity the experiments care about and (b) ingest simple real captures.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.packet.model import PROTO_TCP, PROTO_UDP, Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_RECORD_HDR = struct.Struct("<IIII")
_ETH_HDR = struct.Struct("!6s6sH")
_IP_HDR = struct.Struct("!BBHHHBBHII")
_PORTS = struct.Struct("!HH")

_ETH_TYPE_IPV4 = 0x0800
_ETH_LEN = 14
_IP_LEN = 20
_SNAPLEN = 262144


def _ip_checksum(header: bytes) -> int:
    """RFC 1071 ones-complement checksum of an IPv4 header."""
    if len(header) % 2:
        header += b"\x00"
    total = sum(struct.unpack(f"!{len(header) // 2}H", header))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def _encode_frame(pkt: Packet) -> bytes:
    """Minimal Ethernet/IPv4(/ports) frame carrying the packet's 5-tuple."""
    eth = _ETH_HDR.pack(b"\x02" * 6, b"\x04" * 6, _ETH_TYPE_IPV4)
    total_len = max(pkt.length, _IP_LEN)
    ip_no_cksum = _IP_HDR.pack(
        0x45, 0, min(total_len, 0xFFFF), 0, 0, 64, pkt.proto, 0, pkt.src, pkt.dst
    )
    cksum = _ip_checksum(ip_no_cksum)
    ip = _IP_HDR.pack(
        0x45, 0, min(total_len, 0xFFFF), 0, 0, 64, pkt.proto, cksum,
        pkt.src, pkt.dst,
    )
    frame = eth + ip
    if pkt.proto in (PROTO_TCP, PROTO_UDP):
        frame += _PORTS.pack(pkt.sport, pkt.dport)
    return frame


class PcapWriter:
    """Stream packets into a pcap file.

    Use as a context manager::

        with PcapWriter(path) as w:
            for pkt in trace:
                w.write(pkt)
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: BinaryIO | None = None

    def __enter__(self) -> "PcapWriter":
        self._fh = open(self.path, "wb")
        self._fh.write(
            _GLOBAL_HDR.pack(
                PCAP_MAGIC, *PCAP_VERSION, 0, 0, _SNAPLEN, LINKTYPE_ETHERNET
            )
        )
        return self

    def write(self, pkt: Packet) -> None:
        """Append one packet record."""
        if self._fh is None:
            raise RuntimeError("PcapWriter used outside its context manager")
        frame = _encode_frame(pkt)
        sec = int(pkt.ts)
        usec = int(round((pkt.ts - sec) * 1_000_000))
        if usec >= 1_000_000:
            sec, usec = sec + 1, usec - 1_000_000
        # orig_len records the true wire length; cap_len what we stored.
        self._fh.write(
            _RECORD_HDR.pack(sec, usec, len(frame), max(pkt.length, len(frame)))
        )
        self._fh.write(frame)

    def __exit__(self, *exc: object) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class PcapReader:
    """Iterate packets out of a pcap file written by any libpcap tool.

    Non-IPv4 frames are skipped.  Handles both byte orders.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[Packet]:
        with open(self.path, "rb") as fh:
            header = fh.read(_GLOBAL_HDR.size)
            if len(header) < _GLOBAL_HDR.size:
                raise ValueError(f"{self.path}: truncated pcap global header")
            magic = struct.unpack("<I", header[:4])[0]
            if magic == PCAP_MAGIC:
                endian = "<"
            elif magic == PCAP_MAGIC_SWAPPED:
                endian = ">"
            else:
                raise ValueError(f"{self.path}: not a classic pcap file")
            record_hdr = struct.Struct(endian + "IIII")
            while True:
                raw = fh.read(record_hdr.size)
                if len(raw) < record_hdr.size:
                    return
                sec, usec, cap_len, orig_len = record_hdr.unpack(raw)
                frame = fh.read(cap_len)
                if len(frame) < cap_len:
                    return
                pkt = self._decode(sec + usec / 1_000_000, frame, orig_len)
                if pkt is not None:
                    yield pkt

    @staticmethod
    def _decode(ts: float, frame: bytes, orig_len: int) -> Packet | None:
        if len(frame) < _ETH_LEN + _IP_LEN:
            return None
        eth_type = struct.unpack("!H", frame[12:14])[0]
        if eth_type != _ETH_TYPE_IPV4:
            return None
        ip = frame[_ETH_LEN : _ETH_LEN + _IP_LEN]
        ver_ihl, _tos, _total, _id, _frag, _ttl, proto, _ck, src, dst = (
            _IP_HDR.unpack(ip)
        )
        if ver_ihl >> 4 != 4:
            return None
        ihl = (ver_ihl & 0xF) * 4
        sport = dport = 0
        ports_off = _ETH_LEN + ihl
        if proto in (PROTO_TCP, PROTO_UDP) and len(frame) >= ports_off + 4:
            sport, dport = _PORTS.unpack(frame[ports_off : ports_off + 4])
        return Packet(
            ts=ts, src=src, dst=dst, length=orig_len,
            sport=sport, dport=dport, proto=proto,
        )


def write_pcap(path: str | Path, packets: Iterable[Packet]) -> int:
    """Write ``packets`` to ``path``; returns how many were written."""
    count = 0
    with PcapWriter(path) as writer:
        for pkt in packets:
            writer.write(pkt)
            count += 1
    return count


def read_pcap(path: str | Path) -> list[Packet]:
    """Read an entire pcap file into a list of packets."""
    return list(PcapReader(path))
