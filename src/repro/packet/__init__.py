"""Packet records, flow keys and pcap I/O.

The unit the whole library streams over is :class:`Packet`: a timestamped
5-tuple plus a byte count.  Traces are plain sequences (or iterators) of
packets.  :mod:`repro.packet.pcap` can round-trip traces through the classic
libpcap on-disk format so external tools can inspect synthetic traces and
real captures can be fed to the experiments.
"""

from repro.packet.model import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Packet
from repro.packet.flowkey import FlowKey, five_tuple_key, source_key
from repro.packet.pcap import PcapReader, PcapWriter, read_pcap, write_pcap

__all__ = [
    "Packet",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "FlowKey",
    "five_tuple_key",
    "source_key",
    "PcapReader",
    "PcapWriter",
    "read_pcap",
    "write_pcap",
]
