"""Window models (the paper's Figure 1) and streaming drivers.

- :class:`DisjointWindows` — Fig 1a: back-to-back fixed-length windows, the
  model used by the data-plane systems the paper critiques;
- :class:`SlidingWindows` — Fig 1b: same length, advanced by a small step
  (1 s in the paper), the reference revealing "hidden" HHHs;
- :class:`NestedShrunkWindows` — Fig 1c: same start as a baseline window
  but 10–100 ms shorter, for the micro-variation sensitivity study;
- :class:`WindowedDetectorDriver` — feeds packets to any streaming detector,
  resetting it at disjoint window boundaries (the "reset the data structure
  at the end of each time window" practice the paper describes).
"""

from repro.windows.schedule import Window, align_start, edge_iter, edge_schedule
from repro.windows.disjoint import DisjointWindows
from repro.windows.sliding import SlidingWindows
from repro.windows.shrunk import NestedShrunkWindows
from repro.windows.driver import (
    StreamingDetector,
    WindowSlice,
    WindowedDetectorDriver,
    window_slices,
)

__all__ = [
    "Window",
    "WindowSlice",
    "align_start",
    "edge_iter",
    "edge_schedule",
    "window_slices",
    "DisjointWindows",
    "SlidingWindows",
    "NestedShrunkWindows",
    "StreamingDetector",
    "WindowedDetectorDriver",
]
