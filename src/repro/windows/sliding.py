"""Sliding windows (the paper's Figure 1b).

The reference model: windows of the same length as the disjoint baseline
but advanced by a small ``step`` (1 second in the paper).  Every disjoint
window is also a sliding window, so anything the disjoint model detects the
sliding model detects too — the *extra* detections are the hidden HHHs.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.container import Trace
from repro.windows.schedule import Window, align_start


class SlidingWindows:
    """Windows of ``size`` seconds advanced by ``step`` seconds."""

    def __init__(self, size: float, step: float = 1.0) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if step > size:
            raise ValueError(
                f"step {step} larger than window {size}: windows would not "
                "overlap; use DisjointWindows for non-overlapping schedules"
            )
        self.size = size
        self.step = step

    def over_span(self, start: float, end: float) -> Iterator[Window]:
        """The schedule covering [start, end)."""
        start, end = align_start(start, end)
        index = 0
        t0 = start
        while t0 + self.size <= end + 1e-12:
            yield Window(t0, t0 + self.size, index)
            t0 = start + (index + 1) * self.step
            index += 1

    def over_trace(self, trace: Trace) -> Iterator[Window]:
        """The schedule covering the trace's time span."""
        if len(trace) == 0:
            return iter(())
        return self.over_span(trace.start_time, trace.end_time)

    def windows_covering(self, ts: float, start: float = 0.0) -> list[Window]:
        """All sliding windows whose span contains timestamp ``ts``."""
        if ts < start:
            return []
        first = max(0, int((ts - start - self.size) // self.step) + 1)
        out = []
        index = first
        while True:
            t0 = start + index * self.step
            if t0 > ts:
                break
            if ts < t0 + self.size:
                out.append(Window(t0, t0 + self.size, index))
            index += 1
        return out

    def __repr__(self) -> str:
        return f"SlidingWindows(size={self.size}, step={self.step})"
