"""Micro-shrunk windows (the paper's Figure 1c).

For the sensitivity study the paper compares a 10 s baseline window against
windows "10-100 milliseconds shorter from the baseline window", where "all
the windows have the same starting point and the analysis is based only on
overlapping windows": for every baseline window ``[t0, t0 + W)`` the shrunk
variant is ``[t0, t0 + W - delta)`` — same start, slightly earlier end.
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.container import Trace
from repro.windows.disjoint import DisjointWindows
from repro.windows.schedule import Window


class NestedShrunkWindows:
    """Pairs of (baseline, shrunk-by-delta) windows sharing their start."""

    def __init__(self, size: float, delta: float) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        if not 0 < delta < size:
            raise ValueError(
                f"delta must be in (0, size); got delta={delta}, size={size}"
            )
        self.size = size
        self.delta = delta
        self._baseline = DisjointWindows(size)

    def over_span(self, start: float, end: float) -> Iterator[tuple[Window, Window]]:
        """Yield ``(baseline_window, shrunk_window)`` pairs over [start, end)."""
        for base in self._baseline.over_span(start, end):
            shrunk = Window(base.t0, base.t1 - self.delta, base.index)
            yield base, shrunk

    def over_trace(self, trace: Trace) -> Iterator[tuple[Window, Window]]:
        """The paired schedule covering the trace's time span."""
        if len(trace) == 0:
            return iter(())
        return self.over_span(trace.start_time, trace.end_time)

    def __repr__(self) -> str:
        return f"NestedShrunkWindows(size={self.size}, delta={self.delta})"
