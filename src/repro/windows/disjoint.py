"""Disjoint fixed-time windows (the paper's Figure 1a).

"Most of the proposed solutions suggest to divide the network stream into
fixed-time disjoint intervals and perform the required identification
process in each of them separately, without considering the traffic trends
from previous intervals."
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.container import Trace
from repro.windows.schedule import Window, align_start


class DisjointWindows:
    """Back-to-back windows of fixed ``size`` seconds.

    Iterating over ``(trace)`` or ``(start, end)`` yields the window
    schedule; a trailing partial window is included only when
    ``include_partial`` is set (off by default: partial windows have a
    different effective threshold and the paper's methodology drops them).
    """

    def __init__(self, size: float, include_partial: bool = False) -> None:
        if size <= 0:
            raise ValueError(f"window size must be positive, got {size}")
        self.size = size
        self.include_partial = include_partial

    def over_span(self, start: float, end: float) -> Iterator[Window]:
        """The schedule covering [start, end)."""
        start, end = align_start(start, end)
        index = 0
        t0 = start
        while t0 + self.size <= end + 1e-12:
            yield Window(t0, t0 + self.size, index)
            t0 += self.size
            index += 1
        if self.include_partial and t0 < end:
            yield Window(t0, end, index)

    def over_trace(self, trace: Trace) -> Iterator[Window]:
        """The schedule covering the trace's time span."""
        if len(trace) == 0:
            return iter(())
        return self.over_span(trace.start_time, trace.end_time)

    def window_of(self, ts: float, start: float = 0.0) -> Window:
        """The disjoint window containing timestamp ``ts``."""
        if ts < start:
            raise ValueError(f"timestamp {ts} precedes schedule start {start}")
        index = int((ts - start) // self.size)
        t0 = start + index * self.size
        return Window(t0, t0 + self.size, index)

    def __repr__(self) -> str:
        return f"DisjointWindows(size={self.size})"
