"""The :class:`Window` record and shared schedule helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True, order=True)
class Window:
    """A half-open time interval [t0, t1) with its position in a schedule."""

    t0: float
    t1: float
    index: int = 0

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise ValueError(f"window ends before it starts: {self}")

    @property
    def length(self) -> float:
        """Window length in seconds."""
        return self.t1 - self.t0

    def contains(self, ts: float) -> bool:
        """True when ``ts`` falls inside [t0, t1)."""
        return self.t0 <= ts < self.t1

    def overlap(self, other: "Window") -> float:
        """Seconds of overlap with another window."""
        return max(0.0, min(self.t1, other.t1) - max(self.t0, other.t0))

    def __str__(self) -> str:
        return f"[{self.t0:.3f}, {self.t1:.3f})#{self.index}"


def align_start(start: float, end: float) -> tuple[float, float]:
    """Validate and return a (start, end) span for a schedule."""
    if end <= start:
        raise ValueError(f"empty time span [{start}, {end})")
    return start, end


def edge_iter(start: float, size: float) -> Iterator[float]:
    """The unbounded accumulating right-edge schedule from ``start``.

    Edges accumulate (``edge += size``) exactly like the seed's per-packet
    loop, so every consumer — the windowed driver, window-aligned stream
    emission — places boundaries bit-identically.
    """
    if size <= 0:
        raise ValueError(f"window size must be positive, got {size}")
    edge = start + size
    while True:
        yield edge
        edge += size


def edge_schedule(
    start: float, end: float, size: float, include_partial: bool = False
) -> list[float]:
    """Right edges of the complete windows covering ``[start, end]``.

    A window is *complete* once the span extends to its right edge; with
    ``include_partial`` the first edge past ``end`` (the trailing partial
    window) is appended too.
    """
    edges: list[float] = []
    for edge in edge_iter(start, size):
        if end < edge:
            if include_partial:
                edges.append(edge)
            break
        edges.append(edge)
    return edges
