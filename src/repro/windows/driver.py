"""Streaming drivers: feed packets to a detector under a window policy.

The exact ground truth in :mod:`repro.hhh` slices the trace offline; real
detectors (the sketches in :mod:`repro.sketch`) are *streaming* — they see
one packet at a time and are reset at window boundaries.  The driver
encapsulates that protocol so every detector is exercised identically:

    driver = WindowedDetectorDriver(make_detector, window_size=5.0)
    for window, report in driver.run(trace):
        ...

``make_detector`` is a zero-argument factory because the disjoint-window
practice is to *reset* the data structure at each boundary ("by resetting
the data structure at the end of each time window, there is no risk of
counter overflowing").
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol

from repro.packet.model import Packet
from repro.trace.container import Trace
from repro.windows.schedule import Window


class StreamingDetector(Protocol):
    """What the driver requires of a streaming detector."""

    def update(self, key: int, weight: int) -> None:
        """Account one packet with the given key and byte weight."""
        ...

    def query(self, threshold: float) -> dict[int, float]:
        """Current items whose estimate reaches ``threshold``."""
        ...


class WindowedDetectorDriver:
    """Run a streaming detector over disjoint windows with resets.

    Parameters
    ----------
    detector_factory:
        Zero-argument callable building a fresh detector (called once per
        window — the reset).
    window_size:
        Disjoint window length in seconds.
    key_func:
        Packet -> integer key (defaults to the source address).
    phi:
        Relative threshold: each window's report uses
        ``phi * window_bytes`` as the absolute threshold, matching the
        paper's per-window percentage thresholds.
    """

    def __init__(
        self,
        detector_factory: Callable[[], StreamingDetector],
        window_size: float,
        key_func: Callable[[Packet], int] | None = None,
        phi: float = 0.05,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        self.detector_factory = detector_factory
        self.window_size = window_size
        self.key_func = key_func or (lambda pkt: pkt.src)
        self.phi = phi

    def run(self, trace: Trace) -> Iterator[tuple[Window, dict[int, float]]]:
        """Yield ``(window, report)`` for each complete window of the trace.

        The report maps keys to estimated byte volumes at or above the
        window's threshold.
        """
        if len(trace) == 0:
            return
        start = trace.start_time
        window_index = 0
        window_end = start + self.window_size
        detector = self.detector_factory()
        window_bytes = 0
        for pkt in trace.packets():
            while pkt.ts >= window_end:
                yield self._report(window_index, window_end, detector, window_bytes)
                window_index += 1
                window_end += self.window_size
                detector = self.detector_factory()
                window_bytes = 0
            detector.update(self.key_func(pkt), pkt.length)
            window_bytes += pkt.length
        # The final (possibly partial) window is dropped, matching the
        # offline schedules, unless it happens to be exactly full.
        if abs((trace.end_time + 1e-12) - window_end) < 1e-9:
            yield self._report(window_index, window_end, detector, window_bytes)

    def _report(
        self,
        index: int,
        window_end: float,
        detector: StreamingDetector,
        window_bytes: int,
    ) -> tuple[Window, dict[int, float]]:
        window = Window(window_end - self.window_size, window_end, index)
        threshold = self.phi * window_bytes
        report = detector.query(threshold) if window_bytes else {}
        return window, report
