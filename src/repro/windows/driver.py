"""Streaming drivers: feed packets to a detector under a window policy.

The exact ground truth in :mod:`repro.hhh` slices the trace offline; real
detectors (the sketches in :mod:`repro.sketch`) are *streaming* — they see
the packets of one window and are reset at window boundaries.  The driver
encapsulates that protocol so every detector is exercised identically:

    driver = WindowedDetectorDriver(make_detector, window_size=5.0)
    for window, report in driver.run(trace):
        ...

``make_detector`` is a zero-argument factory because the disjoint-window
practice is to *reset* the data structure at each boundary ("by resetting
the data structure at the end of each time window, there is no risk of
counter overflowing").

Since :class:`repro.trace.Trace` is columnar, the driver slices each
window out of the timestamp column by binary search and hands the whole
window to the detector's ``update_batch`` in one call — the vectorized
fast path for array-backed detectors, an exact scalar replay for the
rest.  Plain objects that only implement the legacy ``update(key,
weight)`` protocol are driven packet by packet, as before.

The trailing *partial* window (the one containing the trace's last packet)
is dropped by default, matching the offline schedules; pass
``emit_partial=True`` to report it too.  This replaces the seed's
float-epsilon "exactly full" test with an explicit policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.engine import ParallelRunner, sharded_factory
from repro.packet.model import Packet
from repro.trace.container import Trace
from repro.windows.schedule import Window, edge_schedule


@dataclass(frozen=True)
class WindowSlice:
    """One window of a trace with its packet/byte offsets.

    ``start``/``stop`` are packet indices into the trace's columns
    (half-open) and ``bytes`` the window's byte volume — computed once by
    :func:`window_slices` and shared by every consumer (the driver's own
    reporting loop, the Section 3 harness, window-aligned stream emission)
    instead of each recomputing ``searchsorted`` boundaries.
    """

    window: Window
    start: int
    stop: int
    bytes: int

    @property
    def packets(self) -> int:
        """Packets in the window."""
        return self.stop - self.start


def window_slices(
    trace: Trace, window_size: float, emit_partial: bool = False
) -> list[WindowSlice]:
    """Per-window packet/byte offsets for the disjoint schedule.

    Edges come from :func:`repro.windows.schedule.edge_schedule` (the
    accumulating schedule, bit-identical to historic driver behaviour);
    packet boundaries are one vectorized ``searchsorted`` over the
    timestamp column.  The trailing partial window is included only under
    ``emit_partial``.
    """
    if len(trace) == 0:
        return []
    edges = edge_schedule(
        trace.start_time, trace.end_time, window_size, emit_partial
    )
    cuts = np.searchsorted(trace.ts, np.asarray(edges), side="left")
    slices: list[WindowSlice] = []
    start = 0
    # Each window's left edge is the previous right edge (the trace start
    # for the first), so window bounds and packet offsets agree exactly —
    # deriving t0 as ``edge - window_size`` can land one float ulp off the
    # accumulated boundary the packet cut was made at.
    left = trace.start_time
    for index, (edge, stop) in enumerate(zip(edges, cuts)):
        stop = int(stop)
        slices.append(
            WindowSlice(
                window=Window(left, edge, index),
                start=start,
                stop=stop,
                bytes=int(trace.length[start:stop].sum()),
            )
        )
        start = stop
        left = edge
    return slices


class StreamingDetector(Protocol):
    """What the driver requires of a streaming detector."""

    def update(self, key: int, weight: int) -> None:
        """Account one packet with the given key and byte weight."""
        ...

    def query(self, threshold: float) -> dict[int, float]:
        """Current items whose estimate reaches ``threshold``."""
        ...


class WindowedDetectorDriver:
    """Run a streaming detector over disjoint windows with resets.

    Parameters
    ----------
    detector_factory:
        Zero-argument callable building a fresh detector (called once per
        window — the reset).
    window_size:
        Disjoint window length in seconds.
    key_func:
        Packet -> integer key.  ``None`` (the default) keys by the source
        address straight from the trace's ``src`` column, which keeps the
        whole window on the vectorized path; a custom callable forces
        per-packet key extraction.
    phi:
        Relative threshold: each window's report uses
        ``phi * window_bytes`` as the absolute threshold, matching the
        paper's per-window percentage thresholds.
    emit_partial:
        When true, the trailing partial window (the one holding the last
        packet) is reported as well instead of being dropped.
    shards:
        When given (> 1), each window's detector is a key-partitioned
        :class:`repro.engine.ShardedDetector` of ``shards`` replicas built
        by ``detector_factory``, so whole windows fan out per shard.
        Reports stay equivalent by construction (each key lives in one
        shard); per-window capacity scales with the shard count.
        ``shards=1`` keeps the plain factory unless a runner is given
        (then the single shard still runs through the runner's backend).
    runner:
        Optional :class:`repro.engine.ParallelRunner` executing the
        per-shard updates (serial or process pool).  Only meaningful with
        ``shards``.
    """

    def __init__(
        self,
        detector_factory: Callable[[], StreamingDetector],
        window_size: float,
        key_func: Callable[[Packet], int] | None = None,
        phi: float = 0.05,
        emit_partial: bool = False,
        shards: int | None = None,
        runner: "ParallelRunner | None" = None,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if runner is not None and shards is None:
            raise ValueError("runner requires shards")
        if shards is not None and (shards > 1 or runner is not None):
            detector_factory = sharded_factory(
                detector_factory, shards, runner
            )
        self.detector_factory = detector_factory
        self.window_size = window_size
        self.key_func = key_func
        self.phi = phi
        self.emit_partial = emit_partial
        self.shards = shards
        self.runner = runner

    def window_slices(self, trace: Trace) -> list[WindowSlice]:
        """The driver's window schedule with packet/byte offsets exposed.

        This is the single place boundaries are computed; :meth:`run`
        consumes it internally, and callers that need offsets (the
        Section 3 harness, window-aligned stream emission) share it
        instead of recomputing ``searchsorted`` per window.
        """
        return window_slices(trace, self.window_size, self.emit_partial)

    def _window_keys(self, trace: Trace, i: int, j: int) -> np.ndarray:
        """Keys of packets [i, j): the raw column or key_func extraction.

        ``np.asarray`` picks the dtype, so key funcs returning negative or
        arbitrarily large ints survive (object columns are canonicalised
        by the vectorized hashing layer).
        """
        if self.key_func is None:
            return trace.src[i:j]
        return np.asarray(
            [self.key_func(trace.packet_at(p)) for p in range(i, j)]
        )

    def run(self, trace: Trace) -> Iterator[tuple[Window, dict[int, float]]]:
        """Yield ``(window, report)`` for each reported window of the trace.

        The report maps keys to estimated byte volumes at or above the
        window's threshold.
        """
        for piece in self.window_slices(trace):
            detector = self.detector_factory()
            if piece.stop > piece.start:
                self._feed(detector, trace, piece.start, piece.stop)
            yield self._report(piece, detector)

    def _feed(
        self, detector: StreamingDetector, trace: Trace, i: int, j: int
    ) -> None:
        """Hand packets [i, j) to the detector, batched when supported."""
        keys = self._window_keys(trace, i, j)
        weights = trace.length[i:j]
        update_batch = getattr(detector, "update_batch", None)
        if update_batch is not None:
            update_batch(keys, weights, trace.ts[i:j])
        else:
            update = detector.update
            for key, weight in zip(keys.tolist(), weights.tolist()):
                update(key, weight)

    def _report(
        self, piece: WindowSlice, detector: StreamingDetector
    ) -> tuple[Window, dict[int, float]]:
        threshold = self.phi * piece.bytes
        report = detector.query(threshold) if piece.bytes else {}
        return piece.window, report
