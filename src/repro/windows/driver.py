"""Streaming drivers: feed packets to a detector under a window policy.

The exact ground truth in :mod:`repro.hhh` slices the trace offline; real
detectors (the sketches in :mod:`repro.sketch`) are *streaming* — they see
the packets of one window and are reset at window boundaries.  The driver
encapsulates that protocol so every detector is exercised identically:

    driver = WindowedDetectorDriver(make_detector, window_size=5.0)
    for window, report in driver.run(trace):
        ...

``make_detector`` is a zero-argument factory because the disjoint-window
practice is to *reset* the data structure at each boundary ("by resetting
the data structure at the end of each time window, there is no risk of
counter overflowing").

Since :class:`repro.trace.Trace` is columnar, the driver slices each
window out of the timestamp column by binary search and hands the whole
window to the detector's ``update_batch`` in one call — the vectorized
fast path for array-backed detectors, an exact scalar replay for the
rest.  Plain objects that only implement the legacy ``update(key,
weight)`` protocol are driven packet by packet, as before.

The trailing *partial* window (the one containing the trace's last packet)
is dropped by default, matching the offline schedules; pass
``emit_partial=True`` to report it too.  This replaces the seed's
float-epsilon "exactly full" test with an explicit policy.
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol

import numpy as np

from repro.engine import ParallelRunner, sharded_factory
from repro.packet.model import Packet
from repro.trace.container import Trace
from repro.windows.schedule import Window


class StreamingDetector(Protocol):
    """What the driver requires of a streaming detector."""

    def update(self, key: int, weight: int) -> None:
        """Account one packet with the given key and byte weight."""
        ...

    def query(self, threshold: float) -> dict[int, float]:
        """Current items whose estimate reaches ``threshold``."""
        ...


class WindowedDetectorDriver:
    """Run a streaming detector over disjoint windows with resets.

    Parameters
    ----------
    detector_factory:
        Zero-argument callable building a fresh detector (called once per
        window — the reset).
    window_size:
        Disjoint window length in seconds.
    key_func:
        Packet -> integer key.  ``None`` (the default) keys by the source
        address straight from the trace's ``src`` column, which keeps the
        whole window on the vectorized path; a custom callable forces
        per-packet key extraction.
    phi:
        Relative threshold: each window's report uses
        ``phi * window_bytes`` as the absolute threshold, matching the
        paper's per-window percentage thresholds.
    emit_partial:
        When true, the trailing partial window (the one holding the last
        packet) is reported as well instead of being dropped.
    shards:
        When given (> 1), each window's detector is a key-partitioned
        :class:`repro.engine.ShardedDetector` of ``shards`` replicas built
        by ``detector_factory``, so whole windows fan out per shard.
        Reports stay equivalent by construction (each key lives in one
        shard); per-window capacity scales with the shard count.
        ``shards=1`` keeps the plain factory unless a runner is given
        (then the single shard still runs through the runner's backend).
    runner:
        Optional :class:`repro.engine.ParallelRunner` executing the
        per-shard updates (serial or process pool).  Only meaningful with
        ``shards``.
    """

    def __init__(
        self,
        detector_factory: Callable[[], StreamingDetector],
        window_size: float,
        key_func: Callable[[Packet], int] | None = None,
        phi: float = 0.05,
        emit_partial: bool = False,
        shards: int | None = None,
        runner: "ParallelRunner | None" = None,
    ) -> None:
        if window_size <= 0:
            raise ValueError(f"window_size must be positive, got {window_size}")
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if runner is not None and shards is None:
            raise ValueError("runner requires shards")
        if shards is not None and (shards > 1 or runner is not None):
            detector_factory = sharded_factory(
                detector_factory, shards, runner
            )
        self.detector_factory = detector_factory
        self.window_size = window_size
        self.key_func = key_func
        self.phi = phi
        self.emit_partial = emit_partial
        self.shards = shards
        self.runner = runner

    def _window_edges(self, trace: Trace) -> list[float]:
        """Right edges of the windows to report, in order.

        Edges accumulate (``edge += window_size``) exactly like the seed's
        per-packet loop did, so boundary placement is bit-identical to
        historic behaviour.  A window is *complete* once the trace extends
        to its right edge; the trailing partial window is included only
        under ``emit_partial``.
        """
        edges: list[float] = []
        edge = trace.start_time + self.window_size
        end = trace.end_time
        while end >= edge:
            edges.append(edge)
            edge += self.window_size
        if self.emit_partial:
            edges.append(edge)
        return edges

    def _window_keys(self, trace: Trace, i: int, j: int) -> np.ndarray:
        """Keys of packets [i, j): the raw column or key_func extraction.

        ``np.asarray`` picks the dtype, so key funcs returning negative or
        arbitrarily large ints survive (object columns are canonicalised
        by the vectorized hashing layer).
        """
        if self.key_func is None:
            return trace.src[i:j]
        return np.asarray(
            [self.key_func(trace.packet_at(p)) for p in range(i, j)]
        )

    def run(self, trace: Trace) -> Iterator[tuple[Window, dict[int, float]]]:
        """Yield ``(window, report)`` for each reported window of the trace.

        The report maps keys to estimated byte volumes at or above the
        window's threshold.
        """
        if len(trace) == 0:
            return
        edges = self._window_edges(trace)
        cuts = np.searchsorted(trace.ts, np.asarray(edges), side="left")
        start_index = 0
        for window_index, (edge, end_index) in enumerate(zip(edges, cuts)):
            i, j = start_index, int(end_index)
            start_index = j
            detector = self.detector_factory()
            window_bytes = int(trace.length[i:j].sum())
            if j > i:
                self._feed(detector, trace, i, j)
            yield self._report(window_index, edge, detector, window_bytes)

    def _feed(
        self, detector: StreamingDetector, trace: Trace, i: int, j: int
    ) -> None:
        """Hand packets [i, j) to the detector, batched when supported."""
        keys = self._window_keys(trace, i, j)
        weights = trace.length[i:j]
        update_batch = getattr(detector, "update_batch", None)
        if update_batch is not None:
            update_batch(keys, weights, trace.ts[i:j])
        else:
            update = detector.update
            for key, weight in zip(keys.tolist(), weights.tolist()):
                update(key, weight)

    def _report(
        self,
        index: int,
        window_end: float,
        detector: StreamingDetector,
        window_bytes: int,
    ) -> tuple[Window, dict[int, float]]:
        window = Window(window_end - self.window_size, window_end, index)
        threshold = self.phi * window_bytes
        report = detector.query(threshold) if window_bytes else {}
        return window, report
