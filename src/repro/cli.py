"""Command-line interface.

Subcommands mirror the paper's artefacts::

    repro-hhh stats     [--day N] [--duration S]      # trace summary
    repro-hhh fig2      [--duration S] [--days N] [--mode unique|occurrences]
    repro-hhh fig3      [--duration S] [--deltas ...]
    repro-hhh sec3      [--duration S] [--window W] [--phi P]
    repro-hhh pcap      --out FILE [--day N] [--duration S]
    repro-hhh detectors                               # registry listing
    repro-hhh bench     [--detector NAME ...] [--duration S]

Every command is deterministic (seeded presets) and prints plain-text
tables; see EXPERIMENTS.md for the recorded reference outputs.

``detectors`` and ``bench`` are built on :mod:`repro.core`: detectors are
looked up by registry name and driven through the unified scalar/batch
update paths.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.decay_experiment import DecayComparisonExperiment
from repro.analysis.hidden_experiment import HiddenHHHExperiment
from repro.analysis.render import format_table
from repro.analysis.sensitivity_experiment import WindowSensitivityExperiment
from repro.analysis.throughput import speedup_row, trace_columns
from repro.core import detector_names, get_spec
from repro.packet.pcap import write_pcap
from repro.trace import presets
from repro.trace.stats import compute_stats


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = presets.caida_like_day(args.day, args.duration)
    print(f"synthetic CAIDA-like day {args.day}:")
    for line in compute_stats(trace).to_lines():
        print("  " + line)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    traces = [
        presets.caida_like_day(day, args.duration) for day in range(args.days)
    ]
    experiment = HiddenHHHExperiment(mode=args.mode)
    result = experiment.run_days(traces)
    print("Figure 2 — percentage of hidden HHHs")
    print(result.to_table())
    print()
    print(f"max hidden: {result.max_hidden_percent():.1f}% "
          "(paper reports up to 34%)")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    trace = presets.sensitivity_trace(args.duration)
    experiment = WindowSensitivityExperiment(phi=args.phi)
    result = experiment.run(trace)
    print("Figure 3 — Jaccard similarity vs baseline window")
    print(result.to_table())
    if args.plot:
        for delta in (0.04, 0.10):
            print()
            print(result.to_cdf_plot(delta))
    return 0


def _cmd_sec3(args: argparse.Namespace) -> int:
    trace = presets.caida_like_day(0, args.duration)
    experiment = DecayComparisonExperiment(
        window_size=args.window, phi=args.phi
    )
    result = experiment.run(trace)
    print("Section 3 — time-decaying vs disjoint-window detection")
    print(f"truth occurrences: {result.num_truth_occurrences}, "
          f"hidden: {result.num_hidden_occurrences}")
    print(result.to_table())
    return 0


def _cmd_detectors(args: argparse.Namespace) -> int:
    rows = []
    for name in detector_names():
        spec = get_spec(name)
        rows.append({
            "name": name,
            "timestamped": "yes" if spec.timestamped else "no",
            "enumerable": "yes" if spec.enumerable else "no",
            "description": spec.description,
        })
    print(format_table(rows))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    trace = presets.caida_like_day(0, args.duration)
    names = args.detector or ["countmin", "ondemand-tdbf", "spacesaving"]
    known = detector_names()
    for name in names:
        if name not in known:
            print(f"error: unknown detector {name!r}; see 'repro-hhh "
                  "detectors' for the registry", file=sys.stderr)
            return 2
    columns = trace_columns(trace)
    rows = [speedup_row(name, columns) for name in names]
    print("Batch vs scalar update throughput (packets/second)")
    print(format_table(rows))
    return 0


def _cmd_pcap(args: argparse.Namespace) -> int:
    trace = presets.caida_like_day(args.day, args.duration)
    count = write_pcap(args.out, trace.packets())
    print(f"wrote {count} packets to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-hhh",
        description=(
            "Reproduction of 'Revealing Hidden Hierarchical Heavy Hitters "
            "in network traffic' (SIGCOMM Posters 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("stats", help="summarise a synthetic trace")
    p.add_argument("--day", type=int, default=0)
    p.add_argument("--duration", type=float, default=120.0)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("fig2", help="hidden-HHH percentages (Figure 2)")
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--days", type=int, default=4)
    p.add_argument("--mode", choices=("unique", "occurrences"),
                   default="unique")
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="window-size sensitivity (Figure 3)")
    p.add_argument("--duration", type=float, default=240.0)
    p.add_argument("--phi", type=float, default=0.05)
    p.add_argument("--plot", action="store_true",
                   help="also print ASCII CDF curves")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("sec3", help="decay-vs-windows comparison (Section 3)")
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--window", type=float, default=10.0)
    p.add_argument("--phi", type=float, default=0.05)
    p.set_defaults(func=_cmd_sec3)

    p = sub.add_parser("detectors", help="list the detector registry")
    p.set_defaults(func=_cmd_detectors)

    p = sub.add_parser(
        "bench", help="batch vs scalar update throughput by detector name"
    )
    p.add_argument("--detector", action="append", default=None,
                   help="registry name (repeatable; default: a sample)")
    p.add_argument("--duration", type=float, default=20.0)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("pcap", help="export a synthetic trace to pcap")
    p.add_argument("--out", required=True)
    p.add_argument("--day", type=int, default=0)
    p.add_argument("--duration", type=float, default=30.0)
    p.set_defaults(func=_cmd_pcap)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
