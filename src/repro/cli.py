"""Command-line interface.

The experiment layer is registry-driven: any registered experiment runs on
any string-addressable trace and emits the uniform JSON result artifact::

    repro-hhh run <experiment> [--trace SPEC ...] [--set key=value ...]
                  [--json FILE] [--smoke]
    repro-hhh experiments [--names]               # experiment registry
    repro-hhh scenarios                           # trace-scenario registry
    repro-hhh detectors                           # detector registry

The sweep engine fans a grid of (experiment x trace x detector x params)
cells out across cores and aggregates one comparative artifact::

    repro-hhh sweep --grid "exp=...;trace=...;detector=a,b;phi=0.01,0.001"
              [--workers N] [--backend serial|process]
              [--group-by COLS] [--best METRIC] [--json FILE]

The streaming runtime has its own online driver — emissions print as they
happen, and the pipeline can checkpoint at end of run and resume later::

    repro-hhh stream <detector> --source SPEC [--chunk N]
              [--emit-every Np|Ts|window:T] [--max-packets N]
              [--checkpoint FILE] [--resume FILE --fast-forward]

The serve runtime multiplexes many tenant streams over one pool of
persistent shard-worker processes (zero-copy shared-memory chunk
handoff, per-tenant checkpoints as the migration unit)::

    repro-hhh serve --tenant a=SPEC --tenant b=SPEC [--workers N]
              [--shards S] [--checkpoint-dir DIR]
              [--resume-dir DIR --fast-forward]

The equivalence fuzz harness samples promised-equivalent plan pairs
(chunking, sharding, checkpoint/resume, serve-vs-serial, merge-order,
serve tenant churn, serve worker crash), runs both sides through the
real stack, and shrinks any divergence to a minimal replayable
artifact::

    repro-hhh fuzz [--budget-s S] [--seed N] [--pairs N]
              [--detector NAME ...] [--axis AXIS ...]
              [--cases-dir DIR] [--replay FILE] [--json FILE]

The paper's artefacts remain available as thin aliases over the same path
(identical tables, same deterministic seeded presets)::

    repro-hhh stats     [--day N] [--duration S]      # trace summary
    repro-hhh fig2      [--duration S] [--days N] [--mode unique|occurrences]
    repro-hhh fig3      [--duration S] [--phi P] [--plot]
    repro-hhh sec3      [--duration S] [--window W] [--phi P]
    repro-hhh bench     [--detector NAME ...] [--duration S]
    repro-hhh pcap      --out FILE [--day N] [--duration S]

See EXPERIMENTS.md for the recorded reference outputs of every registered
experiment.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.render import format_table
from repro.core import detector_names, get_spec
from repro.experiments import (
    ExperimentError,
    ExperimentResult,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.fuzz.plan import AXES as _FUZZ_AXES
from repro.packet.pcap import write_pcap
from repro.trace.spec import TraceSpec, TraceSpecError, get_scenario, scenario_names
from repro.trace.stats import compute_stats
from repro.experiments.result import TraceProvenance


# -- argparse value types (reject garbage before trace generation) -----------

def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def _min1_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def _day_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if not 0 <= value <= 3:
        raise argparse.ArgumentTypeError(f"day must be 0..3, got {text}")
    return value


def _phi_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not 0 < value <= 1:
        raise argparse.ArgumentTypeError(f"phi must be in (0, 1], got {text}")
    return value


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _emit_json(result: ExperimentResult, path: str | None) -> None:
    if path:
        result.to_json(path)
        print(f"wrote {path}")


# -- the generic registry-driven path ----------------------------------------

def _parse_set_args(pairs: Sequence[str] | None) -> dict[str, object]:
    overrides: dict[str, object] = {}
    for pair in pairs or ():
        key, eq, value = pair.partition("=")
        if not eq or not key:
            raise ExperimentError(
                f"bad --set {pair!r}; expected key=value"
            )
        overrides[key] = value
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment_cls = get_experiment(args.experiment)
        overrides = _parse_set_args(args.set_)
        # --shards / --workers are sugar for --set; binding validates them
        # against the experiment's declared PARAMS like any override.
        for key, value in (("shards", args.shards), ("workers", args.workers)):
            if value is None:
                continue
            if key in overrides:
                raise ExperimentError(
                    f"--{key} conflicts with --set {key}=...; give one"
                )
            overrides[key] = value
        result = run_experiment(
            args.experiment,
            trace_specs=args.trace,
            overrides=overrides,
            labels=args.label,
            smoke=args.smoke,
        )
    except ValueError as exc:
        # ExperimentError/TraceSpecError plus the cross-parameter checks
        # the analysis harnesses enforce (all ValueError subclasses/uses).
        return _fail(str(exc))
    print(f"{experiment_cls.name} — {experiment_cls.description}")
    print()
    print(result.to_table())
    if result.headline:
        print()
        for line in result.headline_lines():
            print(line)
    print()
    print(f"traces: {', '.join(t.spec or t.label for t in result.traces)}")
    print(f"timings: build {result.timings.get('trace_build_s', 0.0):.3f}s, "
          f"run {result.timings.get('run_s', 0.0):.3f}s")
    _emit_json(result, args.json_out)
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    if args.names:
        for name in experiment_names():
            print(name)
        return 0
    rows = []
    for name in experiment_names():
        cls = get_experiment(name)
        params = ", ".join(
            f"{p.name}={p.describe_default()}" for p in cls.params()
        )
        rows.append({
            "experiment": name,
            "description": cls.description,
            "default_trace": cls.default_trace,
            "params": params or "-",
        })
    print(format_table(rows))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    rows = []
    for name in scenario_names():
        spec = get_scenario(name)
        defaults = ", ".join(
            f"{k}={v}" for k, v in spec.defaults().items()
        )
        rows.append({
            "scenario": name,
            "description": spec.description,
            "example": spec.example,
            "defaults": defaults or "-",
        })
    print(format_table(rows))
    return 0


def _cmd_detectors(args: argparse.Namespace) -> int:
    rows = []
    for name in detector_names():
        spec = get_spec(name)
        rows.append({
            "name": name,
            "timestamped": "yes" if spec.timestamped else "no",
            "enumerable": "yes" if spec.enumerable else "no",
            "mergeable": "yes" if spec.mergeable else "no",
            "description": spec.description,
        })
    print(format_table(rows))
    return 0


# -- the sweep engine (parallel parameter grids) ------------------------------

def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.sweep import SweepError, SweepRunner, SweepSpec

    if args.backend == "serial" and (args.workers or 1) > 1:
        return _fail(
            f"--workers {args.workers} needs the process backend; drop "
            "--backend serial or use --backend process"
        )
    backend = args.backend or (
        "process" if (args.workers or 1) > 1 else "serial"
    )
    try:
        spec = SweepSpec.parse(args.grid)
        # workers=None lets the process backend default to the machine's
        # CPU count (`--backend process` alone means "use the cores").
        with SweepRunner(backend, args.workers) as runner:
            result = runner.run(spec)
    except ValueError as exc:
        # Nothing ran: bad grid grammar or unknown experiment / axis /
        # detector names.  SweepError / ExperimentError — all ValueError
        # uses.
        return _fail(str(exc))
    # The sweep completed; from here on a rendering/selection error
    # (--group-by or --best typo) must not discard the run — the flat
    # table, per-cell diagnostics, and the --json artifact still emit.
    view_error: SweepError | None = None
    try:
        group_by = (
            [c.strip() for c in args.group_by.split(",") if c.strip()]
            if args.group_by else None
        )
        table = result.to_table(group_by)
    except SweepError as exc:
        view_error = exc
        table = result.to_table()
    print(f"sweep — {result.num_cells} cells "
          f"({result.mode} expansion, {result.backend} backend, "
          f"{result.workers} worker{'s' if result.workers != 1 else ''})")
    print()
    print(table)
    print()
    if args.best:
        try:
            best = result.best_cell(args.best)
            print(f"best cell by {args.best}: #{best.index} {best.label()} "
                  f"({args.best}={best.headline[args.best]})")
        except SweepError as exc:
            view_error = view_error or exc
    print(f"cells: {result.num_ok} ok, {result.num_errors} failed; "
          f"total {result.timings.get('total_s', 0.0):.3f}s "
          f"({result.timings.get('cells_per_s', 0.0):.2f} cells/s)")
    for cell in result.cells:
        if cell.status != "ok":
            print(f"cell {cell.index} [{cell.label()}] failed: {cell.error}",
                  file=sys.stderr)
    if args.json_out:
        result.to_json(args.json_out)
        print(f"wrote {args.json_out}")
    if result.num_errors:
        if view_error is not None:
            print(f"error: {view_error}", file=sys.stderr)
        return 1
    if view_error is not None:
        return _fail(str(view_error))
    return 0


# -- the streaming runtime (online emissions, checkpoint/resume) -------------

def _cmd_stream(args: argparse.Namespace) -> int:
    import pickle
    from pathlib import Path

    from repro.core import get_enumerable_spec
    from repro.stream import (
        StreamPipeline,
        build_stream_detector,
        emission_rows,
        parse_emission_policy,
        parse_stream_spec,
        report_churn,
        skip_packets,
    )

    try:
        spec = get_enumerable_spec(args.detector)
        source = parse_stream_spec(args.source)
        policy = parse_emission_policy(args.emit_every)
    except ValueError as exc:
        return _fail(str(exc))

    detector, runner = build_stream_detector(
        spec, shards=args.shards, workers=args.workers or 1
    )
    pipeline = StreamPipeline(
        detector, policy,
        phi=args.phi, key=args.key, timestamped=spec.timestamped,
        reset_on_emit=not args.no_reset,
        # A checkpointed run must stop with the open interval intact: the
        # trailing partial flush would insert a spurious boundary and
        # reset the detector, breaking bit-identical resume.
        emit_partial=not args.checkpoint,
    )
    if args.resume:
        try:
            pipeline.restore(pickle.loads(Path(args.resume).read_bytes()))
        except (OSError, ValueError, pickle.PickleError) as exc:
            return _fail(f"cannot resume from {args.resume}: {exc}")
        print(f"resumed at packet {pipeline.packets} "
              f"(emission {pipeline.emissions}) from {args.resume}")
        if args.fast_forward:
            source = skip_packets(source, pipeline.packets)

    emissions = []
    previous: dict[int, float] = {}
    try:
        # Online: each emission prints the moment its boundary is crossed,
        # while the stream keeps flowing.
        for emission in pipeline.process(
            source, args.chunk, max_packets=args.max_packets
        ):
            stats = report_churn(previous, emission.report)
            previous = emission.report
            flag = " partial" if emission.partial else ""
            print(
                f"emit {emission.index:>4}  "
                f"[{emission.window.t0:10.3f}, {emission.window.t1:10.3f})  "
                f"pkts {emission.packets:>8}  report {len(emission.report):>4}  "
                f"+{stats.entries:<3} -{stats.exits:<3} "
                f"jaccard {stats.jaccard:4.2f}  "
                f"{int(emission.pps):>8} pps{flag}"
            )
            emissions.append(emission)
    finally:
        if runner is not None:
            runner.close()

    print()
    print(
        f"stream: {pipeline.packets} packets, {pipeline.bytes} bytes, "
        f"{pipeline.chunk_index} chunks, {pipeline.emissions} emissions"
    )
    if args.checkpoint:
        Path(args.checkpoint).write_bytes(
            pickle.dumps(pipeline.checkpoint(), protocol=pickle.HIGHEST_PROTOCOL)
        )
        print(f"checkpoint -> {args.checkpoint}")
    if args.json_out:
        result = ExperimentResult(
            experiment="stream",
            params={
                "detector": args.detector, "source": args.source,
                "chunk": args.chunk, "emit": args.emit_every,
                "phi": args.phi, "key": args.key,
                "max_packets": args.max_packets, "shards": args.shards,
                "workers": args.workers or 1,
            },
            rows=emission_rows(emissions),
            traces=[
                TraceProvenance(
                    label="stream",
                    num_packets=pipeline.packets,
                    duration_s=round(
                        emissions[-1].window.t1 - emissions[0].window.t0, 3
                    ) if emissions else 0.0,
                    total_bytes=pipeline.bytes,
                    spec=args.source,
                )
            ],
            headline={"num_emissions": pipeline.emissions},
        )
        _emit_json(result, args.json_out)
    return 0


# -- the serve runtime (multi-tenant persistent shard workers) ----------------

def _cmd_serve(args: argparse.Namespace) -> int:
    import pickle
    from pathlib import Path

    from repro.engine.serve import ServeError
    from repro.stream import ServeRuntime

    tenants: list[tuple[str, str]] = []
    for pair in args.tenant:
        name, eq, spec = pair.partition("=")
        if not eq or not name or not spec:
            return _fail(f"bad --tenant {pair!r}; expected NAME=STREAM_SPEC")
        if any(existing == name for existing, _ in tenants):
            return _fail(f"duplicate tenant name {name!r}")
        tenants.append((name, spec))

    resumes: dict[str, dict] = {}
    if args.resume_dir:
        for name, _ in tenants:
            path = Path(args.resume_dir) / f"{name}.ckpt"
            if path.exists():
                try:
                    resumes[name] = pickle.loads(path.read_bytes())
                except (OSError, pickle.PickleError, ValueError) as exc:
                    return _fail(f"cannot resume {name!r} from {path}: {exc}")

    rows: list[dict[str, object]] = []
    try:
        with ServeRuntime(
            workers=args.workers,
            shards=args.shards,
            chunk_size=args.chunk,
            recover=args.recover,
        ) as runtime:
            for name, spec in tenants:
                runtime.add_tenant(
                    name,
                    args.detector,
                    spec,
                    emit=args.emit_every,
                    phi=args.phi,
                    key=args.key,
                    reset_on_emit=not args.no_reset,
                    # Checkpointed runs keep the open interval intact so a
                    # resumed run continues bit-identically (same contract
                    # as `repro-hhh stream --checkpoint`).
                    emit_partial=not args.checkpoint_dir,
                    max_packets=args.max_packets,
                    resume=resumes.get(name),
                    fast_forward=args.fast_forward,
                    checkpoint_every=args.checkpoint_every,
                )
                if name in resumes:
                    pipeline = runtime.pipeline(name)
                    print(f"{name}: resumed at packet {pipeline.packets} "
                          f"(emission {pipeline.emissions})")
            for name, emission in runtime.run():
                flag = " partial" if emission.partial else ""
                print(
                    f"{name:<10} emit {emission.index:>4}  "
                    f"[{emission.window.t0:10.3f}, "
                    f"{emission.window.t1:10.3f})  "
                    f"pkts {emission.packets:>8}  "
                    f"report {len(emission.report):>4}{flag}"
                )
                rows.append({
                    "tenant": name,
                    "emission": emission.index,
                    "t0": round(emission.window.t0, 3),
                    "t1": round(emission.window.t1, 3),
                    "packets": emission.packets,
                    "bytes": emission.bytes,
                    "report_size": len(emission.report),
                    "partial": emission.partial,
                })
            print()
            total_packets = 0
            total_bytes = 0
            total_emissions = 0
            for name, _ in tenants:
                if name in runtime.failed:
                    continue
                pipeline = runtime.pipeline(name)
                total_packets += pipeline.packets
                total_bytes += pipeline.bytes
                total_emissions += pipeline.emissions
                print(f"{name}: {pipeline.packets} packets, "
                      f"{pipeline.bytes} bytes, "
                      f"{pipeline.emissions} emissions")
                if args.checkpoint_dir:
                    directory = Path(args.checkpoint_dir)
                    directory.mkdir(parents=True, exist_ok=True)
                    path = directory / f"{name}.ckpt"
                    path.write_bytes(pickle.dumps(
                        runtime.checkpoint_tenant(name),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    ))
                    print(f"{name}: checkpoint -> {path}")
            failed = dict(runtime.failed)
            recoveries = len(runtime.recoveries)
            if recoveries:
                print(f"recovered {recoveries} worker crash(es)")
    except (ValueError, ServeError) as exc:
        # TraceSpecError, bad emission policies, and ServeError (a
        # RuntimeError: bad pool shape, unknown/non-enumerable detectors)
        # — the registration-time failures before any tenant streams.
        return _fail(str(exc))

    for name, message in failed.items():
        print(f"{name}: FAILED — {message}", file=sys.stderr)
    if args.json_out:
        result = ExperimentResult(
            experiment="serve",
            params={
                "detector": args.detector,
                "tenants": [f"{n}={s}" for n, s in tenants],
                "workers": args.workers, "shards": args.shards,
                "chunk": args.chunk, "emit": args.emit_every,
                "phi": args.phi, "key": args.key,
                "max_packets": args.max_packets,
            },
            rows=rows,
            traces=[
                TraceProvenance(
                    label=name, num_packets=0, duration_s=0.0,
                    total_bytes=0, spec=spec,
                )
                for name, spec in tenants
            ],
            headline={
                "tenants": len(tenants),
                "failed": len(failed),
                "recoveries": recoveries,
                "num_emissions": total_emissions,
                "stream_packets": total_packets,
                "stream_bytes": total_bytes,
            },
        )
        _emit_json(result, args.json_out)
    return 1 if failed else 0


# -- the equivalence fuzz harness ---------------------------------------------

def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import (
        FuzzError,
        FuzzHarness,
        case_filename,
        read_case,
        replay_case,
        write_case,
    )

    if args.replay:
        try:
            case = read_case(args.replay)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot read fuzz case {args.replay}: {exc}")
        print(f"replaying {case.describe()}")
        try:
            divergence = replay_case(case)
        except (FuzzError, ValueError, RuntimeError) as exc:
            return _fail(f"replay failed to execute: {exc}")
        if divergence is None:
            print("no divergence: the recorded case no longer reproduces")
            return 1
        print(f"reproduced: {divergence}")
        return 0

    def on_pair(index, pair, divergence):
        if divergence is not None:
            print(f"pair {index:>4}  {pair.describe()}  DIVERGED: "
                  f"{divergence.kind}")
        elif args.verbose:
            print(f"pair {index:>4}  {pair.describe()}  ok")

    try:
        harness = FuzzHarness(
            seed=args.seed,
            budget_s=args.budget_s,
            max_pairs=args.pairs,
            detectors=args.detector or None,
            axes=args.axis or None,
            shrink=not args.no_shrink,
            on_pair=on_pair,
        )
        report = harness.run()
    except (FuzzError, KeyError) as exc:
        return _fail(str(exc))

    print()
    print(format_table(report.rows()))
    print()
    head = report.headline()
    print(
        f"fuzz: seed {head['seed']}, {head['pairs']} pairs in "
        f"{head['elapsed_s']}s ({head['pairs_per_s']}/s), "
        f"{len(report.axes_covered)} axes x "
        f"{len(report.detectors_covered)} detectors, "
        f"{head['divergences']} divergences, {head['errors']} errors"
    )
    for error in report.errors:
        print(f"  error: {error}")
    for case in report.cases:
        print(f"  case: {case.describe()}")

    if args.cases_dir and report.cases:
        for case in report.cases:
            path = Path(args.cases_dir) / case_filename(case)
            write_case(case, path)
            print(f"wrote {path}")
    if args.json_out:
        headline = dict(head)
        if report.cases:
            headline["cases"] = [case.to_dict() for case in report.cases]
        result = ExperimentResult(
            experiment="fuzz",
            params={
                "budget_s": args.budget_s, "seed": args.seed,
                "pairs": args.pairs,
                "detectors": ",".join(args.detector or ()),
                "axes": ",".join(args.axis or ()),
                "shrink": not args.no_shrink,
            },
            rows=report.rows(),
            headline=headline,
        )
        _emit_json(result, args.json_out)
    return 1 if report.divergences else 0


# -- paper-artefact aliases (thin wrappers over the registry path) -----------

def _cmd_stats(args: argparse.Namespace) -> int:
    spec = f"caida:day={args.day},duration={args.duration}"
    try:
        trace = TraceSpec.parse(spec).build()
    except TraceSpecError as exc:
        return _fail(str(exc))
    print(f"synthetic CAIDA-like day {args.day}:")
    for line in compute_stats(trace).to_lines():
        print("  " + line)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    specs = [
        f"caida:day={day},duration={args.duration}"
        for day in range(args.days)
    ]
    try:
        result = run_experiment(
            "hidden-hhh",
            trace_specs=specs,
            overrides={"mode": args.mode},
            labels=[f"day{day}" for day in range(args.days)],
        )
    except ValueError as exc:
        # ExperimentError/TraceSpecError plus the cross-parameter checks
        # the analysis harnesses enforce (all ValueError subclasses/uses).
        return _fail(str(exc))
    print("Figure 2 — percentage of hidden HHHs")
    print(result.to_table())
    print()
    print(f"max hidden: {result.headline['max_hidden_percent']:.1f}% "
          "(paper reports up to 34%)")
    _emit_json(result, args.json_out)
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(
            "window-sensitivity",
            trace_specs=[f"sensitivity:duration={args.duration}"],
            overrides={"phi": args.phi},
        )
    except ValueError as exc:
        # ExperimentError/TraceSpecError plus the cross-parameter checks
        # the analysis harnesses enforce (all ValueError subclasses/uses).
        return _fail(str(exc))
    print("Figure 3 — Jaccard similarity vs baseline window")
    print(result.to_table())
    if args.plot:
        sensitivity = result.extras["sensitivity"]
        for delta in (0.04, 0.10):
            print()
            print(sensitivity.to_cdf_plot(delta))
    _emit_json(result, args.json_out)
    return 0


def _cmd_sec3(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(
            "decay-comparison",
            trace_specs=[f"caida:day=0,duration={args.duration}"],
            overrides={"window_size": args.window, "phi": args.phi},
        )
    except ValueError as exc:
        # ExperimentError/TraceSpecError plus the cross-parameter checks
        # the analysis harnesses enforce (all ValueError subclasses/uses).
        return _fail(str(exc))
    print("Section 3 — time-decaying vs disjoint-window detection")
    print(f"truth occurrences: {result.headline['num_truth_occurrences']}, "
          f"hidden: {result.headline['num_hidden_occurrences']}")
    print(result.to_table())
    _emit_json(result, args.json_out)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    names = args.detector or ["countmin", "ondemand-tdbf", "spacesaving"]
    try:
        result = run_experiment(
            "batch-throughput",
            trace_specs=[f"caida:day=0,duration={args.duration}"],
            overrides={"detectors": tuple(names)},
        )
    except ValueError as exc:
        # ExperimentError/TraceSpecError plus the cross-parameter checks
        # the analysis harnesses enforce (all ValueError subclasses/uses).
        return _fail(str(exc))
    print("Batch vs scalar update throughput (packets/second)")
    print(result.to_table())
    _emit_json(result, args.json_out)
    return 0


def _cmd_pcap(args: argparse.Namespace) -> int:
    spec = f"caida:day={args.day},duration={args.duration}"
    try:
        trace = TraceSpec.parse(spec).build()
    except TraceSpecError as exc:
        return _fail(str(exc))
    count = write_pcap(args.out, trace.packets())
    print(f"wrote {count} packets to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-hhh",
        description=(
            "Reproduction of 'Revealing Hidden Hierarchical Heavy Hitters "
            "in network traffic' (SIGCOMM Posters 2018)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "run", help="run a registered experiment on string-addressed traces"
    )
    p.add_argument("experiment",
                   help="registry name; see 'repro-hhh experiments'")
    p.add_argument("--trace", action="append", metavar="SPEC",
                   help="trace spec like 'caida:day=0,duration=60' "
                        "(repeatable; default: the experiment's default)")
    p.add_argument("--label", action="append",
                   help="label for the matching --trace (repeatable)")
    p.add_argument("--set", action="append", dest="set_", metavar="KEY=VALUE",
                   help="override an experiment parameter (repeatable)")
    p.add_argument("--shards", metavar="N",
                   help="shard count(s) for sharded experiments "
                        "(sugar for --set shards=N; accepts '1,2,4')")
    p.add_argument("--workers", type=_min1_int, metavar="M",
                   help="process-pool workers for sharded experiments "
                        "(sugar for --set workers=M)")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="also write the result artifact as JSON")
    p.add_argument("--smoke", action="store_true",
                   help="tiny preset trace and parameters (CI smoke runs)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "sweep",
        help="fan a grid of experiment x trace x param cells across cores",
    )
    p.add_argument("--grid", required=True, metavar="GRID",
                   help="semicolon-separated axes: 'exp=a,b;trace=S1,S2;"
                        "param=v1,v2' ('zip:' prefix for zipped expansion; "
                        "param axes apply to the experiments that declare "
                        "them)")
    p.add_argument("--workers", type=_min1_int, default=None, metavar="N",
                   help="process-pool workers (>1 implies the process "
                        "backend; default: serial, or every core when "
                        "--backend process is given without --workers)")
    p.add_argument("--backend", choices=("serial", "process"), default=None,
                   help="cell execution backend (default: from --workers)")
    p.add_argument("--group-by", metavar="COLS",
                   help="pivot the cell table by comma-separated columns "
                        "(e.g. 'experiment,detector'), averaging metrics")
    p.add_argument("--best", metavar="METRIC",
                   help="also report the best cell by a headline metric")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the repro-hhh/sweep-result/v1 artifact")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "stream",
        help="drive a detector over a chunked stream with online emissions",
    )
    p.add_argument("detector",
                   help="registry name of an enumerable detector")
    p.add_argument("--source", required=True, metavar="SPEC",
                   help="stream spec: trace specs spliced with '+', "
                        "interleaved with '&', 'repeat:' for infinite "
                        "scenario sources, '@xF' rate rewrite")
    p.add_argument("--chunk", type=_min1_int, default=8192, metavar="N",
                   help="packets per columnar chunk (default 8192)")
    p.add_argument("--emit-every", default="2s", metavar="POLICY",
                   help="'Np' packets, 'Ts' trace seconds, or 'window:T' "
                        "driver-aligned (default 2s)")
    p.add_argument("--phi", type=_phi_float, default=0.02,
                   help="report threshold as a fraction of interval bytes")
    p.add_argument("--key", choices=("src", "dst"), default="src",
                   help="trace column keying the detector")
    p.add_argument("--max-packets", type=_min1_int, default=1_000_000,
                   metavar="N",
                   help="hard packet cap (bounds infinite 'repeat:' "
                        "sources; default 1000000)")
    p.add_argument("--shards", type=_min1_int, default=1,
                   help="key-partitioned shards wrapping the detector")
    p.add_argument("--workers", type=_min1_int, default=None,
                   help="process-pool workers for shard updates")
    p.add_argument("--no-reset", action="store_true",
                   help="keep detector state across emissions "
                        "(continuous-time detectors)")
    p.add_argument("--checkpoint", metavar="FILE",
                   help="write the pipeline checkpoint at end of run "
                        "(suppresses the trailing partial report so a "
                        "resumed run continues the open interval "
                        "bit-identically)")
    p.add_argument("--resume", metavar="FILE",
                   help="restore a checkpoint before streaming")
    p.add_argument("--fast-forward", action="store_true",
                   help="with --resume: skip the packets already consumed, "
                        "so the same deterministic --source continues "
                        "where the checkpoint stopped")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="also write the emission table as a JSON artifact")
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "serve",
        help="multiplex tenant streams over persistent shard workers",
    )
    p.add_argument("--tenant", action="append", required=True,
                   metavar="NAME=SPEC",
                   help="a tenant stream as NAME=STREAM_SPEC (repeatable); "
                        "same spec grammar as 'stream --source'")
    p.add_argument("--detector", default="countmin-hh",
                   help="registry name of an enumerable detector "
                        "(default countmin-hh)")
    p.add_argument("--workers", type=_min1_int, default=1,
                   help="persistent shard-worker processes (default 1)")
    p.add_argument("--shards", type=_min1_int, default=None,
                   help="logical key-partitioned shards "
                        "(default: one per worker)")
    p.add_argument("--chunk", type=_min1_int, default=8192, metavar="N",
                   help="packets per chunk and shared-memory slot "
                        "(default 8192)")
    p.add_argument("--emit-every", default="2s", metavar="POLICY",
                   help="'Np' packets, 'Ts' trace seconds, or 'window:T' "
                        "driver-aligned (default 2s)")
    p.add_argument("--phi", type=_phi_float, default=0.02,
                   help="report threshold as a fraction of interval bytes")
    p.add_argument("--key", choices=("src", "dst"), default="src",
                   help="trace column keying the detector")
    p.add_argument("--max-packets", type=_min1_int, default=1_000_000,
                   metavar="N",
                   help="hard per-tenant packet cap (default 1000000)")
    p.add_argument("--no-reset", action="store_true",
                   help="keep detector state across emissions "
                        "(continuous-time detectors)")
    p.add_argument("--checkpoint-dir", metavar="DIR",
                   help="write DIR/NAME.ckpt per tenant at end of run "
                        "(suppresses trailing partial reports for "
                        "bit-identical resume)")
    p.add_argument("--resume-dir", metavar="DIR",
                   help="restore DIR/NAME.ckpt for each tenant that has one")
    p.add_argument("--fast-forward", action="store_true",
                   help="with --resume-dir: skip the packets each "
                        "checkpoint already consumed")
    p.add_argument("--checkpoint-every", type=_min1_int, default=None,
                   metavar="N",
                   help="auto-checkpoint each tenant every N emissions "
                        "(and once at admission) so it survives worker "
                        "crashes; without it a crash fails the tenant")
    p.add_argument("--recover", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="supervise worker crashes: respawn dead workers "
                        "and rebuild tenants from their last "
                        "--checkpoint-every checkpoint (default on; "
                        "--no-recover lets a crash fail the run)")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="also write the emission table as a JSON artifact")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "fuzz",
        help="fuzz the promised layer equivalences over sampled plan pairs",
    )
    p.add_argument("--budget-s", type=_positive_float, default=20.0,
                   metavar="S",
                   help="wall-clock fuzz budget in seconds (default 20)")
    p.add_argument("--seed", type=int, default=0,
                   help="plan-space seed; the run is a pure function of it")
    p.add_argument("--pairs", type=_min1_int, default=None, metavar="N",
                   help="additional cap on executed plan pairs")
    p.add_argument("--detector", action="append", metavar="NAME",
                   help="restrict the plan space to this registry detector "
                        "(repeatable; default: all eligible)")
    p.add_argument("--axis", action="append", metavar="AXIS",
                   choices=_FUZZ_AXES,
                   help="restrict to this equivalence axis (repeatable; "
                        f"one of {', '.join(_FUZZ_AXES)})")
    p.add_argument("--no-shrink", action="store_true",
                   help="report raw diverging pairs without minimisation")
    p.add_argument("--cases-dir", metavar="DIR",
                   help="write each divergence as a repro-hhh/fuzz-case/v1 "
                        "JSON artifact under DIR")
    p.add_argument("--replay", metavar="FILE",
                   help="replay a recorded fuzz-case artifact instead of "
                        "fuzzing (exit 0 when it still reproduces)")
    p.add_argument("--verbose", action="store_true",
                   help="print every executed pair, not just divergences")
    p.add_argument("--json", dest="json_out", metavar="FILE",
                   help="write the run summary as a JSON result artifact")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("experiments", help="list the experiment registry")
    p.add_argument("--names", action="store_true",
                   help="plain names only (one per line, for scripting)")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser("scenarios", help="list the trace-scenario registry")
    p.set_defaults(func=_cmd_scenarios)

    p = sub.add_parser("detectors", help="list the detector registry")
    p.set_defaults(func=_cmd_detectors)

    p = sub.add_parser("stats", help="summarise a synthetic trace")
    p.add_argument("--day", type=_day_int, default=0)
    p.add_argument("--duration", type=_positive_float, default=120.0)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("fig2", help="hidden-HHH percentages (Figure 2)")
    p.add_argument("--duration", type=_positive_float, default=120.0)
    p.add_argument("--days", type=_min1_int, default=4)
    p.add_argument("--mode", choices=("unique", "occurrences"),
                   default="unique")
    p.add_argument("--json", dest="json_out", metavar="FILE")
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="window-size sensitivity (Figure 3)")
    p.add_argument("--duration", type=_positive_float, default=240.0)
    p.add_argument("--phi", type=_phi_float, default=0.05)
    p.add_argument("--plot", action="store_true",
                   help="also print ASCII CDF curves")
    p.add_argument("--json", dest="json_out", metavar="FILE")
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("sec3", help="decay-vs-windows comparison (Section 3)")
    p.add_argument("--duration", type=_positive_float, default=120.0)
    p.add_argument("--window", type=_positive_float, default=10.0)
    p.add_argument("--phi", type=_phi_float, default=0.05)
    p.add_argument("--json", dest="json_out", metavar="FILE")
    p.set_defaults(func=_cmd_sec3)

    p = sub.add_parser(
        "bench", help="batch vs scalar update throughput by detector name"
    )
    p.add_argument("--detector", action="append", default=None,
                   help="registry name (repeatable; default: a sample)")
    p.add_argument("--duration", type=_positive_float, default=20.0)
    p.add_argument("--json", dest="json_out", metavar="FILE")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("pcap", help="export a synthetic trace to pcap")
    p.add_argument("--out", required=True)
    p.add_argument("--day", type=_day_int, default=0)
    p.add_argument("--duration", type=_positive_float, default=30.0)
    p.set_defaults(func=_cmd_pcap)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
