"""Time-decaying Bloom filter, synchronous-tick variant.

The straightforward reading of Bianchi et al. 2011: a counting-Bloom-style
cell array whose cells all erode according to a decay law.  This variant
applies the decay to *every* cell on an explicit :meth:`tick` (as a software
implementation with a background timer would); the lazy per-cell variant
that avoids the sweep — the form suitable for match-action hardware — is
:class:`repro.decay.OnDemandTDBF`.

Queries estimate the *decayed volume* of a key (minimum over its cells,
exactly like a counting Bloom filter), so a key is "currently heavy" when
its estimate is above a threshold — no window, no reset, no counter
overflow: decay continuously drains what insertions add.
"""

from __future__ import annotations

from repro.decay.laws import DecayLaw
from repro.hashing.families import HashFamily, pairwise_indep_family


class TimeDecayingBloomFilter:
    """Cell array + decay law with explicit synchronous ticks."""

    def __init__(
        self,
        cells: int = 8192,
        hashes: int = 4,
        law: DecayLaw | None = None,
        family: HashFamily | None = None,
    ) -> None:
        if cells < 1 or hashes < 1:
            raise ValueError(f"need cells, hashes >= 1; got {cells}, {hashes}")
        if law is None:
            raise ValueError("a DecayLaw is required (e.g. ExponentialDecay)")
        self.cells = cells
        self.hashes = hashes
        self.law = law
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, cells) for i in range(hashes)]
        self._array = [0.0] * cells
        self._clock = 0.0

    @property
    def clock(self) -> float:
        """Time up to which all cells have been decayed."""
        return self._clock

    def tick(self, now: float) -> None:
        """Advance the filter's clock, decaying every cell."""
        age = now - self._clock
        if age < 0:
            raise ValueError(f"clock moving backwards: {self._clock} -> {now}")
        if age == 0:
            return
        decay = self.law.decay
        self._array = [decay(v, age) if v else 0.0 for v in self._array]
        self._clock = now

    def update(self, key: int, weight: float, ts: float) -> None:
        """Insert ``weight`` for ``key`` at time ``ts`` (ticks forward first)."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        if ts > self._clock:
            self.tick(ts)
        for f in self._funcs:
            self._array[f(key)] += weight

    def estimate(self, key: int, now: float | None = None) -> float:
        """Decayed volume overestimate (minimum over the key's cells)."""
        if now is not None and now > self._clock:
            self.tick(now)
        return min(self._array[f(key)] for f in self._funcs)

    def contains(self, key: int, now: float | None = None,
                 threshold: float = 0.0) -> bool:
        """Membership with an optional volume threshold."""
        return self.estimate(key, now) > threshold

    @property
    def num_counters(self) -> int:
        """Cells allocated (for resource accounting)."""
        return self.cells
