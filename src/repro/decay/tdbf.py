"""Time-decaying Bloom filter, synchronous-tick variant.

The straightforward reading of Bianchi et al. 2011: a counting-Bloom-style
cell array whose cells all erode according to a decay law.  This variant
applies the decay to *every* cell on an explicit :meth:`tick` (as a software
implementation with a background timer would); the lazy per-cell variant
that avoids the sweep — the form suitable for match-action hardware — is
:class:`repro.decay.OnDemandTDBF`.

Cells are a numpy float64 array, so the tick sweep is vectorized.  For
laws that are linear in the value (exponential decay, which exposes
``decay_factor``), ``update_batch`` is fully vectorized too: one tick to
the batch's last timestamp, each contribution pre-decayed by its own age
against that tick, then one scatter-add per hash function — exactly what a
per-packet replay produces, because multiplicative decay distributes over
sums.  Other laws keep the exact scalar replay.

Queries estimate the *decayed volume* of a key (minimum over its cells,
exactly like a counting Bloom filter), so a key is "currently heavy" when
its estimate is above a threshold — no window, no reset, no counter
overflow: decay continuously drains what insertions add.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import Detector
from repro.core.registry import register_detector
from repro.decay.batching import as_decayed_batch
from repro.decay.laws import DecayLaw, ExponentialDecay
from repro.hashing.families import HashFamily, pairwise_indep_family


class TimeDecayingBloomFilter(Detector):
    """Cell array + decay law with explicit synchronous ticks."""

    def __init__(
        self,
        cells: int = 8192,
        hashes: int = 4,
        law: DecayLaw | None = None,
        family: HashFamily | None = None,
    ) -> None:
        if cells < 1 or hashes < 1:
            raise ValueError(f"need cells, hashes >= 1; got {cells}, {hashes}")
        if law is None:
            raise ValueError("a DecayLaw is required (e.g. ExponentialDecay)")
        self.cells = cells
        self.hashes = hashes
        self.law = law
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, cells) for i in range(hashes)]
        self._vfuncs = [family.function_array(i, cells) for i in range(hashes)]
        self._array = np.zeros(cells, dtype=np.float64)
        self._clock = 0.0

    @property
    def clock(self) -> float:
        """Time up to which all cells have been decayed."""
        return self._clock

    def tick(self, now: float) -> None:
        """Advance the filter's clock, decaying every cell."""
        age = now - self._clock
        if age < 0:
            raise ValueError(f"clock moving backwards: {self._clock} -> {now}")
        if age == 0:
            return
        self._array = self.law.decay_array(self._array, age)
        self._clock = now

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Insert ``weight`` for ``key`` at time ``ts`` (ticks forward first)."""
        if ts is None:
            raise TypeError("TimeDecayingBloomFilter.update() requires the "
                            "packet timestamp 'ts'")
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        if ts > self._clock:
            self.tick(ts)
        for f in self._funcs:
            self._array[f(key)] += weight

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized batch insertion for value-linear laws.

        Under scalar replay each packet is inserted *undecayed* at the
        clock frame current when it arrives — the running max of the clock
        and the timestamps seen so far (stale packets do not rewind the
        clock).  The batch path reproduces that exactly: one tick to the
        final frame, each contribution decayed by final_frame -
        insertion_frame, then one scatter-add per hash function.
        """
        # No min_dense threshold: the scalar path ticks the whole cell
        # array per packet, so the one-tick batch path wins at any size.
        prepared = as_decayed_batch(self.law, keys, weights, ts)
        if prepared is None:
            super().update_batch(keys, weights, ts)
            return
        keys, weights, ts, decay_factor = prepared
        frames = np.maximum(np.maximum.accumulate(ts), self._clock)
        newest = float(frames[-1])
        if newest > self._clock:
            self.tick(newest)
        contributions = weights * decay_factor(newest - frames)
        for vf in self._vfuncs:
            np.add.at(self._array, vf(keys), contributions)

    def estimate(self, key: int, now: float | None = None) -> float:
        """Decayed volume overestimate (minimum over the key's cells)."""
        if now is not None and now > self._clock:
            self.tick(now)
        return float(min(self._array[f(key)] for f in self._funcs))

    def contains(self, key: int, now: float | None = None,
                 threshold: float = 0.0) -> bool:
        """Membership with an optional volume threshold."""
        return self.estimate(key, now) > threshold

    def reset(self) -> None:
        """Zero every cell and rewind the clock."""
        self._array = np.zeros(self.cells, dtype=np.float64)
        self._clock = 0.0

    @property
    def num_counters(self) -> int:
        """Cells allocated (for resource accounting)."""
        return self.cells


def _tdbf_factory(
    cells: int = 8192,
    hashes: int = 4,
    law: DecayLaw | None = None,
    family: HashFamily | None = None,
) -> TimeDecayingBloomFilter:
    """Registry factory with a default exponential law (tau = 10 s)."""
    return TimeDecayingBloomFilter(
        cells, hashes, law or ExponentialDecay(tau=10.0), family
    )


register_detector(
    "tdbf", _tdbf_factory, timestamped=True, enumerable=False,
    description="Time-decaying Bloom filter, synchronous ticks "
                "(vectorized batch for exponential decay)",
)
