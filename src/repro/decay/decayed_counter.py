"""Per-key decayed counters.

:class:`DecayedCounter` is one lazily-decayed scalar;
:class:`ExactDecayedCounts` keeps one per key with no memory bound — the
ground truth that the bounded structures (TDBF, decayed Space-Saving) are
tested and benchmarked against.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import Detector
from repro.core.registry import AccuracyFloor, register_detector
from repro.decay.laws import DecayLaw, ExponentialDecay, same_law


class DecayedCounter:
    """A single counter with lazy (on-demand) decay."""

    __slots__ = ("law", "value", "stamp")

    def __init__(self, law: DecayLaw, value: float = 0.0, stamp: float = 0.0
                 ) -> None:
        self.law = law
        self.value = value
        self.stamp = stamp

    def add(self, weight: float, ts: float) -> None:
        """Decay to ``ts`` then add ``weight``."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        if ts >= self.stamp:
            self.value = self.law.decay(self.value, ts - self.stamp) + weight
            self.stamp = ts
        else:
            # Late (reordered) observation: decay the contribution instead.
            self.value += self.law.decay(weight, self.stamp - ts)

    def add_batch(self, weights: np.ndarray, ts: np.ndarray) -> None:
        """Vectorized :meth:`add` over aligned weight/timestamp columns.

        For value-linear laws (the ``decay_factor`` hook) and time-sorted
        chunks, every contribution decays by its own factor into the
        chunk-final frame and one sum applies the lot; late packets (before
        the current stamp — a sorted prefix) decay into the standing frame
        like the scalar late-packet branch.  Other laws or reordered
        chunks replay scalar adds.
        """
        weights = np.asarray(weights, dtype=np.float64)
        ts = np.asarray(ts, dtype=np.float64)
        n = weights.shape[0]
        if n == 0:
            return
        if np.any(weights < 0):
            raise ValueError("negative weight in batch")
        factor = getattr(self.law, "decay_factor", None)
        if factor is None or n < 8 or np.any(np.diff(ts) < 0):
            for weight, t in zip(weights.tolist(), ts.tolist()):
                self.add(weight, t)
            return
        late = ts < self.stamp
        if late.any():
            self.value += float(
                np.sum(weights[late] * factor(self.stamp - ts[late]))
            )
        fresh = ~late
        if fresh.any():
            frame = float(ts[-1])
            self.value = float(
                self.value * factor(frame - self.stamp)
                + np.sum(weights[fresh] * factor(frame - ts[fresh]))
            )
            self.stamp = frame

    def read(self, now: float) -> float:
        """Decayed value at time ``now`` (does not rewrite state)."""
        if now <= self.stamp:
            return self.value
        return self.law.decay(self.value, now - self.stamp)


class ExactDecayedCounts(Detector):
    """Unbounded per-key decayed counters (the decayed ground truth).

    Implements the streaming-detector protocol extended with timestamps:
    ``update(key, weight, ts)`` and ``query(threshold, now)``.
    """

    def __init__(self, law: DecayLaw) -> None:
        self.law = law
        self._counters: dict[int, DecayedCounter] = {}

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Account ``weight`` for ``key`` at time ``ts``."""
        if ts is None:
            raise TypeError("ExactDecayedCounts.update() requires the packet "
                            "timestamp 'ts'")
        counter = self._counters.get(key)
        if counter is None:
            counter = DecayedCounter(self.law)
            self._counters[key] = counter
        counter.add(weight, ts)

    def estimate(self, key: int, now: float) -> float:
        """Exact decayed volume of ``key`` at ``now`` (0 when unseen)."""
        counter = self._counters.get(key)
        return counter.read(now) if counter is not None else 0.0

    def query(self, threshold: float,
              now: float | None = None) -> dict[int, float]:
        """Keys whose decayed volume at ``now`` reaches ``threshold``."""
        if now is None:
            raise TypeError("ExactDecayedCounts.query() requires the query "
                            "time 'now'")
        out: dict[int, float] = {}
        for key, counter in self._counters.items():
            value = counter.read(now)
            if value >= threshold:
                out[key] = value
        return out

    def compact(self, now: float, floor: float) -> int:
        """Drop keys whose decayed value fell below ``floor``; returns how
        many were dropped.  Call periodically to bound memory in practice."""
        dead = [
            key for key, counter in self._counters.items()
            if counter.read(now) < floor
        ]
        for key in dead:
            del self._counters[key]
        return len(dead)

    def merge(self, other: Detector) -> None:
        """Fold another instance's counters into this one.

        Keys held by only one side are copied verbatim, so merging
        key-partitioned shards (disjoint key sets) is exact under *any*
        law.  Keys present on both sides are brought to a common frame and
        summed — exact for value-linear laws (exponential), a one-sided
        approximation otherwise.
        """
        if not isinstance(other, ExactDecayedCounts):
            raise ValueError("can only merge ExactDecayedCounts")
        if not same_law(self.law, other.law):
            raise ValueError(
                f"can only merge identical laws; got {self.law!r} "
                f"and {other.law!r}"
            )
        decay = self.law.decay
        for key, theirs in other._counters.items():
            mine = self._counters.get(key)
            if mine is None:
                self._counters[key] = DecayedCounter(
                    self.law, theirs.value, theirs.stamp
                )
                continue
            frame = max(mine.stamp, theirs.stamp)
            mine.value = (
                decay(mine.value, frame - mine.stamp)
                + decay(theirs.value, frame - theirs.stamp)
            )
            mine.stamp = frame

    def reset(self) -> None:
        """Drop all counters."""
        self._counters.clear()

    def __len__(self) -> int:
        return len(self._counters)

    @property
    def num_counters(self) -> int:
        """Live counters (unbounded ground truth grows with the key set)."""
        return len(self._counters)


def _exact_decayed_factory(law: DecayLaw | None = None) -> ExactDecayedCounts:
    """Registry factory with a default exponential law (tau = 10 s)."""
    return ExactDecayedCounts(law or ExponentialDecay(tau=10.0))


register_detector(
    "exact-decayed", _exact_decayed_factory, timestamped=True, mergeable=True,
    description="Unbounded per-key decayed counters (ground truth)",
    accuracy=AccuracyFloor(recall=0.99, f1=0.99, truth="decayed", horizon=10.0),
)
