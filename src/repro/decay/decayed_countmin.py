"""Time-decaying Count-Min sketch — the "extension" of the TDBF.

The paper's Section 3 cites the time-decaying Bloom filter "and its
extension".  The natural extension from membership to frequency is a
Count-Min whose cells are lazily-decayed ``(value, timestamp)`` pairs: the
same on-demand decay as :class:`repro.decay.OnDemandTDBF` applied to the
row-array geometry of a Count-Min, giving continuous-time frequency
overestimates with d-row min-noise instead of the TDBF's k-cell min.

Compared per cell to the TDBF: identical state (one value + one stamp),
identical update cost; the difference is purely the indexing geometry
(rows x width vs one flat array), which lowers collision noise for point
queries at equal memory.  The batch path mirrors the TDBF's: exact
vectorized scatter updates for value-linear laws (exponential), scalar
replay otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import Detector
from repro.core.registry import register_detector
from repro.decay.batching import (
    apply_decayed_batch,
    as_decayed_batch,
    merge_lazily_stamped,
)
from repro.decay.laws import DecayLaw, ExponentialDecay
from repro.hashing.families import HashFamily, pairwise_indep_family


class DecayedCountMin(Detector):
    """Count-Min over lazily-decayed cells."""

    def __init__(
        self,
        width: int = 1024,
        rows: int = 4,
        law: DecayLaw | None = None,
        family: HashFamily | None = None,
    ) -> None:
        if width < 1 or rows < 1:
            raise ValueError(f"need width, rows >= 1; got {width}x{rows}")
        if law is None:
            raise ValueError("a DecayLaw is required (e.g. ExponentialDecay)")
        self.width = width
        self.rows = rows
        self.law = law
        family = family or pairwise_indep_family()
        self._hashes = [family.function(r, width) for r in range(rows)]
        self._vhashes = [family.function_array(r, width) for r in range(rows)]
        self._values = np.zeros((rows, width), dtype=np.float64)
        self._stamps = np.zeros((rows, width), dtype=np.float64)

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Decay each touched cell to ``ts``, then add ``weight``."""
        if ts is None:
            raise TypeError("DecayedCountMin.update() requires the packet "
                            "timestamp 'ts'")
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        decay = self.law.decay
        for h, values, stamps in zip(self._hashes, self._values, self._stamps):
            i = h(key)
            age = ts - stamps[i]
            if age >= 0:
                values[i] = decay(float(values[i]), age) + weight
                stamps[i] = ts
            else:
                # Late packet: decay its contribution instead of the cell.
                values[i] += decay(weight, -age)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized batch insertion for value-linear laws (per row)."""
        prepared = as_decayed_batch(
            self.law, keys, weights, ts, min_dense=self.width // 128
        )
        if prepared is None:
            super().update_batch(keys, weights, ts)
            return
        keys, weights, ts, decay_factor = prepared
        for vh, values, stamps in zip(self._vhashes, self._values, self._stamps):
            apply_decayed_batch(
                values, stamps, [vh(keys)], weights, ts, decay_factor
            )

    def estimate(self, key: int, now: float) -> float:
        """Decayed frequency overestimate (min over rows) at ``now``."""
        decay = self.law.decay
        best = None
        for h, values, stamps in zip(self._hashes, self._values, self._stamps):
            i = h(key)
            age = now - stamps[i]
            v = decay(float(values[i]), age) if age > 0 else float(values[i])
            if best is None or v < best:
                best = v
        return best if best is not None else 0.0

    def contains(self, key: int, now: float, threshold: float = 0.0) -> bool:
        """Membership with an optional decayed-volume threshold."""
        return self.estimate(key, now) > threshold

    def reset(self) -> None:
        """Zero every cell and stamp, keeping the hash functions."""
        self._values.fill(0.0)
        self._stamps.fill(0.0)

    def merge(self, other: Detector) -> None:
        """Cellwise decay-to-common-frame sum (value-linear laws only).

        Exact for exponential decay: each cell is a linear functional of
        its updates, so merging key-partitioned shards reproduces the
        single-stream sketch.  Requires equal geometry and an identically
        parameterised value-linear law on both sides.
        """
        merge_lazily_stamped(self, other, ("width", "rows", "_hashes"))

    @property
    def num_counters(self) -> int:
        """Cells allocated (for resource accounting)."""
        return self.width * self.rows


def _decayed_cm_factory(
    width: int = 1024,
    rows: int = 4,
    law: DecayLaw | None = None,
    family: HashFamily | None = None,
) -> DecayedCountMin:
    """Registry factory with a default exponential law (tau = 10 s)."""
    return DecayedCountMin(width, rows, law or ExponentialDecay(tau=10.0), family)


register_detector(
    "decayed-countmin", _decayed_cm_factory, timestamped=True,
    enumerable=False, mergeable=True,
    description="Lazily-decayed Count-Min "
                "(vectorized batch for exponential decay)",
)
