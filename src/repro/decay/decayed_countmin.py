"""Time-decaying Count-Min sketch — the "extension" of the TDBF.

The paper's Section 3 cites the time-decaying Bloom filter "and its
extension".  The natural extension from membership to frequency is a
Count-Min whose cells are lazily-decayed ``(value, timestamp)`` pairs: the
same on-demand decay as :class:`repro.decay.OnDemandTDBF` applied to the
row-array geometry of a Count-Min, giving continuous-time frequency
overestimates with d-row min-noise instead of the TDBF's k-cell min.

Compared per cell to the TDBF: identical state (one value + one stamp),
identical update cost; the difference is purely the indexing geometry
(rows x width vs one flat array), which lowers collision noise for point
queries at equal memory.
"""

from __future__ import annotations

from repro.decay.laws import DecayLaw
from repro.hashing.families import HashFamily, pairwise_indep_family


class DecayedCountMin:
    """Count-Min over lazily-decayed cells."""

    def __init__(
        self,
        width: int = 1024,
        rows: int = 4,
        law: DecayLaw | None = None,
        family: HashFamily | None = None,
    ) -> None:
        if width < 1 or rows < 1:
            raise ValueError(f"need width, rows >= 1; got {width}x{rows}")
        if law is None:
            raise ValueError("a DecayLaw is required (e.g. ExponentialDecay)")
        self.width = width
        self.rows = rows
        self.law = law
        family = family or pairwise_indep_family()
        self._hashes = [family.function(r, width) for r in range(rows)]
        self._values = [[0.0] * width for _ in range(rows)]
        self._stamps = [[0.0] * width for _ in range(rows)]

    def update(self, key: int, weight: float, ts: float) -> None:
        """Decay each touched cell to ``ts``, then add ``weight``."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        decay = self.law.decay
        for h, values, stamps in zip(self._hashes, self._values, self._stamps):
            i = h(key)
            age = ts - stamps[i]
            if age >= 0:
                values[i] = decay(values[i], age) + weight
                stamps[i] = ts
            else:
                # Late packet: decay its contribution instead of the cell.
                values[i] += decay(weight, -age)

    def estimate(self, key: int, now: float) -> float:
        """Decayed frequency overestimate (min over rows) at ``now``."""
        decay = self.law.decay
        best = None
        for h, values, stamps in zip(self._hashes, self._values, self._stamps):
            i = h(key)
            age = now - stamps[i]
            v = decay(values[i], age) if age > 0 else values[i]
            if best is None or v < best:
                best = v
        return best if best is not None else 0.0

    def contains(self, key: int, now: float, threshold: float = 0.0) -> bool:
        """Membership with an optional decayed-volume threshold."""
        return self.estimate(key, now) > threshold

    @property
    def num_counters(self) -> int:
        """Cells allocated (for resource accounting)."""
        return self.width * self.rows
