"""Sliding-window heavy hitters via bucketed Space-Saving.

Reference [1] of the paper (Ben-Basat et al., INFOCOM 2016) shows heavy
hitters can be tracked over sliding windows with compact state.  This module
implements the practical bucketed construction: the window of length ``W``
is split into ``num_buckets`` sub-intervals, each summarised by its own
Space-Saving instance; a query sums each key's estimates over the buckets
still inside the window and expired buckets are dropped whole.

The approximation is two-fold and one-sided in each part: per-bucket
Space-Saving overestimates by at most ``bucket_bytes / capacity``, while
bucket-granularity expiry misplaces at most one bucket's worth of the
window's head.  Finer buckets trade memory for window fidelity — the same
trade the paper's Figure 3 is about (a 10 ms bucket bound cannot be told
apart from a true sliding window at the paper's 1 s query step).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.detector import Detector, as_batch
from repro.core.registry import AccuracyFloor, register_detector
from repro.sketch.spacesaving import SpaceSaving

_SCALAR_CUTOFF = 16


class SlidingWindowSpaceSaving(Detector):
    """Heavy hitters over the last ``window`` seconds, bucketed.

    The batch path segments a chunk by destination bucket — the running
    maximum of raw bucket indices reproduces the scalar fold-into-newest
    rule for reordered packets — and hands each segment to that bucket's
    Space-Saving batch update.  Expiry is monotone and idempotent, and
    every observation re-expires at its own ``now`` first, so expiring once
    per segment (at the running-max timestamp) leaves the same observable
    state as the scalar per-packet expiry.
    """

    def __init__(
        self,
        window: float,
        num_buckets: int = 10,
        capacity_per_bucket: int = 128,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if num_buckets < 1:
            raise ValueError(f"num_buckets must be >= 1, got {num_buckets}")
        self.window = window
        self.num_buckets = num_buckets
        self.capacity_per_bucket = capacity_per_bucket
        self.bucket_span = window / num_buckets
        # (bucket_index, SpaceSaving); bucket_index * span = bucket start.
        self._buckets: deque[tuple[int, SpaceSaving]] = deque()

    def _bucket_index(self, ts: float) -> int:
        return int(ts // self.bucket_span)

    def _expire(self, now: float) -> None:
        """Drop buckets that ended at or before ``now - window``.

        Buckets are dropped only once *fully* outside the window, so the
        estimate conservatively over-covers by at most one bucket span.
        """
        horizon = now - self.window
        while self._buckets and (self._buckets[0][0] + 1) * self.bucket_span <= horizon:
            self._buckets.popleft()

    def update(self, key: int, weight: int = 1,
               ts: float | None = None) -> None:
        """Account ``weight`` for ``key`` at time ``ts``."""
        if ts is None:
            raise TypeError("SlidingWindowSpaceSaving.update() requires the "
                            "packet timestamp 'ts'")
        self._expire(ts)
        index = self._bucket_index(ts)
        if not self._buckets or self._buckets[-1][0] != index:
            if self._buckets and self._buckets[-1][0] > index:
                # Slightly reordered packet: fold into the newest bucket.
                index = self._buckets[-1][0]
            else:
                self._buckets.append(
                    (index, SpaceSaving(self.capacity_per_bucket))
                )
        self._buckets[-1][1].update(key, weight)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update: segment by destination bucket, batch
        each segment into its bucket's Space-Saving."""
        keys, weights, ts = as_batch(keys, weights, ts)
        if ts is None:
            raise TypeError("SlidingWindowSpaceSaving.update_batch() requires "
                            "the packet timestamp column 'ts'")
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights, ts)
            return
        raw = np.floor_divide(ts, self.bucket_span).astype(np.int64)
        effective = np.maximum.accumulate(raw)
        if self._buckets:
            effective = np.maximum(effective, self._buckets[-1][0])
        running_max_ts = np.maximum.accumulate(ts)
        starts = np.flatnonzero(np.r_[True, effective[1:] != effective[:-1]])
        bounds = np.r_[starts, n]
        for seg, start in enumerate(starts.tolist()):
            end = int(bounds[seg + 1])
            self._expire(float(running_max_ts[start]))
            index = int(effective[start])
            if not self._buckets or self._buckets[-1][0] != index:
                self._buckets.append(
                    (index, SpaceSaving(self.capacity_per_bucket))
                )
            self._buckets[-1][1].update_batch(keys[start:end], weights[start:end])
        self._expire(float(running_max_ts[-1]))

    def estimate(self, key: int, now: float) -> float:
        """Overestimate of the key's bytes in the last ``window`` seconds."""
        self._expire(now)
        return float(sum(b.estimate(key) for _, b in self._buckets))

    def query(self, threshold: float,
              now: float | None = None) -> dict[int, float]:
        """Keys whose windowed estimate at ``now`` reaches ``threshold``."""
        if now is None:
            raise TypeError("SlidingWindowSpaceSaving.query() requires the "
                            "query time 'now'")
        self._expire(now)
        totals: dict[int, float] = {}
        for _, bucket in self._buckets:
            for key, count in bucket.items().items():
                totals[key] = totals.get(key, 0.0) + count
        return {k: v for k, v in totals.items() if v >= threshold}

    def reset(self) -> None:
        """Drop every bucket."""
        self._buckets.clear()

    @property
    def num_counters(self) -> int:
        """Worst-case counters allocated (for resource accounting)."""
        return (self.num_buckets + 1) * self.capacity_per_bucket


def _sliding_factory(
    window: float = 10.0,
    num_buckets: int = 10,
    capacity_per_bucket: int = 128,
) -> SlidingWindowSpaceSaving:
    """Registry factory with a default 10 s window."""
    return SlidingWindowSpaceSaving(window, num_buckets, capacity_per_bucket)


register_detector(
    "sliding-spacesaving", _sliding_factory, timestamped=True,
    description="Bucketed sliding-window Space-Saving (vectorized batch)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.85, truth="window", horizon=10.0),
)
