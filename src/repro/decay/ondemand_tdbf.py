"""On-demand time-decaying Bloom filter (Bianchi, d'Heureuse, Niccolini 2011).

The key idea of the cited paper: instead of a background sweep decaying all
cells, each cell stores ``(value, last_update_ts)`` and the decay is applied
*lazily* — only when the cell is next touched by an update or a query.  With
a composable decay law (linear, exponential) lazy application is exact, and
every packet costs exactly ``k`` reads + ``k`` writes with no timers: the
formulation that fits a match-action pipeline, where registers can only be
touched by packets passing through.

This structure is the concrete "proof of concept" the poster's Section 3
commits to evaluating; :class:`repro.decay.TimeDecayingHHH` lifts it (via
enumerable decayed summaries) to hierarchical detection.
"""

from __future__ import annotations

from repro.decay.laws import DecayLaw
from repro.hashing.families import HashFamily, pairwise_indep_family


class OnDemandTDBF:
    """Lazy-decay cell array: no ticks, no sweeps, exact decayed estimates."""

    def __init__(
        self,
        cells: int = 8192,
        hashes: int = 4,
        law: DecayLaw | None = None,
        family: HashFamily | None = None,
    ) -> None:
        if cells < 1 or hashes < 1:
            raise ValueError(f"need cells, hashes >= 1; got {cells}, {hashes}")
        if law is None:
            raise ValueError("a DecayLaw is required (e.g. ExponentialDecay)")
        self.cells = cells
        self.hashes = hashes
        self.law = law
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, cells) for i in range(hashes)]
        self._values = [0.0] * cells
        self._stamps = [0.0] * cells

    def update(self, key: int, weight: float, ts: float) -> None:
        """Insert ``weight`` at time ``ts``: decay each touched cell to
        ``ts``, then add."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        values, stamps, decay = self._values, self._stamps, self.law.decay
        for f in self._funcs:
            i = f(key)
            age = ts - stamps[i]
            if age < 0:
                # A cell may carry a newer stamp than this (slightly
                # reordered) packet; decaying the *update* backwards is the
                # standard resolution and keeps estimates one-sided.
                values[i] += self.law.decay(weight, -age)
                continue
            values[i] = decay(values[i], age) + weight
            stamps[i] = ts

    def estimate(self, key: int, now: float) -> float:
        """Decayed volume overestimate at time ``now`` (min over cells).

        Read-only: cells are decayed virtually, not rewritten, so queries
        never interfere with concurrent update paths.
        """
        values, stamps, decay = self._values, self._stamps, self.law.decay
        best = None
        for f in self._funcs:
            i = f(key)
            age = now - stamps[i]
            v = decay(values[i], age) if age > 0 else values[i]
            if best is None or v < best:
                best = v
        return best if best is not None else 0.0

    def contains(self, key: int, now: float, threshold: float = 0.0) -> bool:
        """Membership with an optional volume threshold."""
        return self.estimate(key, now) > threshold

    @property
    def num_counters(self) -> int:
        """Cells allocated; each cell is (value, stamp), twice the state of
        a plain counting-Bloom cell."""
        return self.cells
