"""On-demand time-decaying Bloom filter (Bianchi, d'Heureuse, Niccolini 2011).

The key idea of the cited paper: instead of a background sweep decaying all
cells, each cell stores ``(value, last_update_ts)`` and the decay is applied
*lazily* — only when the cell is next touched by an update or a query.  With
a composable decay law (linear, exponential) lazy application is exact, and
every packet costs exactly ``k`` reads + ``k`` writes with no timers: the
formulation that fits a match-action pipeline, where registers can only be
touched by packets passing through.

Cells are parallel numpy float64 arrays (values + stamps).  For laws that
are *linear in the value* (exponential decay, which exposes
``decay_factor``), ``update_batch`` is fully vectorized and exact: each
touched cell advances to the frame the scalar replay would leave it at
(the max of its stamp and its last in-batch touch), with contributions
decayed to that frame and late-stamped cells decaying the incoming
aggregate instead — see :func:`repro.decay.batching.apply_decayed_batch`.
Untouched cells are left alone, so estimates agree with per-packet
streaming at any query time.

This structure is the concrete "proof of concept" the poster's Section 3
commits to evaluating; :class:`repro.decay.TimeDecayingHHH` lifts it (via
enumerable decayed summaries) to hierarchical detection.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import Detector
from repro.core.registry import register_detector
from repro.decay.batching import (
    apply_decayed_batch,
    as_decayed_batch,
    merge_lazily_stamped,
)
from repro.decay.laws import DecayLaw, ExponentialDecay
from repro.hashing.families import HashFamily, pairwise_indep_family


class OnDemandTDBF(Detector):
    """Lazy-decay cell array: no ticks, no sweeps, exact decayed estimates."""

    def __init__(
        self,
        cells: int = 8192,
        hashes: int = 4,
        law: DecayLaw | None = None,
        family: HashFamily | None = None,
    ) -> None:
        if cells < 1 or hashes < 1:
            raise ValueError(f"need cells, hashes >= 1; got {cells}, {hashes}")
        if law is None:
            raise ValueError("a DecayLaw is required (e.g. ExponentialDecay)")
        self.cells = cells
        self.hashes = hashes
        self.law = law
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, cells) for i in range(hashes)]
        self._vfuncs = [family.function_array(i, cells) for i in range(hashes)]
        self._values = np.zeros(cells, dtype=np.float64)
        self._stamps = np.zeros(cells, dtype=np.float64)

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Insert ``weight`` at time ``ts``: decay each touched cell to
        ``ts``, then add."""
        if ts is None:
            raise TypeError("OnDemandTDBF.update() requires the packet "
                            "timestamp 'ts'")
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        values, stamps, decay = self._values, self._stamps, self.law.decay
        for f in self._funcs:
            i = f(key)
            age = ts - stamps[i]
            if age < 0:
                # A cell may carry a newer stamp than this (slightly
                # reordered) packet; decaying the *update* backwards is the
                # standard resolution and keeps estimates one-sided.
                values[i] += self.law.decay(weight, -age)
                continue
            values[i] = decay(values[i], age) + weight
            stamps[i] = ts

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized batch insertion for value-linear laws.

        Contributions are normalised to the batch's newest-timestamp frame
        and folded in per cell by
        :func:`repro.decay.batching.apply_decayed_batch`, which reproduces
        the scalar replay exactly (including reordered and late packets).
        """
        prepared = as_decayed_batch(
            self.law, keys, weights, ts, min_dense=self.cells // 128
        )
        if prepared is None:
            super().update_batch(keys, weights, ts)
            return
        keys, weights, ts, decay_factor = prepared
        apply_decayed_batch(
            self._values, self._stamps,
            [vf(keys) for vf in self._vfuncs],
            weights, ts, decay_factor,
        )

    def estimate(self, key: int, now: float) -> float:
        """Decayed volume overestimate at time ``now`` (min over cells).

        Read-only: cells are decayed virtually, not rewritten, so queries
        never interfere with concurrent update paths.
        """
        values, stamps, decay = self._values, self._stamps, self.law.decay
        best = None
        for f in self._funcs:
            i = f(key)
            age = now - stamps[i]
            v = decay(float(values[i]), age) if age > 0 else float(values[i])
            if best is None or v < best:
                best = v
        return best if best is not None else 0.0

    def contains(self, key: int, now: float, threshold: float = 0.0) -> bool:
        """Membership with an optional volume threshold."""
        return self.estimate(key, now) > threshold

    def reset(self) -> None:
        """Zero every cell and stamp, keeping the hash functions."""
        self._values.fill(0.0)
        self._stamps.fill(0.0)

    def merge(self, other: Detector) -> None:
        """Cellwise decay-to-common-frame sum (value-linear laws only).

        Exact for exponential decay by cell linearity — merging
        key-partitioned shards reproduces the single-stream filter.
        """
        merge_lazily_stamped(self, other, ("cells", "hashes", "_funcs"))

    @property
    def num_counters(self) -> int:
        """Cells allocated; each cell is (value, stamp), twice the state of
        a plain counting-Bloom cell."""
        return self.cells


def _ondemand_factory(
    cells: int = 8192,
    hashes: int = 4,
    law: DecayLaw | None = None,
    family: HashFamily | None = None,
) -> OnDemandTDBF:
    """Registry factory with a default exponential law (tau = 10 s)."""
    return OnDemandTDBF(cells, hashes, law or ExponentialDecay(tau=10.0), family)


register_detector(
    "ondemand-tdbf", _ondemand_factory, timestamped=True,
    enumerable=False, mergeable=True,
    description="On-demand (lazy) time-decaying Bloom filter "
                "(vectorized batch for exponential decay)",
)
