"""Shared machinery for vectorized batch updates of decayed structures.

The TDBF family (flat cells, global clock), the on-demand TDBF (per-cell
stamps), and the decayed Count-Min (per-row cells) all take the same fast
path when the decay law is *linear in the value* (exponential decay, which
exposes ``decay_factor``): decay every contribution by its own age, then
scatter-add.  This module holds the pieces they share so the algorithm is
written once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.detector import (
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.decay.laws import DecayLaw, same_law

DecayFactor = Callable[[np.ndarray], np.ndarray]


def as_decayed_batch(
    law: DecayLaw, keys, weights, ts, min_dense: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, DecayFactor] | None:
    """Normalise a timestamped batch for the value-linear fast path.

    Returns ``(keys_u64, weights_f64, ts, decay_factor)``, or ``None`` when
    the caller must fall back to the exact scalar replay: the law has no
    ``decay_factor``, no timestamps were given, or the batch is smaller
    than ``min_dense`` packets.  The dense path does O(cells) work per
    batch regardless of batch size, so callers pass a threshold around
    ``cells // 128`` (the measured crossover) to keep tiny batches on the
    cheaper per-packet replay; both paths are exact, so the switch is
    invisible.
    """
    decay_factor = getattr(law, "decay_factor", None)
    if ts is None or decay_factor is None:
        return None
    keys, weights, ts = as_batch(keys, weights, ts)
    if keys.shape[0] == 0 or keys.shape[0] < min_dense:
        return None
    keys = as_uint64_keys(keys)
    weights = ensure_nonnegative_weights(weights).astype(np.float64)
    return keys, weights, ts, decay_factor


def merge_decayed_cells(
    values: np.ndarray,
    stamps: np.ndarray,
    other_values: np.ndarray,
    other_stamps: np.ndarray,
    decay_factor: DecayFactor,
) -> None:
    """Fold another lazily-stamped cell array into ``(values, stamps)``,
    in place.

    Each cell pair is brought to the common frame ``max(stamp, other
    stamp)`` and summed.  For value-linear laws (exponential decay) a cell
    is a linear functional of its updates, so this reproduces exactly the
    cell a single detector would hold after seeing both update streams —
    the property the sharded engine's merge-based combination relies on.
    Laws without ``decay_factor`` do not commute with summation; callers
    must reject the merge instead of calling this.
    """
    frame = np.maximum(stamps, other_stamps)
    merged = (
        values * decay_factor(frame - stamps)
        + other_values * decay_factor(frame - other_stamps)
    )
    np.copyto(values, merged)
    np.copyto(stamps, frame)


def same_value_linear_law(a: DecayLaw, b: DecayLaw) -> DecayFactor | None:
    """The shared ``decay_factor`` of two identically-parameterised
    value-linear laws, or ``None`` when merging them would be unsound."""
    decay_factor = getattr(a, "decay_factor", None)
    if decay_factor is None or not same_law(a, b):
        return None
    return decay_factor


def merge_lazily_stamped(detector, other, geometry_attrs: tuple[str, ...]
                         ) -> None:
    """Validate and fold ``other`` into ``detector`` for the lazily-stamped
    cell structures (``_values``/``_stamps`` arrays plus a ``law``).

    The shared merge path of :class:`~repro.decay.OnDemandTDBF` and
    :class:`~repro.decay.DecayedCountMin`: same type and geometry
    (``geometry_attrs`` may include the hash-function lists — the
    parameterised hash callables compare by family and seed), an
    identically-parameterised value-linear law, then the exact
    decay-to-common-frame cell sum of :func:`merge_decayed_cells`.
    """
    cls_name = type(detector).__name__
    if type(other) is not type(detector) or any(
        getattr(other, attr) != getattr(detector, attr)
        for attr in geometry_attrs
    ):
        raise ValueError(
            f"can only merge {cls_name} of equal geometry and hash functions"
        )
    decay_factor = same_value_linear_law(detector.law, other.law)
    if decay_factor is None:
        raise ValueError(
            f"merging {cls_name} requires the same value-linear decay law "
            f"on both sides; got {detector.law!r} and {other.law!r}"
        )
    merge_decayed_cells(
        detector._values, detector._stamps,
        other._values, other._stamps, decay_factor,
    )


def apply_decayed_batch(
    values: np.ndarray,
    stamps: np.ndarray,
    idx_arrays: list[np.ndarray],
    weights: np.ndarray,
    ts: np.ndarray,
    decay_factor: DecayFactor,
) -> None:
    """Fold one batch into lazily-stamped ``(values, stamps)`` cells, in
    place, exactly reproducing the per-packet replay.

    ``idx_arrays`` holds the cell index of every packet for each hash
    function sharing this cell array.  Per cell, the scalar replay ends at
    frame ``max(old_stamp, last_touch)``: its old value decayed forward to
    that frame plus every contribution decayed from its own timestamp to
    it (for a cell stamped ahead of all its touches that *is* the
    late-packet path — contributions decay, the cell does not).  Untouched
    cells are left alone, so estimates agree with the scalar path at *any*
    query time, not just after the batch.

    Contributions are decayed straight to their own cell's frame, which is
    never earlier than their timestamp — every exponent is non-positive,
    so extreme batch time spans underflow harmlessly to zero exactly like
    the scalar path, never overflow.
    """
    last_touch = np.full(values.shape, -np.inf)
    for idx in idx_arrays:
        np.maximum.at(last_touch, idx, ts)
    touched = last_touch > -np.inf
    frame = np.maximum(stamps, last_touch)
    incoming = np.zeros_like(values)
    for idx in idx_arrays:
        np.add.at(incoming, idx, weights * decay_factor(frame[idx] - ts))
    new_values = (
        values * decay_factor(np.maximum(frame - stamps, 0.0)) + incoming
    )
    np.copyto(values, new_values, where=touched)
    np.copyto(stamps, frame, where=touched)
