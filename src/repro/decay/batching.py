"""Shared machinery for vectorized batch updates of decayed structures.

The TDBF family (flat cells, global clock), the on-demand TDBF (per-cell
stamps), and the decayed Count-Min (per-row cells) all take the same fast
path when the decay law is *linear in the value* (exponential decay, which
exposes ``decay_factor``): decay every contribution by its own age, then
scatter-add.  This module holds the pieces they share so the algorithm is
written once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.detector import (
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.decay.laws import DecayLaw

DecayFactor = Callable[[np.ndarray], np.ndarray]


def as_decayed_batch(
    law: DecayLaw, keys, weights, ts, min_dense: int = 0
) -> tuple[np.ndarray, np.ndarray, np.ndarray, DecayFactor] | None:
    """Normalise a timestamped batch for the value-linear fast path.

    Returns ``(keys_u64, weights_f64, ts, decay_factor)``, or ``None`` when
    the caller must fall back to the exact scalar replay: the law has no
    ``decay_factor``, no timestamps were given, or the batch is smaller
    than ``min_dense`` packets.  The dense path does O(cells) work per
    batch regardless of batch size, so callers pass a threshold around
    ``cells // 128`` (the measured crossover) to keep tiny batches on the
    cheaper per-packet replay; both paths are exact, so the switch is
    invisible.
    """
    decay_factor = getattr(law, "decay_factor", None)
    if ts is None or decay_factor is None:
        return None
    keys, weights, ts = as_batch(keys, weights, ts)
    if keys.shape[0] == 0 or keys.shape[0] < min_dense:
        return None
    keys = as_uint64_keys(keys)
    weights = ensure_nonnegative_weights(weights).astype(np.float64)
    return keys, weights, ts, decay_factor


def apply_decayed_batch(
    values: np.ndarray,
    stamps: np.ndarray,
    idx_arrays: list[np.ndarray],
    weights: np.ndarray,
    ts: np.ndarray,
    decay_factor: DecayFactor,
) -> None:
    """Fold one batch into lazily-stamped ``(values, stamps)`` cells, in
    place, exactly reproducing the per-packet replay.

    ``idx_arrays`` holds the cell index of every packet for each hash
    function sharing this cell array.  Per cell, the scalar replay ends at
    frame ``max(old_stamp, last_touch)``: its old value decayed forward to
    that frame plus every contribution decayed from its own timestamp to
    it (for a cell stamped ahead of all its touches that *is* the
    late-packet path — contributions decay, the cell does not).  Untouched
    cells are left alone, so estimates agree with the scalar path at *any*
    query time, not just after the batch.

    Contributions are decayed straight to their own cell's frame, which is
    never earlier than their timestamp — every exponent is non-positive,
    so extreme batch time spans underflow harmlessly to zero exactly like
    the scalar path, never overflow.
    """
    last_touch = np.full(values.shape, -np.inf)
    for idx in idx_arrays:
        np.maximum.at(last_touch, idx, ts)
    touched = last_touch > -np.inf
    frame = np.maximum(stamps, last_touch)
    incoming = np.zeros_like(values)
    for idx in idx_arrays:
        np.add.at(incoming, idx, weights * decay_factor(frame[idx] - ts))
    new_values = (
        values * decay_factor(np.maximum(frame - stamps, 0.0)) + incoming
    )
    np.copyto(values, new_values, where=touched)
    np.copyto(stamps, frame, where=touched)
