"""The windowless, time-decaying HHH detector.

This is the algorithm the poster calls for: continuous-time HHH detection
with no window grid at all.  One decayed, enumerable summary
(:class:`repro.decay.DecayedSpaceSaving`) per hierarchy level, plus one
decayed counter for the total volume, gives at any query instant:

- the decayed byte volume of every candidate prefix at every level;
- a relative threshold ``phi * decayed_total`` matching the paper's
  percent-of-traffic thresholds;
- HHH extraction with conditioned counts, identical in semantics to
  :class:`repro.hhh.ExactHHH` but over exponentially-weighted volumes.

With ``ExponentialDecay(tau=W)`` the decayed volume of a stationary flow
equals its byte volume over a trailing window of length ``W``, so the
detector is directly comparable to a W-second window — but its "window"
slides continuously with every packet, which is why it sees the episodes
that straddle disjoint-window boundaries (the paper's hidden HHHs).

Updates are O(num_levels) per packet, or O(1) with ``sample_levels`` (the
RHHH trick carried over to continuous time).
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.registry import register_detector
from repro.hashing.mixers import splitmix64, splitmix64_array
from repro.decay.decayed_counter import DecayedCounter
from repro.decay.decayed_spacesaving import DecayedSpaceSaving
from repro.decay.laws import DecayLaw, ExponentialDecay
from repro.hhh.exact_hhh import HHHItem, HHHResult
from repro.hierarchy.domain import SourceHierarchy


class TimeDecayingHHH(Detector):
    """Continuous-time hierarchical heavy-hitter detector.

    The batch path draws the whole level-sampling column at once (a
    counter-indexed splitmix64 stream, identical to the scalar draw
    sequence) and fans each level's packets into that level's vectorized
    :class:`DecayedSpaceSaving` batch update.  Note :meth:`query` keeps
    the hierarchical contract — ``(phi, now) -> HHHResult`` — rather than
    the flat ``{key: estimate}`` protocol.
    """

    def __init__(
        self,
        law: DecayLaw | None = None,
        hierarchy: SourceHierarchy | None = None,
        counters_per_level: int = 256,
        sample_levels: bool = False,
        seed: int = 0,
    ) -> None:
        self.law = law or ExponentialDecay(tau=10.0)
        self.hierarchy = hierarchy or SourceHierarchy()
        if counters_per_level < 1:
            raise ValueError(
                f"counters_per_level must be >= 1, got {counters_per_level}"
            )
        self.counters_per_level = counters_per_level
        self.seed = seed
        self._levels = [
            DecayedSpaceSaving(counters_per_level, self.law)
            for _ in range(self.hierarchy.num_levels)
        ]
        self._total = DecayedCounter(self.law)
        self.sample_levels = sample_levels
        self._sbase = splitmix64(seed ^ 0x9E3779B97F4A7C15)
        self._draws = 0
        self.packets = 0

    def _draw_level(self) -> int:
        """Next level in the deterministic sampling stream."""
        level = splitmix64(self._sbase + self._draws) % self.hierarchy.num_levels
        self._draws += 1
        return level

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Account one packet at time ``ts``."""
        if ts is None:
            raise TypeError("TimeDecayingHHH.update() requires the packet "
                            "timestamp 'ts'")
        self.packets += 1
        self._total.add(weight, ts)
        if self.sample_levels:
            level = self._draw_level()
            value = self.hierarchy.generalize(key, level)
            self._levels[level].update(key=value, weight=weight, ts=ts)
        else:
            for level in range(self.hierarchy.num_levels):
                value = self.hierarchy.generalize(key, level)
                self._levels[level].update(key=value, weight=weight, ts=ts)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update: one total-counter batch add plus a
        per-level fan-out into the decayed summaries' batch paths."""
        keys, weights, ts = as_batch(keys, weights, ts)
        if ts is None:
            raise TypeError("TimeDecayingHHH.update_batch() requires the "
                            "packet timestamp column 'ts'")
        n = keys.shape[0]
        if n == 0:
            return
        if n < 16:
            super().update_batch(keys, weights, ts)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights)
        num_levels = self.hierarchy.num_levels
        self.packets += n
        self._total.add_batch(w, ts)
        if self.sample_levels:
            draws = np.arange(
                self._draws, self._draws + n, dtype=np.uint64
            ) + np.uint64(self._sbase)
            levels = splitmix64_array(draws) % np.uint64(num_levels)
            self._draws += n
            for level in range(num_levels):
                chosen = levels == level
                if chosen.any():
                    self._levels[level].update_batch(
                        self.hierarchy.generalize_array(ku[chosen], level),
                        w[chosen], ts[chosen],
                    )
        else:
            for level in range(num_levels):
                self._levels[level].update_batch(
                    self.hierarchy.generalize_array(ku, level), w, ts
                )

    def _scale(self) -> float:
        return float(self.hierarchy.num_levels) if self.sample_levels else 1.0

    def decayed_total(self, now: float) -> float:
        """Decayed total byte volume at ``now`` (the threshold base)."""
        return self._total.read(now)

    def estimate(self, key: int, level: int, now: float) -> float:
        """Decayed volume estimate of ``key`` generalized at ``level``."""
        value = self.hierarchy.generalize(key, level)
        return self._levels[level].estimate(value, now) * self._scale()

    def query(self, phi: float, now: float) -> HHHResult:
        """HHHs at time ``now`` with relative threshold ``phi``.

        The absolute threshold is ``phi * decayed_total(now)``, the
        continuous-time analogue of "phi percent of the bytes in the
        window".
        """
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        total = self.decayed_total(now)
        return self.query_absolute(phi * total, now, total_bytes=total, phi=phi)

    def query_absolute(
        self,
        threshold: float,
        now: float,
        total_bytes: float = 0.0,
        phi: float = 0.0,
    ) -> HHHResult:
        """HHHs at time ``now`` with an absolute decayed-byte threshold."""
        if threshold <= 0:
            return HHHResult((), max(threshold, 0.0), int(total_bytes), phi)
        hierarchy = self.hierarchy
        scale = self._scale()
        items: list[HHHItem] = []
        declared: list[tuple[int, float]] = []  # (value, conditioned volume)
        for level in range(hierarchy.num_levels):
            for value, decayed in self._levels[level].items(now).items():
                estimate = decayed * scale
                discount = sum(
                    volume
                    for masked, volume in declared
                    if hierarchy.generalize(masked, level) == value
                )
                conditioned = estimate - discount
                if conditioned >= threshold:
                    prefix = hierarchy.prefix_at(value, level)
                    items.append(HHHItem(prefix, int(conditioned)))
                    declared.append((value, conditioned))
        items.sort()
        return HHHResult(tuple(items), threshold, int(total_bytes), phi)

    def reset(self) -> None:
        """Reset every level, the total, and rewind the sampling stream."""
        for level in self._levels:
            level.reset()
        self._total = DecayedCounter(self.law)
        self._draws = 0
        self.packets = 0

    @property
    def num_counters(self) -> int:
        """Counters across levels plus the total (resource accounting)."""
        return sum(level.num_counters for level in self._levels) + 1


register_detector(
    "td-hhh", TimeDecayingHHH, timestamped=True, enumerable=False,
    description="Windowless time-decaying HHH detector "
                "(hierarchical query; vectorized batch)",
    probe=lambda det, key, now: det.estimate(key, 0, now),
)
