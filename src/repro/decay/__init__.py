"""Time-decaying structures — the paper's Section 3 direction.

"We need to consider new directions to streaming algorithms which are based
on continuous-time operation [...] we consider to implement a Time-decaying
Bloom Filter and its extension [Bianchi et al. 2011] as a proof of concept."

This package builds that proof of concept out fully:

- :class:`DecayLaw` implementations (linear — Bianchi's original — and
  exponential, plus hard sliding expiry);
- :class:`TimeDecayingBloomFilter` — synchronous-tick variant;
- :class:`OnDemandTDBF` — the *on-demand* variant of the cited paper: cells
  carry a timestamp and decay lazily when touched, so there is no
  background sweep (the match-action-friendly formulation);
- :class:`DecayedCounter` / :class:`ExactDecayedCounts` — per-key decayed
  counters, the unbounded-memory ground truth for decayed volumes;
- :class:`DecayedSpaceSaving` — Space-Saving over decayed counts (bounded
  memory, enumerable — the workhorse of the HHH detector);
- :class:`SlidingWindowSpaceSaving` — bucketed sliding-window heavy hitters
  in the spirit of Ben-Basat et al. (reference [1]);
- :class:`TimeDecayingHHH` — the windowless hierarchical detector: one
  decayed summary per hierarchy level with conditioned-count extraction.
  This is the algorithm the poster calls for.
"""

from repro.decay.laws import (
    DecayLaw,
    ExponentialDecay,
    LinearDecay,
    SlidingExpiry,
)
from repro.decay.tdbf import TimeDecayingBloomFilter
from repro.decay.ondemand_tdbf import OnDemandTDBF
from repro.decay.decayed_countmin import DecayedCountMin
from repro.decay.decayed_counter import DecayedCounter, ExactDecayedCounts
from repro.decay.decayed_spacesaving import DecayedSpaceSaving
from repro.decay.sliding_hh import SlidingWindowSpaceSaving
from repro.decay.td_hhh import TimeDecayingHHH

__all__ = [
    "DecayLaw",
    "LinearDecay",
    "ExponentialDecay",
    "SlidingExpiry",
    "TimeDecayingBloomFilter",
    "OnDemandTDBF",
    "DecayedCountMin",
    "DecayedCounter",
    "ExactDecayedCounts",
    "DecayedSpaceSaving",
    "SlidingWindowSpaceSaving",
    "TimeDecayingHHH",
]
