"""Space-Saving over decayed counts.

The TDBF answers "how heavy is key X right now?" but cannot *enumerate*
heavy keys — for reporting we need a bounded, enumerable summary of decayed
volumes.  Decayed Space-Saving keeps ``capacity`` lazily-decayed counters;
on a miss with a full table it evicts the counter with the smallest decayed
value and the newcomer inherits that value as its (decayed) error, exactly
mirroring classic Space-Saving's overestimate semantics but in continuous
time.

Because values only shrink between touches, the eviction scan decays every
candidate to the common ``ts`` before comparing; with the default capacities
used in the experiments (hundreds) the linear scan is not the bottleneck.
"""

from __future__ import annotations

from repro.core.detector import Detector
from repro.core.registry import AccuracyFloor, register_detector
from repro.decay.decayed_counter import DecayedCounter
from repro.decay.laws import DecayLaw, ExponentialDecay


class DecayedSpaceSaving(Detector):
    """Fixed-capacity enumerable summary of decayed byte volumes.

    Pointer-based (dict of decayed counters with eviction), so the batch
    path is the exact scalar replay inherited from
    :class:`repro.core.Detector`.
    """

    def __init__(self, capacity: int, law: DecayLaw) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.law = law
        self._counters: dict[int, DecayedCounter] = {}
        self._errors: dict[int, float] = {}

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Account ``weight`` for ``key`` at time ``ts``."""
        if ts is None:
            raise TypeError("DecayedSpaceSaving.update() requires the packet "
                            "timestamp 'ts'")
        counter = self._counters.get(key)
        if counter is not None:
            counter.add(weight, ts)
            return
        if len(self._counters) < self.capacity:
            fresh = DecayedCounter(self.law, stamp=ts)
            fresh.add(weight, ts)
            self._counters[key] = fresh
            self._errors[key] = 0.0
            return
        victim, victim_value = self._min_key(ts)
        del self._counters[victim]
        del self._errors[victim]
        fresh = DecayedCounter(self.law, value=victim_value, stamp=ts)
        fresh.add(weight, ts)
        self._counters[key] = fresh
        self._errors[key] = victim_value

    def _min_key(self, now: float) -> tuple[int, float]:
        """The key with the smallest decayed value at ``now``."""
        best_key, best_value = -1, float("inf")
        for key, counter in self._counters.items():
            value = counter.read(now)
            if value < best_value:
                best_key, best_value = key, value
        return best_key, best_value

    def estimate(self, key: int, now: float) -> float:
        """Decayed overestimate of ``key``'s volume at ``now``."""
        counter = self._counters.get(key)
        if counter is not None:
            return counter.read(now)
        if len(self._counters) >= self.capacity:
            return self._min_key(now)[1]
        return 0.0

    def guaranteed(self, key: int, now: float) -> float:
        """Lower bound: estimate minus inherited (decayed) error."""
        counter = self._counters.get(key)
        if counter is None:
            return 0.0
        error = self.law.decay(
            self._errors[key], max(0.0, now - counter.stamp)
        )
        return counter.read(now) - error

    def query(self, threshold: float,
              now: float | None = None) -> dict[int, float]:
        """Tracked keys whose decayed estimate at ``now`` reaches
        ``threshold``."""
        if now is None:
            raise TypeError("DecayedSpaceSaving.query() requires the query "
                            "time 'now'")
        out: dict[int, float] = {}
        for key, counter in self._counters.items():
            value = counter.read(now)
            if value >= threshold:
                out[key] = value
        return out

    def items(self, now: float) -> dict[int, float]:
        """All tracked keys with their decayed values at ``now``."""
        return {k: c.read(now) for k, c in self._counters.items()}

    def reset(self) -> None:
        """Drop all counters."""
        self._counters.clear()
        self._errors.clear()

    def __len__(self) -> int:
        return len(self._counters)

    @property
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""
        return self.capacity


def _decayed_ss_factory(
    capacity: int = 256, law: DecayLaw | None = None
) -> DecayedSpaceSaving:
    """Registry factory with a default exponential law (tau = 10 s)."""
    return DecayedSpaceSaving(capacity, law or ExponentialDecay(tau=10.0))


register_detector(
    "decayed-spacesaving", _decayed_ss_factory, timestamped=True,
    description="Space-Saving over decayed counts (scalar-replay batch)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.95, truth="decayed", horizon=10.0),
)
