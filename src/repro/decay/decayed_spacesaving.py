"""Space-Saving over decayed counts.

The TDBF answers "how heavy is key X right now?" but cannot *enumerate*
heavy keys — for reporting we need a bounded, enumerable summary of decayed
volumes.  Decayed Space-Saving keeps ``capacity`` lazily-decayed counters;
on a miss with a full table it evicts the counter with the smallest decayed
value and the newcomer inherits that value as its (decayed) error, exactly
mirroring classic Space-Saving's overestimate semantics but in continuous
time.

Counters live in a :class:`repro.core.flat_table.FlatTable` with float64
``values``/``stamps``/``errors`` columns, so the eviction scan and the
enumeration path are vectorized.  For value-linear laws (exponential — the
``decay_factor`` hook) the batch path is vectorized too: each chunk is
grouped per key, every contribution decays by its own factor into the
key's last-touch frame, and one scatter-add lands the whole group.
Non-linear laws (linear's zero floor, sliding expiry's step), unsorted
timestamps, and chunks older than the table's newest stamp replay the
exact scalar path instead.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.flat_table import FlatTable, plan_batch
from repro.core.registry import AccuracyFloor, register_detector
from repro.decay.laws import DecayLaw, ExponentialDecay


_MASK64 = (1 << 64) - 1
_SCALAR_CUTOFF = 16


class DecayedSpaceSaving(Detector):
    """Fixed-capacity enumerable summary of decayed byte volumes."""

    def __init__(self, capacity: int, law: DecayLaw) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.law = law
        self._table = FlatTable(
            capacity,
            {"values": np.float64, "stamps": np.float64, "errors": np.float64},
        )

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Account ``weight`` for ``key`` at time ``ts``."""
        if ts is None:
            raise TypeError("DecayedSpaceSaving.update() requires the packet "
                            "timestamp 'ts'")
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        key = int(key) & _MASK64
        table = self._table
        values = table.cols["values"]
        stamps = table.cols["stamps"]
        slot = table.slot_of.get(key, -1)
        if slot >= 0:
            stamp = stamps[slot]
            if ts >= stamp:
                values[slot] = self.law.decay(values[slot], ts - stamp) + weight
                stamps[slot] = ts
            else:
                # Late (reordered) observation: decay the contribution.
                values[slot] += self.law.decay(weight, stamp - ts)
            return
        if len(table) < self.capacity:
            slot = table.insert(key)
            values[slot] = weight
            stamps[slot] = ts
            return
        victim_slot, victim_value = self._min_slot(ts)
        table.remove(int(table.key_col[victim_slot]))
        slot = table.insert(key)
        values[slot] = victim_value + weight
        stamps[slot] = ts
        table.cols["errors"][slot] = victim_value

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update for value-linear laws.

        Hits and fresh inserts in the admission-free prefix are grouped per
        key: each contribution decays by its own factor into the key's
        last-touch frame within the chunk, then one scatter-add applies the
        group.  The eviction tail (and every non-linear-law or reordered
        chunk) replays the exact scalar path.
        """
        keys, weights, ts = as_batch(keys, weights, ts)
        if ts is None:
            raise TypeError("DecayedSpaceSaving.update_batch() requires the "
                            "packet timestamp column 'ts'")
        n = keys.shape[0]
        if n == 0:
            return
        factor = getattr(self.law, "decay_factor", None)
        if factor is None or n < _SCALAR_CUTOFF or np.any(np.diff(ts) < 0):
            super().update_batch(keys, weights, ts)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights).astype(np.float64)
        table = self._table
        values = table.cols["values"]
        stamps = table.cols["stamps"]
        if len(table) and ts[0] < stamps[table.live_mask].max():
            # Chunk starts behind a live counter: late-packet semantics are
            # per-counter; keep the exact scalar path.
            super().update_batch(ku, w, ts)
            return
        # Eviction-free fast path: every key resolves to a slot (new keys
        # claim free ones), then one slot-grouped decay-and-add pass lands
        # the whole chunk.  Each slot's frame is its last packet's ts
        # (sorted ts: the trailing fancy-assignment write is the newest).
        resolved = table.upsert_batch(ku, self.capacity - len(table))
        if resolved is not None:
            slots, _ = resolved
            last_ts = np.zeros(table.size, dtype=np.float64)
            last_ts[slots] = ts
            contrib = np.bincount(
                slots, weights=w * factor(last_ts[slots] - ts),
                minlength=table.size,
            )
            touched = np.zeros(table.size, dtype=bool)
            touched[slots] = True
            us = np.flatnonzero(touched)
            values[us] = (
                values[us] * factor(last_ts[us] - stamps[us]) + contrib[us]
            )
            stamps[us] = last_ts[us]
            return
        slots, split = plan_batch(table, ku)
        if split:
            prefix_slots = slots[:split]
            prefix_w = w[:split]
            prefix_ts = ts[:split]
            hits = prefix_slots >= 0
            if hits.any():
                order = np.argsort(prefix_slots[hits], kind="stable")
                gslot = prefix_slots[hits][order]
                gw = prefix_w[hits][order]
                gt = prefix_ts[hits][order]
                starts = np.r_[True, gslot[1:] != gslot[:-1]]
                gid = np.cumsum(starts) - 1
                ends = np.r_[starts[1:], True]
                uslots = gslot[ends]
                frame = gt[ends]  # per-key last-touch ts within the chunk
                contrib = np.bincount(gid, weights=gw * factor(frame[gid] - gt))
                values[uslots] = (
                    values[uslots] * factor(frame - stamps[uslots]) + contrib
                )
                stamps[uslots] = frame
            if not hits.all():
                miss = ~hits
                order = np.argsort(ku[:split][miss], kind="stable")
                gkey = ku[:split][miss][order]
                gw = prefix_w[miss][order]
                gt = prefix_ts[miss][order]
                starts = np.r_[True, gkey[1:] != gkey[:-1]]
                gid = np.cumsum(starts) - 1
                ends = np.r_[starts[1:], True]
                fresh_values = np.bincount(
                    gid, weights=gw * factor(gt[ends][gid] - gt)
                )
                for key, value, stamp in zip(
                    gkey[ends].tolist(), fresh_values.tolist(), gt[ends].tolist()
                ):
                    slot = table.insert(key)
                    values[slot] = value
                    stamps[slot] = stamp
        if split < n:
            update = self.update
            for key, weight, t in zip(
                ku[split:].tolist(), w[split:].tolist(), ts[split:].tolist()
            ):
                update(key, weight, t)

    def _decayed_values(self, now: float) -> np.ndarray:
        """Every slot's decayed value at ``now`` (garbage in dead slots)."""
        table = self._table
        values = table.cols["values"]
        ages = now - table.cols["stamps"]
        return np.where(
            ages <= 0, values, self.law.decay_array(values, np.maximum(ages, 0.0))
        )

    def _min_slot(self, now: float) -> tuple[int, float]:
        """Slot holding the smallest decayed value at ``now`` (ties by key)."""
        table = self._table
        decayed = np.where(table.live_mask, self._decayed_values(now), np.inf)
        best = decayed.min()
        tied = np.flatnonzero(decayed == best)
        if tied.size == 1:
            return int(tied[0]), float(best)
        return int(tied[np.argmin(table.key_col[tied])]), float(best)

    def _read(self, slot: int, now: float) -> float:
        """One counter's decayed value at ``now``."""
        table = self._table
        stamp = table.cols["stamps"][slot]
        value = table.cols["values"][slot]
        if now <= stamp:
            return float(value)
        return float(self.law.decay(value, now - stamp))

    def estimate(self, key: int, now: float) -> float:
        """Decayed overestimate of ``key``'s volume at ``now``."""
        key = int(key) & _MASK64
        table = self._table
        slot = table.slot_of.get(key, -1)
        if slot >= 0:
            return self._read(slot, now)
        if len(table) >= self.capacity:
            return self._min_slot(now)[1]
        return 0.0

    def guaranteed(self, key: int, now: float) -> float:
        """Lower bound: estimate minus inherited (decayed) error."""
        key = int(key) & _MASK64
        table = self._table
        slot = table.slot_of.get(key, -1)
        if slot < 0:
            return 0.0
        error = self.law.decay(
            float(table.cols["errors"][slot]),
            max(0.0, now - float(table.cols["stamps"][slot])),
        )
        return self._read(slot, now) - error

    def query(self, threshold: float,
              now: float | None = None) -> dict[int, float]:
        """Tracked keys whose decayed estimate at ``now`` reaches
        ``threshold``."""
        if now is None:
            raise TypeError("DecayedSpaceSaving.query() requires the query "
                            "time 'now'")
        report = self.items(now)
        return {key: value for key, value in report.items()
                if value >= threshold}

    def items(self, now: float) -> dict[int, float]:
        """All tracked keys with their decayed values at ``now``."""
        table = self._table
        if not len(table):
            return {}
        slots = np.fromiter(
            table.slot_of.values(), dtype=np.int64, count=len(table)
        )
        decayed = self._decayed_values(now)[slots]
        return dict(zip(table.slot_of.keys(), decayed.tolist()))

    def reset(self) -> None:
        """Drop all counters."""
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    @property
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""
        return self.capacity


def _decayed_ss_factory(
    capacity: int = 256, law: DecayLaw | None = None
) -> DecayedSpaceSaving:
    """Registry factory with a default exponential law (tau = 10 s)."""
    return DecayedSpaceSaving(capacity, law or ExponentialDecay(tau=10.0))


register_detector(
    "decayed-spacesaving", _decayed_ss_factory, timestamped=True,
    description="Space-Saving over decayed counts (vectorized batch admission)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.95, truth="decayed", horizon=10.0),
)
