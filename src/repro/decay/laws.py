"""Decay laws: how a counter's value erodes with time.

A law maps ``(value, age_seconds) -> decayed_value``.  Two properties
matter to the detectors built on top:

- *monotone in age*: older observations never count more;
- *composable*: ``decay(decay(v, a), b) == decay(v, a + b)``, so lazy
  ("on-demand") application at irregular touch times is exact.

Linear decay (Bianchi et al.'s choice: subtract ``rate * age``) and
exponential decay both compose; hard sliding expiry composes trivially.
"""

from __future__ import annotations

import math
from typing import Protocol


class DecayLaw(Protocol):
    """Protocol for decay laws."""

    def decay(self, value: float, age: float) -> float:
        """``value`` after ``age`` seconds without updates."""
        ...

    def horizon(self) -> float:
        """Seconds after which any bounded value is effectively zero.

        Used by detectors to size candidate retention; may be ``inf``.
        """
        ...


class LinearDecay:
    """Subtract ``rate`` units per second, floored at zero.

    This is the law of the original time-decaying Bloom filter: with rate
    ``r`` and threshold ``T``, a burst of volume ``V`` stays visible for
    ``(V - T) / r`` seconds — a straight-line memory of recent traffic.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"decay rate must be positive, got {rate}")
        self.rate = rate

    def decay(self, value: float, age: float) -> float:
        """Linear erosion, floored at zero."""
        if age < 0:
            raise ValueError(f"negative age {age}")
        return max(0.0, value - self.rate * age)

    def horizon(self) -> float:
        """Conservative horizon: unbounded values decay eventually but we
        report infinity since the bound depends on the value."""
        return math.inf

    def __repr__(self) -> str:
        return f"LinearDecay(rate={self.rate})"


class ExponentialDecay:
    """Multiply by ``exp(-age / tau)``; ``half_life = tau * ln 2``.

    Exponential decay weights a byte observed ``a`` seconds ago by
    ``e^(-a/tau)``, which makes a decayed counter an *exponentially
    weighted moving volume* — the continuous-time analogue of a window of
    effective length ``tau``.
    """

    def __init__(self, tau: float | None = None, half_life: float | None = None
                 ) -> None:
        if (tau is None) == (half_life is None):
            raise ValueError("give exactly one of tau or half_life")
        if half_life is not None:
            tau = half_life / math.log(2)
        assert tau is not None
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau

    @property
    def half_life(self) -> float:
        """Seconds for a value to halve."""
        return self.tau * math.log(2)

    def decay(self, value: float, age: float) -> float:
        """Exponential erosion."""
        if age < 0:
            raise ValueError(f"negative age {age}")
        return value * math.exp(-age / self.tau)

    def horizon(self) -> float:
        """~40 time constants: anything is < 1e-17 of its original value."""
        return 40.0 * self.tau

    def __repr__(self) -> str:
        return f"ExponentialDecay(tau={self.tau:.3f})"


class SlidingExpiry:
    """All-or-nothing: full value within ``window`` seconds, zero after.

    Makes a decayed counter approximate a continuously-sliding window
    (coarsely: the whole accumulated value expires ``window`` after the
    *last* touch; exact per-byte expiry needs the bucketed structure in
    :mod:`repro.decay.sliding_hh`).
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window

    def decay(self, value: float, age: float) -> float:
        """Step function at ``window`` seconds."""
        if age < 0:
            raise ValueError(f"negative age {age}")
        return value if age < self.window else 0.0

    def horizon(self) -> float:
        """Exactly the window."""
        return self.window

    def __repr__(self) -> str:
        return f"SlidingExpiry(window={self.window})"
