"""Decay laws: how a counter's value erodes with time.

A law maps ``(value, age_seconds) -> decayed_value``.  Two properties
matter to the detectors built on top:

- *monotone in age*: older observations never count more;
- *composable*: ``decay(decay(v, a), b) == decay(v, a + b)``, so lazy
  ("on-demand") application at irregular touch times is exact.

Linear decay (Bianchi et al.'s choice: subtract ``rate * age``) and
exponential decay both compose; hard sliding expiry composes trivially.

Every law also offers :meth:`~DecayLaw.decay_array`, the numpy-vectorized
form used by the batch-update engine.  Exponential decay additionally
exposes :meth:`ExponentialDecay.decay_factor`: because the law is *linear in
the value* (a pure multiplicative factor, no zero floor), batched scatter
updates can decay each contribution independently and sum them — exactly
what a sequential per-packet replay would produce.  Laws without that
property (linear's zero floor, sliding expiry's step) keep the scalar
fallback in ``update_batch``.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np


class DecayLaw(Protocol):
    """Protocol for decay laws."""

    def decay(self, value: float, age: float) -> float:
        """``value`` after ``age`` seconds without updates."""
        ...

    def decay_array(self, values: np.ndarray, ages) -> np.ndarray:
        """Vectorized :meth:`decay`: ``values`` after ``ages`` seconds.

        ``ages`` may be a scalar or an array broadcastable to ``values``;
        callers are responsible for clamping ages at zero.
        """
        ...

    def horizon(self) -> float:
        """Seconds after which any bounded value is effectively zero.

        Used by detectors to size candidate retention; may be ``inf``.
        """
        ...


def same_law(a: DecayLaw, b: DecayLaw) -> bool:
    """Whether two laws are identically parameterised.

    Compares type and exact parameter values — not ``repr``, whose
    rounded formatting would conflate nearby parameters (e.g. taus that
    differ by less than the displayed precision).
    """
    return type(a) is type(b) and a.__dict__ == b.__dict__


class LinearDecay:
    """Subtract ``rate`` units per second, floored at zero.

    This is the law of the original time-decaying Bloom filter: with rate
    ``r`` and threshold ``T``, a burst of volume ``V`` stays visible for
    ``(V - T) / r`` seconds — a straight-line memory of recent traffic.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"decay rate must be positive, got {rate}")
        self.rate = rate

    def decay(self, value: float, age: float) -> float:
        """Linear erosion, floored at zero."""
        if age < 0:
            raise ValueError(f"negative age {age}")
        return max(0.0, value - self.rate * age)

    def decay_array(self, values: np.ndarray, ages) -> np.ndarray:
        """Vectorized linear erosion, floored at zero."""
        return np.maximum(0.0, np.asarray(values, dtype=np.float64)
                          - self.rate * np.asarray(ages, dtype=np.float64))

    def horizon(self) -> float:
        """Conservative horizon: unbounded values decay eventually but we
        report infinity since the bound depends on the value."""
        return math.inf

    def __repr__(self) -> str:
        return f"LinearDecay(rate={self.rate})"


class ExponentialDecay:
    """Multiply by ``exp(-age / tau)``; ``half_life = tau * ln 2``.

    Exponential decay weights a byte observed ``a`` seconds ago by
    ``e^(-a/tau)``, which makes a decayed counter an *exponentially
    weighted moving volume* — the continuous-time analogue of a window of
    effective length ``tau``.
    """

    def __init__(self, tau: float | None = None, half_life: float | None = None
                 ) -> None:
        if (tau is None) == (half_life is None):
            raise ValueError("give exactly one of tau or half_life")
        if half_life is not None:
            tau = half_life / math.log(2)
        assert tau is not None
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = tau

    @property
    def half_life(self) -> float:
        """Seconds for a value to halve."""
        return self.tau * math.log(2)

    def decay(self, value: float, age: float) -> float:
        """Exponential erosion."""
        if age < 0:
            raise ValueError(f"negative age {age}")
        return value * math.exp(-age / self.tau)

    def decay_array(self, values: np.ndarray, ages) -> np.ndarray:
        """Vectorized exponential erosion."""
        return np.asarray(values, dtype=np.float64) * self.decay_factor(ages)

    def decay_factor(self, ages) -> np.ndarray:
        """``exp(-ages / tau)`` as an array.

        The law is linear in the value, so batched updates can decay every
        contribution by its own factor and scatter-add the results — the
        hook :mod:`repro.core`'s vectorized fast paths key off.
        """
        return np.exp(-np.asarray(ages, dtype=np.float64) / self.tau)

    def horizon(self) -> float:
        """~40 time constants: anything is < 1e-17 of its original value."""
        return 40.0 * self.tau

    def __repr__(self) -> str:
        return f"ExponentialDecay(tau={self.tau:.3f})"


class SlidingExpiry:
    """All-or-nothing: full value within ``window`` seconds, zero after.

    Makes a decayed counter approximate a continuously-sliding window
    (coarsely: the whole accumulated value expires ``window`` after the
    *last* touch; exact per-byte expiry needs the bucketed structure in
    :mod:`repro.decay.sliding_hh`).
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window

    def decay(self, value: float, age: float) -> float:
        """Step function at ``window`` seconds."""
        if age < 0:
            raise ValueError(f"negative age {age}")
        return value if age < self.window else 0.0

    def decay_array(self, values: np.ndarray, ages) -> np.ndarray:
        """Vectorized step function at ``window`` seconds."""
        values = np.asarray(values, dtype=np.float64)
        return np.where(np.asarray(ages, dtype=np.float64) < self.window,
                        values, 0.0)

    def horizon(self) -> float:
        """Exactly the window."""
        return self.window

    def __repr__(self) -> str:
        return f"SlidingExpiry(window={self.window})"
