"""Sharded parallel execution engine.

The scaling layer between the detectors and the window/experiment
drivers: key-partitioned detector shards
(:class:`~repro.engine.sharded.ShardedDetector`), vectorized key → shard
partitioning (:mod:`repro.engine.partition`), and serial/process-pool
execution backends (:class:`~repro.engine.runner.ParallelRunner`).

Reported heavy hitters are equivalent to a single-stream deployment by
construction — each key's whole state lives in exactly one shard — while
updates fan out across shards (and, with the process backend, across
cores).  Registry metadata (``mergeable``) says which detectors can
additionally be folded back into one single-stream-equivalent detector
via ``merge``.
"""

from repro.engine.partition import (
    SHARD_SALT,
    partition_batch,
    shard_ids,
    shard_of_key,
)
from repro.engine.runner import ParallelRunner
from repro.engine.serve import (
    ServeDetector,
    ServeError,
    ServePool,
    TenantError,
    WorkerCrashError,
)
from repro.engine.sharded import ShardedDetector, sharded_factory
from repro.engine.shm import ChunkRing

__all__ = [
    "ChunkRing",
    "ParallelRunner",
    "SHARD_SALT",
    "ServeDetector",
    "ServeError",
    "ServePool",
    "ShardedDetector",
    "TenantError",
    "WorkerCrashError",
    "partition_batch",
    "shard_ids",
    "shard_of_key",
    "sharded_factory",
]
