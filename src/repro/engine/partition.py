"""Vectorized key → shard partitioning.

The sharded engine routes every key to exactly one detector replica by
hashing the key with a fixed salt that is independent of every hash family
seed the detectors themselves use.  Scalar (:func:`shard_of_key`) and
columnar (:func:`shard_ids`) routing are bit-exact twins, mirroring the
scalar/vectorized hash pairs in :mod:`repro.hashing` — a key lands on the
same shard whether it arrives through ``update`` or ``update_batch``.

:func:`partition_batch` splits one columnar batch into per-shard columnar
sub-batches with a single stable argsort + ``np.take`` gather, so each
shard's slice stays time-sorted and contiguous and ``update_batch`` keeps
its vectorized fast path per shard.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import as_uint64_keys
from repro.hashing.mixers import splitmix64, splitmix64_array

_MASK64 = (1 << 64) - 1

#: Salt decorrelating shard routing from every detector-internal hash
#: (whose families are seeded via ``splitmix64`` of small seeds).
SHARD_SALT = 0x8C5F9E3D2A714B6F


def shard_of_key(key: int, num_shards: int) -> int:
    """The shard index ``key`` routes to (scalar twin of :func:`shard_ids`)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return splitmix64((int(key) & _MASK64) ^ SHARD_SALT) % num_shards


def shard_ids(keys: np.ndarray, num_shards: int) -> np.ndarray:
    """Per-row shard index for a key column (bit-exact with the scalar)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    mixed = splitmix64_array(as_uint64_keys(keys) ^ np.uint64(SHARD_SALT))
    return (mixed % np.uint64(num_shards)).astype(np.int64)


def partition_batch(
    keys: np.ndarray,
    weights: np.ndarray,
    ts: np.ndarray | None,
    num_shards: int,
) -> list[tuple[np.ndarray, np.ndarray, np.ndarray | None]]:
    """Split aligned columns into ``num_shards`` per-shard column triples.

    Rows keep their relative (time) order within each shard — the sort on
    shard id is stable — so per-shard sub-batches remain valid time-sorted
    batches.  Keys keep their original dtype (object columns included);
    only the routing hash canonicalises to uint64.
    """
    keys = np.asarray(keys)
    if num_shards == 1:
        return [(keys, weights, ts)]
    ids = shard_ids(keys, num_shards)
    if len(ids) and bool((ids == ids[0]).all()):
        # Every key routes to one shard: skip the argsort gather and hand
        # that shard the original columns (empty slices elsewhere).
        target = int(ids[0])
        empty_ts = None if ts is None else ts[:0]
        return [
            (keys, weights, ts) if s == target
            else (keys[:0], weights[:0], empty_ts)
            for s in range(num_shards)
        ]
    order = np.argsort(ids, kind="stable")
    keys_sorted = np.take(keys, order)
    weights_sorted = np.take(weights, order)
    ts_sorted = None if ts is None else np.take(ts, order)
    bounds = np.searchsorted(ids[order], np.arange(num_shards + 1))
    parts = []
    for s in range(num_shards):
        i, j = int(bounds[s]), int(bounds[s + 1])
        parts.append((
            keys_sorted[i:j],
            weights_sorted[i:j],
            None if ts_sorted is None else ts_sorted[i:j],
        ))
    return parts
