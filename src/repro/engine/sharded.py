"""Key-partitioned detector sharding.

:class:`ShardedDetector` hash-partitions the key space across ``N``
independent replicas of one detector (built by the same zero-argument
factory, hence identical geometry and hash functions) and implements the
full :class:`repro.core.Detector` contract on top:

- ``update`` routes one packet to its owning shard;
- ``update_batch`` splits the columnar batch once
  (:func:`repro.engine.partition.partition_batch`) and feeds every shard
  its sub-batch through the vectorized fast path — optionally fanned out
  across a :class:`repro.engine.ParallelRunner` process pool;
- ``query`` concatenates per-shard reports.  Key partitioning makes the
  union exact bookkeeping: every key's entire state lives in exactly one
  shard, so reports are disjoint and no cross-shard reconciliation is
  needed;
- ``merged()`` folds all shards into one fresh detector via ``merge`` —
  for detectors whose registry entry is ``mergeable`` this reproduces the
  single-stream detector exactly, which is what
  ``tests/core/test_merge_equivalence.py`` asserts registry-wide.

Because each shard sees only its own keys, a sharded deployment reports
the same heavy hitters as a single-stream one by construction; what
changes is capacity (counters scale with ``N``) and throughput (shards
update in parallel).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.detector import Detector, as_batch
from repro.engine.partition import partition_batch, shard_of_key
from repro.engine.runner import ParallelRunner


class ShardedDetector(Detector):
    """N key-partitioned replicas of one detector behind the one contract.

    Parameters
    ----------
    detector_factory:
        Zero-argument callable building one replica.  Factories are
        deterministic (seeded hash families), so all replicas share
        geometry and hash functions — the precondition for ``merge``.
    num_shards:
        How many replicas to partition the key space across.
    runner:
        Optional :class:`ParallelRunner` executing the per-shard batch
        updates; ``None`` runs them inline (equivalent to a serial
        runner without the indirection).
    """

    def __init__(
        self,
        detector_factory: Callable[[], Detector],
        num_shards: int,
        runner: ParallelRunner | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.detector_factory = detector_factory
        self.num_shards = num_shards
        self.runner = runner
        self.shards: list[Detector] = [
            detector_factory() for _ in range(num_shards)
        ]

    # -- the Detector contract -------------------------------------------

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Route one packet to its owning shard."""
        shard = self.shards[shard_of_key(key, self.num_shards)]
        if ts is None:
            shard.update(key, weight)
        else:
            shard.update(key, weight, ts)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Partition the columns once, then batch-update every shard."""
        if self.num_shards == 1 and self.runner is None:
            # Degenerate sharding: hand the batch straight to the one
            # replica — no routing hash, no as_batch round trip.
            self.shards[0].update_batch(keys, weights, ts)
            return
        keys, weights, ts = as_batch(keys, weights, ts)
        if len(keys) == 0:
            return
        parts = partition_batch(keys, weights, ts, self.num_shards)
        if self.runner is None:
            for shard, (part_keys, part_weights, part_ts) in zip(
                self.shards, parts
            ):
                if len(part_keys):
                    shard.update_batch(part_keys, part_weights, part_ts)
        else:
            self.shards = self.runner.update_shards(self.shards, parts)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Concatenated per-shard reports (disjoint by key partitioning)."""
        out: dict[int, float] = {}
        for shard in self.shards:
            if now is None:
                out.update(shard.query(threshold))
            else:
                out.update(shard.query(threshold, now))
        return out

    def reset(self) -> None:
        """Reset every shard in place."""
        for shard in self.shards:
            shard.reset()

    def merge(self, other: Detector) -> None:
        """Shard-wise merge with an identically-partitioned instance."""
        if not isinstance(other, ShardedDetector) or (
            other.num_shards != self.num_shards
        ):
            raise ValueError(
                "can only merge a ShardedDetector with the same shard count"
            )
        for mine, theirs in zip(self.shards, other.shards):
            mine.merge(theirs)

    @property
    def num_counters(self) -> int:
        """Counters across all shards (capacity scales with the count)."""
        return sum(shard.num_counters for shard in self.shards)

    def save_state(self) -> dict[str, object]:
        """Shard-wise snapshot (the factory and runner are runtime wiring,
        not state: a live process pool cannot be pickled, and restore
        targets an identically-configured instance anyway)."""
        from repro.core.checkpoint import pack_state

        return pack_state(
            self,
            {
                "num_shards": self.num_shards,
                "shards": [shard.save_state() for shard in self.shards],
            },
        )

    def load_state(self, state: dict[str, object]) -> None:
        """Restore shard states in place; shard count must match."""
        from repro.core.checkpoint import CheckpointError, unpack_state

        payload = unpack_state(self, state)
        if payload["num_shards"] != self.num_shards:
            raise CheckpointError(
                f"checkpoint has {payload['num_shards']} shards; this "
                f"detector has {self.num_shards}"
            )
        for shard, shard_state in zip(self.shards, payload["shards"]):
            shard.load_state(shard_state)

    # -- sharding-specific surface ----------------------------------------

    def estimate(self, key: int, *args: float) -> float:
        """Point estimate from the owning shard (exact routing: a key's
        whole state lives in one shard)."""
        shard = self.shards[shard_of_key(key, self.num_shards)]
        return shard.estimate(key, *args)  # type: ignore[attr-defined]

    def merged(self) -> Detector:
        """All shards folded into one fresh detector via ``merge``.

        For registry-``mergeable`` detectors the result is the
        single-stream detector, exactly.
        """
        combined = self.detector_factory()
        for shard in self.shards:
            combined.merge(shard)
        return combined

    def __repr__(self) -> str:
        return (
            f"ShardedDetector(num_shards={self.num_shards}, "
            f"runner={self.runner!r})"
        )


def sharded_factory(
    detector_factory: Callable[[], Detector],
    num_shards: int,
    runner: ParallelRunner | None = None,
) -> Callable[[], ShardedDetector]:
    """A zero-argument factory of :class:`ShardedDetector` — what the
    windowed driver consumes so whole windows fan out per shard."""
    def build() -> ShardedDetector:
        return ShardedDetector(detector_factory, num_shards, runner)

    return build
