"""Persistent shard-worker pool with zero-copy shared-memory handoff.

The process backend of :class:`repro.engine.ParallelRunner` pickles every
shard detector out *and back* on every batch — fine for whole-window
fan-out, ruinous for streaming.  :class:`ServePool` inverts the
ownership: ``W`` long-lived worker processes each *own* a fixed subset of
the ``S`` logical shards (shard ``s`` lives on worker ``s % W``) for the
life of the pool, so detector state never crosses a process boundary
during ingest.  Per chunk, the main process routes keys once (the same
``splitmix64`` partition the sharded engine uses), writes the partitioned
columns into a :class:`repro.engine.shm.ChunkRing` slot, and ships only
``(slot, shard bounds)`` over each worker's pipe; workers slice their
shard ranges out of the shared pages with zero copies and fold them into
their pinned detectors.

Updates are *asynchronous*: the pool returns as soon as the slot is
written, so the main process partitions chunk ``k+1`` (and pulls it from
the source) while workers are still updating chunk ``k`` — the
ingest→partition→update pipeline overlap that makes shard count a
throughput knob.  Queries, resets, checkpoints, and tenant lifecycle are
synchronous barriers, which is exactly where the streaming pipeline needs
them (emission boundaries).

Many tenants multiplex over one pool: each worker keeps an independent
detector per (tenant, owned shard), commands are tenant-scoped, and a
tenant's failure is reported as :class:`TenantError` without touching
sibling tenants or killing workers.

Checkpoints interchange with the serial engine: ``save_tenant`` emits the
same ``repro-hhh/detector-state/v1`` envelope a
:class:`repro.engine.ShardedDetector` of equal shard count writes, and
``load_tenant`` accepts one — a tenant frozen under serve resumes under
the serial pipeline (or on a pool with a *different worker count*)
bit-identically, because the logical shard partition, not the worker
layout, is what the artifact captures.

Worker death is a *recoverable* condition, not a pool-fatal one: the
first pipe failure (EOF/OSError) marks the worker dead, releases its
in-flight slot reservations (so the partitioner can never hang waiting
on acks that will not arrive), and raises :class:`WorkerCrashError`.
:meth:`ServePool.respawn_dead` then replaces the dead processes and
re-opens every registered tenant's shard detectors on them — *empty*;
rebuilding state from checkpoints is the caller's job (see
:class:`repro.stream.serve.ServeRuntime`, which restores each tenant
from its last auto-checkpoint and replays the gap).
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import pickle
import weakref
from collections import deque
from typing import Callable, Sequence

import numpy as np

from repro.core.checkpoint import STATE_SCHEMA, CheckpointError
from repro.core.detector import Detector, as_batch
from repro.engine.partition import shard_ids
from repro.engine.shm import ChunkRing

#: ``detector`` tag written into serve checkpoints — deliberately the
#: serial engine's class name, because the artifact captures the logical
#: key-partitioned shard set, not the runtime that held it.
_SHARDED_STATE_TAG = "ShardedDetector"


class ServeError(RuntimeError):
    """A pool-fatal serve failure (dead worker, closed pool, bad wiring)."""


class TenantError(ServeError):
    """One tenant's command failed; the pool and sibling tenants live on."""

    def __init__(self, tenant: object, message: str) -> None:
        self.tenant = tenant
        super().__init__(f"tenant {tenant!r}: {message}")


class WorkerCrashError(ServeError):
    """A worker process died mid-command.

    Recoverable: the pool stays open, the dead worker's in-flight slot
    reservations are already released, and :meth:`ServePool.respawn_dead`
    brings a replacement up (with empty detectors — state rebuild is the
    caller's job).  ``worker`` is the dead worker's index.
    """

    def __init__(self, worker: int, message: str) -> None:
        self.worker = worker
        super().__init__(message)


# -- the worker process -------------------------------------------------------

def _tenant_shards(tenants: dict, tenant: object) -> dict[int, Detector]:
    try:
        return tenants[tenant]
    except KeyError:
        raise ValueError(f"tenant {tenant!r} is not open on this worker")


def _serve_dispatch(
    tenants: dict, ring: ChunkRing, owned: tuple[int, ...], msg: tuple
) -> object:
    """Execute one command against this worker's pinned detectors."""
    op = msg[0]
    if op == "update":
        _, tenant, slot, bounds, n, has_ts = msg
        shards = _tenant_shards(tenants, tenant)
        keys, weights, ts = ring.views(slot, n)
        for s in owned:
            i, j = bounds[s], bounds[s + 1]
            if j > i:
                shards[s].update_batch(
                    keys[i:j], weights[i:j], ts[i:j] if has_ts else None
                )
        return slot
    if op == "query":
        _, tenant, threshold, now = msg
        shards = _tenant_shards(tenants, tenant)
        if now is None:
            return {s: det.query(threshold) for s, det in shards.items()}
        return {s: det.query(threshold, now) for s, det in shards.items()}
    if op == "open":
        _, tenant, factory = msg
        if tenant in tenants:
            raise ValueError(f"tenant {tenant!r} already open")
        tenants[tenant] = {s: factory() for s in owned}
        return None
    if op == "reset":
        for det in _tenant_shards(tenants, msg[1]).values():
            det.reset()
        return None
    if op == "save":
        return {
            s: det.save_state()
            for s, det in _tenant_shards(tenants, msg[1]).items()
        }
    if op == "load":
        _, tenant, states = msg
        for s, det in _tenant_shards(tenants, tenant).items():
            det.load_state(states[s])
        return None
    if op == "counters":
        return sum(
            det.num_counters
            for det in _tenant_shards(tenants, msg[1]).values()
        )
    if op == "close_tenant":
        tenants.pop(msg[1], None)
        return None
    raise ValueError(f"unknown serve command {op!r}")


def _serve_worker(
    conn, ring_name: str, capacity: int, num_slots: int,
    owned: tuple[int, ...],
) -> None:
    """Worker main loop: attach to the ring once, then serve commands.

    Every received command produces exactly one reply — ``("ok", payload)``
    or ``("error", text)`` — in arrival order, which is what lets the main
    process leave update acks unread (the pipelining) and still match
    replies to commands FIFO.  Command failures are tenant-scoped: the
    worker replies with the error and keeps serving.
    """
    ring = ChunkRing(capacity, num_slots, name=ring_name)
    tenants: dict[object, dict[int, Detector]] = {}
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "shutdown":
                conn.send(("ok", None))
                break
            try:
                reply = ("ok", _serve_dispatch(tenants, ring, owned, msg))
            except Exception as exc:
                reply = ("error", f"{type(exc).__name__}: {exc}")
            conn.send(reply)
    finally:
        tenants.clear()  # drop detector slice refs before detaching the ring
        ring.close()
        conn.close()


# -- pool shutdown safety net -------------------------------------------------

_LIVE_POOLS: "weakref.WeakSet[ServePool]" = weakref.WeakSet()


def _close_live_pools() -> None:  # pragma: no cover - interpreter exit path
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


atexit.register(_close_live_pools)


# -- the main-process pool ----------------------------------------------------

class ServePool:
    """``W`` persistent shard workers serving ``S`` logical shards.

    Parameters
    ----------
    workers:
        Worker process count.  Workers are spawned eagerly and live until
        :meth:`close`.
    shards:
        Logical shard count (default: ``workers``).  This — not the worker
        count — is the unit of key partitioning and of checkpoint
        compatibility; shard ``s`` is pinned to worker ``s % workers``.
    chunk_capacity:
        Largest chunk (packets) a single slot write accepts; longer
        batches are shipped in capacity-sized pieces.
    slots:
        Ring slots (>= 2).  Two give classic double-buffering; a couple
        more absorb scheduling jitter without blocking the partitioner.
    """

    def __init__(
        self,
        workers: int = 1,
        shards: int | None = None,
        *,
        chunk_capacity: int = 65536,
        slots: int = 4,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        shards = workers if shards is None else shards
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shards < workers:
            raise ValueError(
                f"{workers} workers need >= {workers} shards; got {shards} "
                "(idle workers would own no keys)"
            )
        self.num_workers = workers
        self.num_shards = shards
        self.chunk_capacity = chunk_capacity
        self.ring = ChunkRing(chunk_capacity, slots)
        self.owned: tuple[tuple[int, ...], ...] = tuple(
            tuple(range(w, shards, workers)) for w in range(workers)
        )
        self._ctx = mp.get_context()
        self._conns: list = [None] * workers
        self._procs: list = [None] * workers
        #: Per-worker FIFO of in-flight async updates: (slot, tenant).
        self._pending: list[deque] = [deque() for _ in range(workers)]
        #: Per-slot count of workers still to ack the last write.
        self._slot_users = [0] * slots
        self._slot_cursor = 0
        #: Async update failures, attributed per tenant and surfaced at
        #: the next sync point for that tenant or via take_tenant_errors.
        self._tenant_errors: list[tuple[object, str]] = []
        #: Registered tenants in registration order, with the factory each
        #: was opened with — replayed onto respawned workers.
        self._tenants: dict[object, Callable[[], Detector]] = {}
        #: Indices of workers whose pipes have failed (crash detected).
        self._dead: set[int] = set()
        self._closed = False
        try:
            for w in range(workers):
                self._spawn_worker(w)
        except Exception:
            self.close()
            raise
        _LIVE_POOLS.add(self)

    def _spawn_worker(self, w: int) -> None:
        """Start (or restart) worker ``w`` with a fresh pipe and no state."""
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_serve_worker,
            args=(child, self.ring.name, self.chunk_capacity,
                  self.ring.num_slots, self.owned[w]),
            daemon=True,
            name=f"repro-serve-{w}",
        )
        proc.start()
        child.close()
        self._conns[w] = parent
        self._procs[w] = proc

    # -- reply plumbing ---------------------------------------------------

    def _mark_dead(self, w: int, exc: BaseException) -> None:
        """Record worker ``w``'s death and raise :class:`WorkerCrashError`.

        Releases every slot reservation the dead worker still held — its
        acks will never arrive, so leaving them pending would eventually
        hang :meth:`_acquire_slot` on a slot that cannot drain.
        """
        if w not in self._dead:
            self._dead.add(w)
            while self._pending[w]:
                slot, _ = self._pending[w].popleft()
                self._slot_users[slot] -= 1
        raise WorkerCrashError(
            w, f"serve worker {w} died: {exc}"
        ) from None

    def _send(self, w: int, msg: tuple) -> None:
        if w in self._dead:
            raise WorkerCrashError(w, f"serve worker {w} is dead")
        try:
            self._conns[w].send(msg)
        except (OSError, EOFError, ValueError) as exc:
            self._mark_dead(w, exc)

    def _recv(self, w: int) -> tuple:
        if w in self._dead:
            raise WorkerCrashError(w, f"serve worker {w} is dead")
        try:
            return self._conns[w].recv()
        except (EOFError, OSError) as exc:
            self._mark_dead(w, exc)

    def _poll(self, w: int) -> bool:
        try:
            return self._conns[w].poll(0)
        except (OSError, EOFError) as exc:
            self._mark_dead(w, exc)

    def _consume_async(self, w: int) -> None:
        """Consume one in-flight update ack from worker ``w`` (blocking)."""
        slot, tenant = self._pending[w].popleft()
        try:
            status, payload = self._recv(w)
        finally:
            # Even when the worker died mid-ack, the reservation must be
            # released — a leaked count would let _acquire_slot wait
            # forever on a slot that can no longer drain.
            self._slot_users[slot] -= 1
        if status == "error":
            self._tenant_errors.append((tenant, payload))

    def _drain(self, w: int) -> None:
        while self._pending[w]:
            self._consume_async(w)

    def _fanout(self, tenant: object, msg_for: Callable[[int], tuple]
                ) -> list:
        """Synchronous fan-out: drain each worker's update acks, send, and
        gather one reply per worker (workers compute concurrently).

        Crash-safe: a dead worker never desyncs the survivors' FIFO reply
        streams — replies are only awaited from workers the send actually
        reached, and the first crash is re-raised once the survivors'
        replies are in.
        """
        self._check_open()
        crash: WorkerCrashError | None = None
        sent: list[int] = []
        for w in range(self.num_workers):
            try:
                self._drain(w)
                self._send(w, msg_for(w))
                sent.append(w)
            except WorkerCrashError as exc:
                crash = crash if crash is not None else exc
        payloads = []
        errors = []
        for w in sent:
            try:
                status, payload = self._recv(w)
            except WorkerCrashError as exc:
                crash = crash if crash is not None else exc
                continue
            if status == "error":
                errors.append(payload)
            else:
                payloads.append(payload)
        if crash is not None:
            raise crash
        if errors:
            raise TenantError(tenant, "; ".join(sorted(set(errors))))
        return payloads

    def _broadcast(self, tenant: object, msg: tuple) -> list:
        return self._fanout(tenant, lambda w: msg)

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("serve pool is closed")

    # -- tenant lifecycle --------------------------------------------------

    def open_tenant(
        self, tenant: object, factory: Callable[[], Detector]
    ) -> "ServeDetector":
        """Build the tenant's shard detectors on their owning workers.

        ``factory`` must be picklable and deterministic (seeded hash
        families), so every worker's replicas match the shards a serial
        :class:`~repro.engine.sharded.ShardedDetector` of the same count
        would build.  Returns the tenant's :class:`ServeDetector` handle.
        """
        self._check_open()
        if tenant in self._tenants:
            raise ServeError(f"tenant {tenant!r} already open")
        self._broadcast(tenant, ("open", tenant, factory))
        self._tenants[tenant] = factory
        return ServeDetector(self, tenant)

    def close_tenant(self, tenant: object) -> None:
        """Drop one tenant's detectors everywhere; siblings are untouched."""
        if self._closed:
            return
        self._tenants.pop(tenant, None)
        self._broadcast(tenant, ("close_tenant", tenant))

    @property
    def tenants(self) -> tuple:
        """The currently open tenant ids, in registration order."""
        return tuple(self._tenants)

    # -- crash recovery ----------------------------------------------------

    @property
    def dead_workers(self) -> tuple[int, ...]:
        """Indices of workers whose death has been detected (unrespawned)."""
        return tuple(sorted(self._dead))

    def kill_worker(self, w: int) -> None:
        """Crash-injection hook (tests/CI): SIGKILL one worker process.

        Deliberately does *not* mark the worker dead — the detection path
        (pipe EOF at the next send/recv) is part of what gets exercised.
        """
        self._check_open()
        if not 0 <= w < self.num_workers:
            raise ValueError(f"no such worker {w}")
        proc = self._procs[w]
        proc.kill()
        proc.join(timeout=5)

    def respawn_dead(self) -> tuple[int, ...]:
        """Replace every detected-dead worker; returns the revived indices.

        Each replacement re-attaches to the same shared ring and re-opens
        every registered tenant with its original factory — i.e. *empty*
        detectors.  Rebuilding their state (from a checkpoint plus replay)
        is the caller's responsibility; surviving workers' state is
        untouched.  Raises :class:`WorkerCrashError` if another worker
        dies during the respawn — the call is idempotent, so retry.
        """
        self._check_open()
        revived = tuple(sorted(self._dead))
        for w in revived:
            try:
                self._conns[w].close()
            except OSError:  # pragma: no cover - already closed
                pass
            proc = self._procs[w]
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - kill raced the join
                proc.terminate()
                proc.join(timeout=1)
            self._spawn_worker(w)
            self._dead.discard(w)
        for w in revived:
            for tenant, factory in self._tenants.items():
                self._send(w, ("open", tenant, factory))
            for tenant in self._tenants:
                status, payload = self._recv(w)
                if status == "error":
                    raise ServeError(
                        f"respawned worker {w} failed to reopen tenant: "
                        f"{payload}"
                    )
        return revived

    # -- the data path -----------------------------------------------------

    def update(self, tenant, keys, weights=None, ts=None) -> None:
        """Route one columnar batch to the tenant's shard workers.

        Asynchronous: returns once the slot is written and the bounds are
        shipped, so the caller overlaps the next chunk's partitioning with
        this chunk's detector updates.  Failures surface as
        :class:`TenantError` at the tenant's next synchronous command (or
        via :meth:`take_tenant_errors`).
        """
        self._check_open()
        keys, weights, ts = as_batch(keys, weights, ts)
        if keys.dtype.kind not in "iu":
            raise ServeError(
                "serve requires integer key columns for shared-memory "
                f"transport; got dtype {keys.dtype}"
            )
        n = len(keys)
        for start in range(0, n, self.chunk_capacity):
            end = min(n, start + self.chunk_capacity)
            self._ship(
                tenant, keys[start:end], weights[start:end],
                None if ts is None else ts[start:end],
            )

    def _ship(self, tenant, keys, weights, ts) -> None:
        n = len(keys)
        if n == 0:
            return
        num_shards = self.num_shards
        slot = self._acquire_slot()
        kview, wview, tview = self.ring.views(slot, n)
        if num_shards == 1:
            bounds = [0, n]
            kview[:] = keys
            wview[:] = weights
            if ts is not None:
                tview[:] = ts
        else:
            ids = shard_ids(keys, num_shards)
            first = int(ids[0])
            if bool((ids == first).all()):
                # Single-destination chunk: skip the argsort gather.
                bounds = [0] * (first + 1) + [n] * (num_shards - first)
                kview[:] = keys
                wview[:] = weights
                if ts is not None:
                    tview[:] = ts
            else:
                order = np.argsort(ids, kind="stable")
                kview[:] = keys[order]
                wview[:] = weights[order]
                if ts is not None:
                    tview[:] = ts[order]
                bounds = np.searchsorted(
                    ids[order], np.arange(num_shards + 1)
                ).tolist()
        msg = ("update", tenant, slot, bounds, n, ts is not None)
        crash: WorkerCrashError | None = None
        for w in range(self.num_workers):
            try:
                self._send(w, msg)
                self._pending[w].append((slot, tenant))
                self._slot_users[slot] += 1
                # Opportunistic non-blocking drain keeps ack queues shallow.
                while self._pending[w] and self._poll(w):
                    self._consume_async(w)
            except WorkerCrashError as exc:
                # Keep shipping to the survivors (their FIFO accounting
                # stays uniform), then surface the first crash.
                crash = crash if crash is not None else exc
        if crash is not None:
            raise crash

    def _acquire_slot(self) -> int:
        """A slot with no in-flight readers, blocking only when every slot
        is still being consumed (the workers are ``slots`` chunks behind)."""
        slots = self.ring.num_slots
        for probe in range(slots):
            s = (self._slot_cursor + probe) % slots
            if self._slot_users[s] == 0:
                self._slot_cursor = (s + 1) % slots
                return s
        s = self._slot_cursor  # oldest write; its acks arrive first
        while self._slot_users[s]:
            for w in range(self.num_workers):
                if any(slot == s for slot, _ in self._pending[w]):
                    self._consume_async(w)
                    break
            else:  # pragma: no cover - accounting invariant
                raise ServeError("slot accounting desync")
        self._slot_cursor = (s + 1) % slots
        return s

    def barrier(self) -> None:
        """Block until every shipped chunk is folded in (all acks drained)."""
        self._check_open()
        for w in range(self.num_workers):
            self._drain(w)

    def take_tenant_errors(self) -> list[tuple[object, str]]:
        """Deferred async update failures collected since the last call."""
        errors, self._tenant_errors = self._tenant_errors, []
        return errors

    def _raise_deferred(self, tenant: object) -> None:
        """Raise the oldest deferred error for ``tenant``, keeping others."""
        keep = []
        mine = None
        for item in self._tenant_errors:
            if mine is None and item[0] == tenant:
                mine = item
            else:
                keep.append(item)
        self._tenant_errors = keep
        if mine is not None:
            raise TenantError(mine[0], mine[1])

    # -- the query/state path ----------------------------------------------

    def query(self, tenant, threshold: float, now: float | None = None
              ) -> dict[int, float]:
        """Union of per-shard reports, assembled in shard order (exactly
        the serial ``ShardedDetector.query`` iteration order)."""
        shard_reports: dict[int, dict[int, float]] = {}
        for payload in self._broadcast(
            tenant, ("query", tenant, threshold, now)
        ):
            shard_reports.update(payload)
        self._raise_deferred(tenant)
        out: dict[int, float] = {}
        for s in range(self.num_shards):
            out.update(shard_reports.get(s, {}))
        return out

    def reset(self, tenant) -> None:
        self._broadcast(tenant, ("reset", tenant))
        self._raise_deferred(tenant)

    def num_counters(self, tenant) -> int:
        return sum(self._broadcast(tenant, ("counters", tenant)))

    def save_tenant(self, tenant) -> dict[str, object]:
        """Freeze one tenant into the serial engine's checkpoint envelope.

        The artifact is byte-compatible with
        ``ShardedDetector(factory, shards).save_state()``: restoring it
        there — or on a pool with any worker count and the same shard
        count — continues bit-identically.
        """
        shard_states: dict[int, dict[str, object]] = {}
        for payload in self._broadcast(tenant, ("save", tenant)):
            shard_states.update(payload)
        self._raise_deferred(tenant)
        payload = {
            "num_shards": self.num_shards,
            "shards": [shard_states[s] for s in range(self.num_shards)],
        }
        return {
            "schema": STATE_SCHEMA,
            "detector": _SHARDED_STATE_TAG,
            "payload": pickle.dumps(
                payload, protocol=pickle.HIGHEST_PROTOCOL
            ),
        }

    def load_tenant(self, tenant, state: dict[str, object]) -> None:
        """Restore a :meth:`save_tenant` / ``ShardedDetector`` artifact."""
        if not isinstance(state, dict) or state.get("schema") != STATE_SCHEMA:
            raise CheckpointError(
                f"expected a {STATE_SCHEMA!r} artifact"
            )
        if state.get("detector") != _SHARDED_STATE_TAG:
            raise CheckpointError(
                f"checkpoint holds {state.get('detector')!r} state; the "
                f"serve pool loads {_SHARDED_STATE_TAG!r} artifacts"
            )
        payload = pickle.loads(state["payload"])  # type: ignore[arg-type]
        if payload["num_shards"] != self.num_shards:
            raise CheckpointError(
                f"checkpoint has {payload['num_shards']} shards; this pool "
                f"serves {self.num_shards}"
            )
        shards = payload["shards"]
        self._fanout(tenant, lambda w: (
            "load", tenant, {s: shards[s] for s in self.owned[w]}
        ))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and release the shared ring.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for w, conn in enumerate(self._conns):
            if conn is None:
                continue
            try:
                self._drain(w)
                conn.send(("shutdown",))
                conn.recv()  # the shutdown ack
            except (ServeError, OSError, EOFError, BrokenPipeError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
                proc.join(timeout=1)
        self.ring.close()
        _LIVE_POOLS.discard(self)

    def __enter__(self) -> "ServePool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ServePool(workers={self.num_workers}, "
            f"shards={self.num_shards}, "
            f"chunk_capacity={self.chunk_capacity}, "
            f"slots={self.ring.num_slots}, "
            f"tenants={len(self._tenants)})"
        )


class ServeDetector(Detector):
    """One tenant's handle on a :class:`ServePool`, as a `Detector`.

    Implements the full contract, so a plain :class:`repro.stream.
    StreamPipeline` drives it unchanged — updates stream to the pinned
    workers asynchronously, while queries, resets, and checkpoints are the
    natural barriers.  Obtained from :meth:`ServePool.open_tenant`.
    """

    def __init__(self, pool: ServePool, tenant: object) -> None:
        self.pool = pool
        self.tenant = tenant

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """One packet as a 1-row batch (serve is a batch transport)."""
        self.pool.update(
            self.tenant,
            np.asarray([int(key)], dtype=np.uint64),
            np.asarray([weight]),
            None if ts is None else np.asarray([ts], dtype=np.float64),
        )

    def update_batch(self, keys, weights=None, ts=None) -> None:
        self.pool.update(self.tenant, keys, weights, ts)

    def query(self, threshold: float, now: float | None = None
              ) -> dict[int, float]:
        return self.pool.query(self.tenant, threshold, now)

    def reset(self) -> None:
        self.pool.reset(self.tenant)

    def save_state(self) -> dict[str, object]:
        return self.pool.save_tenant(self.tenant)

    def load_state(self, state: dict[str, object]) -> None:
        self.pool.load_tenant(self.tenant, state)

    @property
    def num_counters(self) -> int:
        return self.pool.num_counters(self.tenant)

    def __repr__(self) -> str:
        return f"ServeDetector(tenant={self.tenant!r}, pool={self.pool!r})"
