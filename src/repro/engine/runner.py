"""Task execution backends behind one interface.

:class:`ParallelRunner` executes independent work units — the per-shard
``update_batch`` calls the sharded engine fans out, and, through the
generic :meth:`ParallelRunner.map_tasks`, whole experiment cells for the
sweep engine (:mod:`repro.sweep`).  Two backends:

- ``serial`` — in-process loop, zero overhead; the default and the right
  choice for tests, smoke runs, and single-core machines;
- ``process`` — a persistent :class:`~concurrent.futures.ProcessPoolExecutor`
  that ships ``(shard, columns)`` to workers and collects the updated
  shards back.  Detectors pickle whole (hash functions included — see
  :mod:`repro.hashing.families`), so the returned shard replaces the local
  one and the two backends end in bit-identical states.

The process backend pays one detector-state round-trip per shard per
call, so it wins when batches are large (whole traces or whole windows)
and loses on per-packet dribbles — exactly the trade the batch engine
already made for vectorization.
"""

from __future__ import annotations

import atexit
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.core.detector import Detector

#: Columnar sub-batch for one shard: (keys, weights, ts-or-None).
ShardPart = tuple[np.ndarray, np.ndarray, "np.ndarray | None"]

_BACKENDS = ("serial", "process")


_LIVE_RUNNERS: "weakref.WeakSet[ParallelRunner]" = weakref.WeakSet()


def _close_live_runners() -> None:  # pragma: no cover - interpreter exit path
    for runner in list(_LIVE_RUNNERS):
        try:
            runner.close()
        except Exception:
            pass


atexit.register(_close_live_runners)


def _update_shard(payload: tuple[Detector, ShardPart]) -> Detector:
    """Worker task: fold one columnar sub-batch into one shard."""
    detector, (keys, weights, ts) = payload
    detector.update_batch(keys, weights, ts)
    return detector


class ParallelRunner:
    """Executes shard updates on a serial or process-pool backend.

    Parameters
    ----------
    backend:
        ``"serial"`` or ``"process"``.
    workers:
        Process count for the ``process`` backend (default: the machine's
        CPU count).  Ignored by the serial backend.
    """

    def __init__(self, backend: str = "serial", workers: int | None = None
                 ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; known: {', '.join(_BACKENDS)}"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = workers or os.cpu_count() or 1
        self._pool: ProcessPoolExecutor | None = None

    def map_tasks(self, fn: Callable, payloads: Sequence) -> list:
        """Apply ``fn`` to every payload, returning results in order.

        The generic fan-out behind both shard updates and whole-sweep-cell
        execution: the serial backend is a plain in-process loop; the
        process backend ships ``(fn, payload)`` pairs through the
        persistent pool, so both ``fn`` and each payload must be picklable
        (``fn`` must be a module-level callable).  Results are collected in
        payload order regardless of completion order.
        """
        if self.backend == "serial":
            return [fn(payload) for payload in payloads]
        payloads = list(payloads)
        if not payloads:
            return []
        return list(self._ensure_pool().map(fn, payloads))

    def update_shards(
        self, shards: Sequence[Detector], parts: Sequence[ShardPart]
    ) -> list[Detector]:
        """Fold ``parts[i]`` into ``shards[i]`` for every shard; returns the
        updated shard list (in-place objects for serial, replacements for
        process).  Shards with an empty sub-batch are left untouched and
        never shipped."""
        if len(shards) != len(parts):
            raise ValueError(
                f"got {len(parts)} parts for {len(shards)} shards"
            )
        if self.backend == "serial":
            for shard, (keys, weights, ts) in zip(shards, parts):
                if len(keys):
                    shard.update_batch(keys, weights, ts)
            return list(shards)
        busy = [i for i, part in enumerate(parts) if len(part[0])]
        if not busy:
            return list(shards)
        updated = list(shards)
        results = self.map_tasks(
            _update_shard, [(shards[i], parts[i]) for i in busy]
        )
        for i, shard in zip(busy, results):
            updated[i] = shard
        return updated

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            _LIVE_RUNNERS.add(self)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down.  Idempotent; a no-op for the serial
        backend.  Abandoned runners are also swept by ``__del__`` and an
        atexit hook, so a leaked pool cannot hang interpreter exit."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()
        _LIVE_RUNNERS.discard(self)

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC ordering dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return f"ParallelRunner(backend={self.backend!r}, workers={self.workers})"
