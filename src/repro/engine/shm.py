"""Shared-memory slot ring for zero-copy columnar chunk handoff.

The serve engine (:mod:`repro.engine.serve`) keeps detector state pinned
in long-lived worker processes; what crosses the process boundary per
chunk must therefore be *data*, not detectors.  :class:`ChunkRing` is the
transport: one :class:`multiprocessing.shared_memory.SharedMemory` block
carved into ``num_slots`` fixed-capacity slots, each holding the three
columns every ``update_batch`` call consumes —

- ``keys``    — ``uint64`` (the canonical key dtype every vectorized hash
  twin already reduces to, so transporting ``uint32`` trace columns as
  ``uint64`` is bit-identical);
- ``weights`` — ``int64`` (the trace ``length`` dtype);
- ``ts``      — ``float64``.

The main process writes a partitioned chunk into a free slot and ships
only ``(slot, bounds)`` over a pipe; each worker holds numpy views over
the *same* physical pages and slices its shard ranges out with zero
copies.  Several slots make the ring double-buffered: the main process
partitions chunk ``k+1`` into the next slot while workers are still
reading chunk ``k`` from the previous one.  Slot reuse is the only
synchronization point — the pool tracks per-slot outstanding worker acks
and blocks only when every slot is still in flight.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where the stdlib lacks it
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

#: Bytes per packet across the three slot columns (u64 + i64 + f64).
PACKET_BYTES = 24


class ChunkRing:
    """``num_slots`` shared-memory chunk slots of ``capacity`` packets.

    The creating process owns the block (``name=None``); workers attach to
    an existing ring by name.  Both sides build the same per-slot numpy
    views once, so per-chunk handoff costs no allocation, no pickling, and
    no copying on the worker side.
    """

    def __init__(
        self, capacity: int, num_slots: int = 4, *, name: str | None = None
    ) -> None:
        if shared_memory is None:  # pragma: no cover
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable on this "
                "platform; the serve engine cannot run"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if num_slots < 2:
            raise ValueError(
                f"need >= 2 slots for double buffering, got {num_slots}"
            )
        self.capacity = capacity
        self.num_slots = num_slots
        self._slot_bytes = capacity * PACKET_BYTES
        if name is None:
            self.shm = shared_memory.SharedMemory(
                create=True, size=num_slots * self._slot_bytes
            )
            self.owner = True
        else:
            self.shm = shared_memory.SharedMemory(name=name)
            self.owner = False
        views = []
        for slot in range(num_slots):
            base = slot * self._slot_bytes
            views.append((
                np.ndarray(capacity, dtype=np.uint64,
                           buffer=self.shm.buf, offset=base),
                np.ndarray(capacity, dtype=np.int64,
                           buffer=self.shm.buf, offset=base + 8 * capacity),
                np.ndarray(capacity, dtype=np.float64,
                           buffer=self.shm.buf, offset=base + 16 * capacity),
            ))
        self._views: list | None = views

    @property
    def name(self) -> str:
        """The shared-memory block name workers attach to."""
        return self.shm.name

    def views(
        self, slot: int, n: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The first ``n`` packets of ``slot`` as (keys, weights, ts) views."""
        if self._views is None:
            raise RuntimeError("ring is closed")
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot must be in 0..{self.num_slots - 1}, "
                             f"got {slot}")
        if not 0 <= n <= self.capacity:
            raise ValueError(f"n must be in 0..{self.capacity}, got {n}")
        keys, weights, ts = self._views[slot]
        return keys[:n], weights[:n], ts[:n]

    def close(self) -> None:
        """Detach (and, for the owner, unlink) the shared block.

        Idempotent.  Dropping the numpy views first is required — the
        block cannot detach while buffer exports are alive.  A detector
        holding a stray slice reference would keep an export alive; in
        that case detaching is skipped (the memory is reclaimed when the
        process exits) but the owner still unlinks the name.
        """
        if self._views is None:
            return
        self._views = None
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - stray view kept an export
            pass
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self) -> None:  # pragma: no cover - GC ordering dependent
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"ChunkRing(capacity={self.capacity}, "
            f"num_slots={self.num_slots}, name={self.name!r}, "
            f"owner={self.owner})"
        )
