"""Equivalence fuzzing: systematic interleaving/commutativity testing.

The repo's layer contracts each promise some *observational equivalence*
— batch ≡ scalar, shard-merge ≡ single-stream, checkpoint/resume ≡
uninterrupted, serve-pool ≡ serial pipeline — and each is enforced by a
hand-written test probing one fixed interleaving.  This package is the
systematic version, in the spirit of the Scalable Commutativity Rule's
Commuter harness: enumerate the interleaving space (chunk boundaries,
shard counts, checkpoint points, merge orders, worker layouts), execute
both sides of every promised equivalence through the *real* stack, diff
the full observable behaviour, and shrink any divergence to a minimal,
deterministically-replayable ``repro-hhh/fuzz-case/v1`` artifact.

Layers:

- :mod:`repro.fuzz.plan` — :class:`ExecutionPlan` (one pinned way to run
  a workload) and :class:`PlanSpace` (seeded sampling of promised-equal
  plan pairs along the equivalence axes);
- :mod:`repro.fuzz.executor` — runs plans through
  ``StreamPipeline``/``ShardedDetector``/``ServeRuntime`` and diffs
  outcomes under per-axis contracts;
- :mod:`repro.fuzz.shrink` — greedy minimisation (packet-range
  bisection, plan-delta reduction) of diverging pairs;
- :mod:`repro.fuzz.artifact` — the versioned fuzz-case document and its
  deterministic replay;
- :mod:`repro.fuzz.harness` — the budgeted driver behind
  ``repro-hhh fuzz`` and the ``equivalence-fuzz`` experiment.
"""

from repro.fuzz.artifact import (
    FUZZ_CASE_SCHEMA,
    FuzzCase,
    case_filename,
    read_case,
    replay_case,
    validate_fuzz_case_dict,
    write_case,
)
from repro.fuzz.executor import (
    CONTRACTS,
    AxisContract,
    Divergence,
    EmissionRecord,
    FuzzExecutionError,
    PlanOutcome,
    ProbeReportDetector,
    diff_outcomes,
    run_pair,
    run_plan,
)
from repro.fuzz.harness import FuzzHarness, FuzzReport
from repro.fuzz.plan import (
    AXES,
    ExecutionPlan,
    FuzzError,
    PlanPair,
    PlanSpace,
    eligible_detectors,
)
from repro.fuzz.shrink import ShrinkResult, shrink_pair

__all__ = [
    "AXES",
    "CONTRACTS",
    "FUZZ_CASE_SCHEMA",
    "AxisContract",
    "Divergence",
    "EmissionRecord",
    "ExecutionPlan",
    "FuzzCase",
    "FuzzError",
    "FuzzExecutionError",
    "FuzzHarness",
    "FuzzReport",
    "PlanOutcome",
    "PlanPair",
    "PlanSpace",
    "ProbeReportDetector",
    "ShrinkResult",
    "case_filename",
    "diff_outcomes",
    "eligible_detectors",
    "read_case",
    "replay_case",
    "run_pair",
    "run_plan",
    "shrink_pair",
    "validate_fuzz_case_dict",
    "write_case",
]
