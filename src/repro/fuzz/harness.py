"""The budgeted fuzz driver tying plan space, executor, and shrinker.

:class:`FuzzHarness` is what the CLI and the ``equivalence-fuzz``
experiment run: draw plan pairs from a seeded :class:`PlanSpace`, execute
both sides through the real stack, diff under the axis contract, and —
on divergence — shrink to a minimal :class:`FuzzCase`.  The run is
bounded by wall-clock budget and/or a pair count, and the resulting
:class:`FuzzReport` carries per-axis/per-detector coverage so CI can
assert the harness actually exercised the space (not just that nothing
diverged in zero pairs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.fuzz.artifact import FuzzCase
from repro.fuzz.executor import (
    Divergence,
    FuzzExecutionError,
    diff_outcomes,
    run_plan,
)
from repro.fuzz.plan import FuzzError, PlanPair, PlanSpace
from repro.fuzz.shrink import shrink_pair


@dataclass
class FuzzReport:
    """What a budgeted fuzz run covered and what it found."""

    seed: int
    pairs: int = 0
    elapsed_s: float = 0.0
    cases: list[FuzzCase] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    axis_pairs: dict[str, int] = field(default_factory=dict)
    axis_divergences: dict[str, int] = field(default_factory=dict)
    detector_pairs: dict[str, int] = field(default_factory=dict)

    @property
    def divergences(self) -> int:
        return len(self.cases)

    @property
    def axes_covered(self) -> tuple[str, ...]:
        return tuple(sorted(self.axis_pairs))

    @property
    def detectors_covered(self) -> tuple[str, ...]:
        return tuple(sorted(self.detector_pairs))

    @property
    def pairs_per_s(self) -> float:
        return self.pairs / self.elapsed_s if self.elapsed_s > 0 else 0.0

    #: (axis, detector) -> executed pair count, for the coverage rows.
    cell_pairs: dict[tuple[str, str], int] = field(default_factory=dict)

    def rows(self) -> list[dict[str, object]]:
        """Per-(axis, detector) coverage rows for the experiment result."""
        div: dict[tuple[str, str], int] = {}
        for case in self.cases:
            key = (case.axis, case.plan_a.detector)
            div[key] = div.get(key, 0) + 1
        return [
            {
                "axis": axis,
                "detector": detector,
                "pairs": pairs,
                "divergences": div.get((axis, detector), 0),
            }
            for (axis, detector), pairs in sorted(self.cell_pairs.items())
        ]

    def record(self, pair: PlanPair) -> None:
        self.pairs += 1
        self.axis_pairs[pair.axis] = self.axis_pairs.get(pair.axis, 0) + 1
        det = pair.a.detector
        self.detector_pairs[det] = self.detector_pairs.get(det, 0) + 1
        cell = (pair.axis, det)
        self.cell_pairs[cell] = self.cell_pairs.get(cell, 0) + 1

    def headline(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "pairs": self.pairs,
            "divergences": self.divergences,
            "axes_covered": len(self.axes_covered),
            "detectors_covered": len(self.detectors_covered),
            "elapsed_s": round(self.elapsed_s, 3),
            "pairs_per_s": round(self.pairs_per_s, 2),
            "errors": len(self.errors),
        }


class FuzzHarness:
    """One budgeted equivalence-fuzz run.

    Parameters
    ----------
    seed:
        Plan-space seed; the whole run is a pure function of it (plus
        the budget, which only decides where the run stops).
    budget_s / max_pairs:
        Stop after this much wall clock and/or this many pairs.  At
        least one bound is required; the first pair always runs, so a
        tiny budget still produces signal.
    detectors / axes:
        Optional plan-space restrictions (see :class:`PlanSpace`).
    shrink:
        Minimise divergences before reporting (on by default; the raw
        pair is kept in the case's ``original_*`` fields either way).
    shrink_executions:
        Execution budget per shrink (see :func:`shrink_pair`).
    on_pair:
        Optional callback ``(pair_index, pair, divergence | None)``
        invoked after every executed pair — the CLI's progress hook.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        budget_s: float | None = None,
        max_pairs: int | None = None,
        detectors: Sequence[str] | None = None,
        axes: Sequence[str] | None = None,
        shrink: bool = True,
        shrink_executions: int = 80,
        on_pair: Callable[[int, PlanPair, Divergence | None], None]
        | None = None,
    ) -> None:
        if budget_s is None and max_pairs is None:
            raise FuzzError(
                "bound the run: pass budget_s and/or max_pairs"
            )
        if budget_s is not None and budget_s <= 0:
            raise FuzzError(f"budget_s must be positive, got {budget_s}")
        if max_pairs is not None and max_pairs < 1:
            raise FuzzError(f"max_pairs must be >= 1, got {max_pairs}")
        self.space = PlanSpace(seed, detectors=detectors, axes=axes)
        self.seed = seed
        self.budget_s = budget_s
        self.max_pairs = max_pairs
        self.shrink = shrink
        self.shrink_executions = shrink_executions
        self.on_pair = on_pair

    def run(self) -> FuzzReport:
        """Fuzz until the budget runs out; returns the coverage report."""
        report = FuzzReport(seed=self.seed)
        start = time.monotonic()
        index = 0
        while True:
            if self.max_pairs is not None and index >= self.max_pairs:
                break
            if (
                index > 0
                and self.budget_s is not None
                and time.monotonic() - start >= self.budget_s
            ):
                break
            pair = self.space.pair(index)
            divergence = self._run_one(index, pair, report)
            if self.on_pair is not None:
                self.on_pair(index, pair, divergence)
            index += 1
        report.elapsed_s = time.monotonic() - start
        return report

    def _run_one(
        self, index: int, pair: PlanPair, report: FuzzReport
    ) -> Divergence | None:
        try:
            outcome_a = run_plan(pair.a)
            outcome_b = run_plan(pair.b)
        except (FuzzError, FuzzExecutionError) as exc:
            report.errors.append(f"pair {index} ({pair.describe()}): {exc}")
            return None
        report.record(pair)
        divergence = diff_outcomes(outcome_a, outcome_b, pair.axis)
        if divergence is None:
            return None
        minimal, shrink_executions, shrunk = pair, 0, False
        if self.shrink:
            result = shrink_pair(
                pair, divergence, max_executions=self.shrink_executions
            )
            minimal = result.pair
            divergence = result.divergence
            shrink_executions = result.executions
            shrunk = result.shrunk
        report.axis_divergences[pair.axis] = (
            report.axis_divergences.get(pair.axis, 0) + 1
        )
        report.cases.append(
            FuzzCase(
                axis=pair.axis,
                seed=self.seed,
                pair_index=index,
                divergence=divergence,
                plan_a=minimal.a,
                plan_b=minimal.b,
                original_a=pair.a,
                original_b=pair.b,
                shrink_executions=shrink_executions,
                shrunk=shrunk,
            )
        )
        return divergence
