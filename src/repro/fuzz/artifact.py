"""Versioned fuzz-case artifacts: serialize, validate, replay.

A divergence the harness finds (and shrinks) is only useful if it
survives the process that found it.  :class:`FuzzCase` is the durable
form — a small JSON document under the ``repro-hhh/fuzz-case/v1`` schema
carrying the minimised plan pair, the original pair it was shrunk from,
the divergence observed, and the plan-space coordinates (seed, pair
index) that produced it::

    {
      "schema": "repro-hhh/fuzz-case/v1",
      "axis": "chunking",
      "seed": 0, "pair_index": 17,
      "divergence": {"kind": "report", "emission": 0, "detail": "..."},
      "plan_a": {...}, "plan_b": {...},
      "original_a": {...}, "original_b": {...},
      "shrink": {"executions": 42, "shrunk": true}
    }

Because every plan carries a fully-seeded stream spec (the
:class:`repro.stream.ScenarioSource` seed normalisation guarantees it),
:func:`replay_case` needs nothing but the artifact: it re-executes both
minimised plans through the real stack and reports whether the
divergence still reproduces — deterministically, on any machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.fuzz.executor import Divergence, diff_outcomes, run_plan
from repro.fuzz.plan import AXES, ExecutionPlan, FuzzError, PlanPair

#: Version tag embedded in every fuzz-case artifact.
FUZZ_CASE_SCHEMA = "repro-hhh/fuzz-case/v1"


@dataclass(frozen=True)
class FuzzCase:
    """One serialized equivalence violation with its minimal reproducer."""

    axis: str
    seed: int
    pair_index: int
    divergence: Divergence
    plan_a: ExecutionPlan
    plan_b: ExecutionPlan
    original_a: ExecutionPlan
    original_b: ExecutionPlan
    shrink_executions: int = 0
    shrunk: bool = False

    @property
    def pair(self) -> PlanPair:
        """The minimised pair, ready to hand to the executor."""
        return PlanPair(self.axis, self.plan_a, self.plan_b)

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": FUZZ_CASE_SCHEMA,
            "axis": self.axis,
            "seed": self.seed,
            "pair_index": self.pair_index,
            "divergence": self.divergence.to_dict(),
            "plan_a": self.plan_a.to_dict(),
            "plan_b": self.plan_b.to_dict(),
            "original_a": self.original_a.to_dict(),
            "original_b": self.original_b.to_dict(),
            "shrink": {
                "executions": self.shrink_executions,
                "shrunk": self.shrunk,
            },
        }

    @classmethod
    def from_dict(cls, data: object) -> "FuzzCase":
        validate_fuzz_case_dict(data)
        assert isinstance(data, dict)
        shrink = data.get("shrink") or {}
        return cls(
            axis=str(data["axis"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            pair_index=int(data["pair_index"]),  # type: ignore[arg-type]
            divergence=Divergence.from_dict(data["divergence"]),
            plan_a=ExecutionPlan.from_dict(data["plan_a"]),
            plan_b=ExecutionPlan.from_dict(data["plan_b"]),
            original_a=ExecutionPlan.from_dict(data["original_a"]),
            original_b=ExecutionPlan.from_dict(data["original_b"]),
            shrink_executions=int(shrink.get("executions", 0)),
            shrunk=bool(shrink.get("shrunk", False)),
        )

    def describe(self) -> str:
        return (
            f"{self.pair.describe()} (seed {self.seed}, pair "
            f"{self.pair_index}, take {self.plan_a.take}): "
            f"{self.divergence}"
        )


def validate_fuzz_case_dict(data: object) -> None:
    """Raise :class:`FuzzError` unless ``data`` is a well-formed artifact."""
    if not isinstance(data, dict):
        raise FuzzError(
            f"fuzz case must be a dict, got {type(data).__name__}"
        )
    schema = data.get("schema")
    if schema != FUZZ_CASE_SCHEMA:
        raise FuzzError(
            f"unknown fuzz-case schema {schema!r}; "
            f"expected {FUZZ_CASE_SCHEMA!r}"
        )
    for field in ("axis", "seed", "pair_index", "divergence",
                  "plan_a", "plan_b", "original_a", "original_b"):
        if field not in data:
            raise FuzzError(f"fuzz case is missing {field!r}")
    if data["axis"] not in AXES:
        raise FuzzError(
            f"unknown axis {data['axis']!r}; known: {', '.join(AXES)}"
        )
    if not isinstance(data["divergence"], dict):
        raise FuzzError("fuzz-case divergence must be a dict")


def write_case(case: FuzzCase, path: str | Path) -> Path:
    """Write the artifact as JSON; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(case.to_dict(), indent=2, sort_keys=True))
    return path


def read_case(path: str | Path) -> FuzzCase:
    """Read and validate a fuzz-case artifact from disk."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise FuzzError(f"{path} is not valid JSON: {exc}") from exc
    return FuzzCase.from_dict(data)


def case_filename(case: FuzzCase) -> str:
    """A stable, collision-free filename for the artifact."""
    return (
        f"fuzz-case-{case.axis}-{case.plan_a.detector}"
        f"-s{case.seed}-p{case.pair_index}.json"
    )


def replay_case(case: FuzzCase) -> Divergence | None:
    """Re-execute the minimised pair; the divergence seen now, or ``None``.

    Deterministic: the plans carry fully-seeded stream specs, so a
    replay observes exactly what the original run observed (``None``
    therefore means the underlying bug is gone, not that the dice fell
    differently).
    """
    pair = case.pair
    a = run_plan(pair.a)
    b = run_plan(pair.b)
    return diff_outcomes(a, b, pair.axis)
