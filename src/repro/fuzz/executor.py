"""Run both plans of a pair through the real stack and diff observations.

The executor is deliberately thin glue over the production code paths —
:class:`repro.stream.StreamPipeline`, :class:`repro.engine.ShardedDetector`,
:class:`repro.stream.ServeRuntime`, ``save_state``/``load_state`` — so a
divergence it finds is a divergence a deployment would hit, not a harness
artifact.  Each plan produces a :class:`PlanOutcome`: the normalised
emission sequence (reports *with their dict order*, trace-time window
edges, packet/byte offsets, partial flags) plus a final
:meth:`repro.core.Detector.state_digest`.

Diffing is contract-aware.  Axes the test suite promises bit-identical
(checkpoint/resume, serve-vs-serial) are compared strictly — report item
order and state digests included.  Axes promised equal only up to float
rounding on the decayed structures (chunking via batch≡scalar, merge-based
axes) compare reports order-insensitively with the same ``1e-9`` relative
tolerance ``tests/core/test_batch_equivalence.py`` uses.  Everything
non-semantic (``wall_s``, ``chunk_index`` — both legitimately vary across
equivalent plans) is excluded from the normalised record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.detector import Detector
from repro.core.registry import DetectorSpec, get_spec
from repro.fuzz.plan import (
    AXES,
    ExecutionPlan,
    FuzzError,
    PlanPair,
)
from repro.stream.emission import Emission, parse_emission_policy
from repro.stream.pipeline import StreamPipeline
from repro.stream.source import (
    StreamSource,
    parse_stream_spec,
    skip_packets,
)

#: Float tolerance for axes equal "up to rounding" on decayed structures
#: (mirrors the batch-equivalence suite).
REL_TOL = 1e-9
ABS_TOL = 1e-9


class FuzzExecutionError(RuntimeError):
    """A plan failed to execute at all (infrastructure, not divergence)."""


@dataclass(frozen=True)
class AxisContract:
    """How strictly an equivalence axis is allowed to be compared."""

    order_sensitive: bool   #: compare report item *order*, not just content
    exact_values: bool      #: exact float equality (vs 1e-9 tolerance)
    compare_digest: bool    #: final detector state digests must match


#: Per-axis comparison strictness, straight from the layer contracts.
CONTRACTS: dict[str, AxisContract] = {
    "chunking": AxisContract(False, False, False),
    "sharding": AxisContract(False, False, False),
    "checkpoint": AxisContract(True, True, True),
    "serve": AxisContract(True, True, True),
    "merge-order": AxisContract(False, False, False),
    # Sibling-tenant churn and crash-recovery replay both promise the
    # tenant under test is untouched — as strict as serve-vs-serial.
    "serve-churn": AxisContract(True, True, True),
    "serve-crash": AxisContract(True, True, True),
}
assert set(CONTRACTS) == set(AXES)


@dataclass(frozen=True)
class EmissionRecord:
    """One emission reduced to its observationally-meaningful fields."""

    index: int
    t0: float
    t1: float
    packets: int
    bytes: int
    start_packet: int
    end_packet: int
    partial: bool
    report: tuple[tuple[int, float], ...]   #: items in emission dict order


def normalize_emission(emission: Emission) -> EmissionRecord:
    """Project an :class:`Emission` onto the comparable record.

    ``wall_s`` (wall clock) and ``chunk_index`` (changes with chunk size
    by construction) are dropped; everything else is part of the
    observable behaviour some axis promises to preserve.
    """
    return EmissionRecord(
        index=emission.index,
        t0=float(emission.window.t0),
        t1=float(emission.window.t1),
        packets=emission.packets,
        bytes=emission.bytes,
        start_packet=emission.start_packet,
        end_packet=emission.end_packet,
        partial=emission.partial,
        report=tuple(
            (int(k), float(v)) for k, v in emission.report.items()
        ),
    )


@dataclass(frozen=True)
class PlanOutcome:
    """Everything observable about one executed plan."""

    plan: ExecutionPlan
    emissions: tuple[EmissionRecord, ...]
    digest: str | None
    packets: int
    bytes: int


@dataclass(frozen=True)
class Divergence:
    """One observed violation of an equivalence contract."""

    axis: str
    kind: str                   #: emission-count | field | report | digest
    detail: str
    emission: int | None = None

    def to_dict(self) -> dict[str, object]:
        return {
            "axis": self.axis,
            "kind": self.kind,
            "detail": self.detail,
            "emission": self.emission,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Divergence":
        return cls(
            axis=str(data["axis"]),
            kind=str(data["kind"]),
            detail=str(data["detail"]),
            emission=(
                None if data.get("emission") is None
                else int(data["emission"])  # type: ignore[arg-type]
            ),
        )

    def __str__(self) -> str:
        where = "" if self.emission is None else f" @emission {self.emission}"
        return f"[{self.axis}] {self.kind}{where}: {self.detail}"


class ProbeReportDetector(Detector):
    """Merge-axis query adapter: probed estimates over observed keys.

    Thresholded ``query`` reports are only promised stable for enumerable
    detectors; the merge contract (``tests/core/test_merge_equivalence.py``)
    instead promises *point estimates* of the folded shards match the
    single-stream detector — for every key, enumerable or not.  This
    wrapper makes that observable through the unmodified pipeline: it
    tracks the keys seen in the current interval and answers ``query``
    with each one's probed estimate, folding shards via ``merged()``
    (optionally in an explicit ``merge_order``) first.  No thresholding,
    so a key straddling ``phi`` by one float ulp cannot fake a divergence.
    """

    def __init__(
        self,
        target: Detector,
        spec: DetectorSpec,
        merge_order: tuple[int, ...] | None = None,
    ) -> None:
        self.target = target
        self.spec = spec
        self.merge_order = merge_order
        self._observed: set[int] = set()

    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        self._observed.add(int(key))
        if ts is None:
            self.target.update(key, weight)
        else:
            self.target.update(key, weight, ts)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        self._observed.update(
            int(k) for k in np.unique(np.asarray(keys)).tolist()
        )
        self.target.update_batch(keys, weights, ts)

    def _query_target(self) -> Detector:
        from repro.engine.sharded import ShardedDetector

        if not isinstance(self.target, ShardedDetector):
            return self.target
        if self.merge_order is None:
            return self.target.merged()
        combined = self.target.detector_factory()
        for shard_index in self.merge_order:
            combined.merge(self.target.shards[shard_index])
        return combined

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        target = self._query_target()
        return {
            key: self.spec.estimate(target, key, now)  # type: ignore[arg-type]
            for key in sorted(self._observed)
        }

    def reset(self) -> None:
        self._observed.clear()
        self.target.reset()

    def save_state(self) -> dict[str, object]:
        return self.target.save_state()

    def load_state(self, state: dict[str, object]) -> None:
        self.target.load_state(state)

    @property
    def num_counters(self) -> int:
        return self.target.num_counters


def _build_source(plan: ExecutionPlan) -> StreamSource:
    return skip_packets(parse_stream_spec(plan.stream), plan.skip)


def _build_detector(
    plan: ExecutionPlan, spec: DetectorSpec
) -> tuple[Detector, Detector]:
    """``(pipeline_detector, digest_target)`` for a serial plan."""
    from repro.engine.sharded import ShardedDetector

    core: Detector = (
        ShardedDetector(spec.factory, plan.shards)
        if plan.shards > 1 else spec.factory()
    )
    if plan.probe:
        return ProbeReportDetector(core, spec, plan.merge_order), core
    return core, core


def _check_plan(plan: ExecutionPlan) -> DetectorSpec:
    spec = get_spec(plan.detector)
    if plan.probe:
        if plan.shards > 1 and not spec.mergeable:
            raise FuzzError(
                f"detector {plan.detector!r} is not mergeable; probe plans "
                "with shards > 1 fold via merge"
            )
    elif not spec.enumerable:
        raise FuzzError(
            f"detector {plan.detector!r} cannot enumerate reports; "
            "non-probe plans need an enumerable detector"
        )
    return spec


def run_plan(plan: ExecutionPlan) -> PlanOutcome:
    """Execute one plan through the real stack, normalising as it goes."""
    spec = _check_plan(plan)
    if plan.serve_workers:
        return _run_serve(plan, spec)
    return _run_serial(plan, spec)


def _run_serial(plan: ExecutionPlan, spec: DetectorSpec) -> PlanOutcome:
    records: list[EmissionRecord] = []

    def make_pipeline() -> tuple[StreamPipeline, Detector]:
        detector, digest_target = _build_detector(plan, spec)
        pipeline = StreamPipeline(
            detector,
            parse_emission_policy(plan.emit),
            phi=plan.phi,
            key=plan.key,
            timestamped=spec.timestamped,
        )
        return pipeline, digest_target

    pipeline, digest_target = make_pipeline()
    restarts = set(plan.restart_at)
    remaining = plan.take
    for chunk in _build_source(plan).chunks(plan.chunk):
        if len(chunk) > remaining:
            chunk = chunk.slice_index(0, remaining)
        for emission in pipeline.push(chunk):
            records.append(normalize_emission(emission))
        remaining -= len(chunk)
        if remaining <= 0:
            break
        if pipeline.chunk_index in restarts:
            # The checkpoint/restore cycle under test: freeze the whole
            # pipeline, discard it, rebuild around a *fresh* detector,
            # and restore — exactly what a migrating deployment does.
            state = pipeline.checkpoint()
            pipeline, digest_target = make_pipeline()
            pipeline.restore(state)
    for emission in pipeline.finish():
        records.append(normalize_emission(emission))
    return PlanOutcome(
        plan=plan,
        emissions=tuple(records),
        digest=digest_target.state_digest(),
        packets=pipeline.packets,
        bytes=pipeline.bytes,
    )


def _run_serve(plan: ExecutionPlan, spec: DetectorSpec) -> PlanOutcome:
    from repro.stream.serve import ServeRuntime

    records: list[EmissionRecord] = []
    with ServeRuntime(
        workers=plan.serve_workers,
        shards=plan.shards,
        chunk_size=plan.chunk,
    ) as runtime:
        pipeline = runtime.add_tenant(
            "fuzz",
            plan.detector,
            _build_source(plan),
            emit=plan.emit,
            phi=plan.phi,
            key=plan.key,
            max_packets=plan.take,
            checkpoint_every=plan.checkpoint_every or None,
        )
        if plan.crash_at or plan.churn:
            runtime.on_turn = _serve_turn_hook(plan, runtime)
        for name, emission in runtime.run():
            if name == "fuzz":
                records.append(normalize_emission(emission))
        if "fuzz" in runtime.failed:
            raise FuzzExecutionError(
                f"serve tenant failed: {runtime.failed}"
            )
        digest = pipeline.detector.state_digest()
        packets, total_bytes = pipeline.packets, pipeline.bytes
    return PlanOutcome(
        plan=plan,
        emissions=tuple(records),
        digest=digest,
        packets=packets,
        bytes=total_bytes,
    )


def _serve_turn_hook(plan: ExecutionPlan, runtime) -> "callable":
    """Deterministic churn/crash orchestration for serve-axis b-plans.

    Everything keys off the scheduler turn counter, which is itself a
    pure function of the plan: sibling tenants are admitted at the
    ``churn`` turns (fixed specs seeded from the turn, retired two turns
    later), and ``crash_at`` SIGKILLs worker ``crash_at % serve_workers``
    once.  The tenant under test must come out untouched.
    """
    churn = set(plan.churn)
    retire_at: dict[int, str] = {}

    def on_turn(turn: int) -> None:
        if plan.crash_at and turn == plan.crash_at:
            runtime.pool.kill_worker(plan.crash_at % plan.serve_workers)
        if turn in churn:
            name = f"churn-{turn}"
            runtime.add_tenant(
                name,
                plan.detector,
                f"zipf:duration=2,seed={900 + turn}",
                emit="1s",
                phi=0.5,
                key=plan.key,
                max_packets=96,
            )
            retire_at[turn + 2] = name
        name = retire_at.pop(turn, None)
        if name is not None and name in runtime.tenants \
                and name not in runtime.failed:
            runtime.retire_tenant(name, checkpoint=False)

    return on_turn


# -- diffing -----------------------------------------------------------------

def _values_equal(a: float, b: float, exact: bool) -> bool:
    if exact:
        return a == b
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _diff_report(
    axis: str,
    index: int,
    a: tuple[tuple[int, float], ...],
    b: tuple[tuple[int, float], ...],
    contract: AxisContract,
) -> Divergence | None:
    if contract.order_sensitive:
        pairs_a, pairs_b = a, b
        if [k for k, _ in a] != [k for k, _ in b]:
            return Divergence(
                axis, "report", emission=index,
                detail=(
                    f"report keys/order differ: "
                    f"{[k for k, _ in a]} vs {[k for k, _ in b]}"
                ),
            )
    else:
        da, db = dict(a), dict(b)
        if set(da) != set(db):
            only_a = sorted(set(da) - set(db))
            only_b = sorted(set(db) - set(da))
            return Divergence(
                axis, "report", emission=index,
                detail=(
                    f"report key sets differ: only-a={only_a} "
                    f"only-b={only_b}"
                ),
            )
        pairs_a = tuple(sorted(da.items()))
        pairs_b = tuple(sorted(db.items()))
    for (key, va), (_, vb) in zip(pairs_a, pairs_b):
        if not _values_equal(va, vb, contract.exact_values):
            return Divergence(
                axis, "report", emission=index,
                detail=f"estimate for key {key} differs: {va!r} vs {vb!r}",
            )
    return None


_RECORD_FIELDS = (
    "index", "t0", "t1", "packets", "bytes",
    "start_packet", "end_packet", "partial",
)


def diff_outcomes(
    a: PlanOutcome, b: PlanOutcome, axis: str
) -> Divergence | None:
    """The first contract violation between two outcomes, or ``None``."""
    contract = CONTRACTS[axis]
    if (a.packets, a.bytes) != (b.packets, b.bytes):
        return Divergence(
            axis, "totals",
            detail=(
                f"consumed (packets, bytes) differ: "
                f"({a.packets}, {a.bytes}) vs ({b.packets}, {b.bytes})"
            ),
        )
    if len(a.emissions) != len(b.emissions):
        return Divergence(
            axis, "emission-count",
            detail=(
                f"{len(a.emissions)} emissions vs {len(b.emissions)}"
            ),
        )
    for rec_a, rec_b in zip(a.emissions, b.emissions):
        for name in _RECORD_FIELDS:
            va, vb = getattr(rec_a, name), getattr(rec_b, name)
            if va != vb:
                return Divergence(
                    axis, "field", emission=rec_a.index,
                    detail=f"{name} differs: {va!r} vs {vb!r}",
                )
        found = _diff_report(
            axis, rec_a.index, rec_a.report, rec_b.report, contract
        )
        if found is not None:
            return found
    if contract.compare_digest and a.digest and b.digest:
        if a.digest != b.digest:
            return Divergence(
                axis, "digest",
                detail=(
                    f"final state digests differ: "
                    f"{a.digest[:16]}... vs {b.digest[:16]}..."
                ),
            )
    return None


def run_pair(
    pair: PlanPair,
) -> tuple[PlanOutcome, PlanOutcome, Divergence | None]:
    """Execute both plans and return their outcomes plus the first diff."""
    outcome_a = run_plan(pair.a)
    outcome_b = run_plan(pair.b)
    return outcome_a, outcome_b, diff_outcomes(
        outcome_a, outcome_b, pair.axis
    )
