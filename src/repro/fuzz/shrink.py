"""Greedy minimisation of a diverging plan pair.

When the executor finds a divergence, the raw pair is usually far bigger
than the bug: a thousand-packet stream, large chunks, several restart
points.  The shrinker reduces it to a minimal reproducer with three
greedy passes, each re-executing the candidate pair and keeping a change
only if the divergence *persists* (any divergence on the same axis — the
first-reported symptom may legitimately shift while shrinking):

1. **take bisection** — binary-search the smallest packet budget that
   still diverges (packet-range bisection over ``Trace.slice_index``,
   since the pipeline truncates its final chunk to the budget);
2. **skip advance** — push the window start forward with decreasing
   strides, isolating the triggering packet range from the right *and*
   left;
3. **plan-delta minimisation** — walk every interleaving knob toward the
   trivial value (chunk sizes toward each other and downward, shard
   counts down, restart points dropped then halved, serve workers down,
   churn points dropped then pulled earlier, crash turns halved, the
   emission policy collapsed to a single end-of-stream flush).

Passes 2 and 3 repeat until a full round makes no progress or the
execution budget runs out.  Every candidate execution is deterministic
(plans carry fully-seeded stream specs), so the result replays exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzz.executor import (
    Divergence,
    FuzzExecutionError,
    diff_outcomes,
    run_plan,
)
from repro.fuzz.plan import ExecutionPlan, FuzzError, PlanPair


@dataclass
class ShrinkResult:
    """The minimised pair, its divergence, and how much work it took."""

    pair: PlanPair
    divergence: Divergence
    executions: int     #: pair executions spent (including the final check)
    shrunk: bool        #: whether any pass made the pair smaller


class _Budget:
    def __init__(self, executions: int) -> None:
        self.remaining = executions
        self.spent = 0

    def take(self) -> bool:
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        self.spent += 1
        return True


def _diverges(pair: PlanPair, budget: _Budget) -> Divergence | None:
    """Execute ``pair`` if budget allows; its divergence or ``None``.

    A candidate that fails to *execute* (e.g. a mutated plan the stack
    rejects) is treated as not-diverging, so the shrinker simply keeps
    the previous reproducer.
    """
    if not budget.take():
        return None
    try:
        a = run_plan(pair.a)
        b = run_plan(pair.b)
    except (FuzzError, FuzzExecutionError, ValueError):
        return None
    return diff_outcomes(a, b, pair.axis)


def shrink_pair(
    pair: PlanPair,
    divergence: Divergence,
    *,
    max_executions: int = 80,
) -> ShrinkResult:
    """Minimise a known-diverging pair; never returns a non-diverging one.

    ``max_executions`` bounds the total pair executions across all
    passes; the pair handed back always reproduced ``divergence``'s axis
    on its most recent execution.
    """
    budget = _Budget(max_executions)
    original = pair

    pair, divergence = _shrink_take(pair, divergence, budget)
    # Alternate the passes until a whole round makes no progress: a knob
    # change (e.g. collapsing the emission policy) routinely unlocks a
    # much smaller take, so the bisection re-runs inside the loop.
    while True:
        before = pair
        pair, divergence = _shrink_skip(pair, divergence, budget)
        pair, divergence = _shrink_knobs(pair, divergence, budget)
        pair, divergence = _shrink_take(pair, divergence, budget)
        if pair == before or budget.remaining <= 0:
            break
    return ShrinkResult(
        pair=pair,
        divergence=divergence,
        executions=budget.spent,
        shrunk=pair != original,
    )


def _shrink_take(
    pair: PlanPair, divergence: Divergence, budget: _Budget
) -> tuple[PlanPair, Divergence]:
    """Binary-search the smallest ``take`` that still diverges."""
    low, high = 1, pair.a.take          # high always diverges
    while low < high:
        mid = (low + high) // 2
        candidate = pair.with_workload(take=mid)
        found = _diverges(candidate, budget)
        if found is not None:
            pair, divergence, high = candidate, found, mid
        else:
            low = mid + 1
        if budget.remaining <= 0:
            break
    return pair, divergence


def _shrink_skip(
    pair: PlanPair, divergence: Divergence, budget: _Budget
) -> tuple[PlanPair, Divergence]:
    """Advance ``skip`` with decreasing strides while divergence holds."""
    stride = max(1, pair.a.take // 2)
    while stride >= 1 and budget.remaining > 0:
        candidate = pair.with_workload(skip=pair.a.skip + stride)
        found = _diverges(candidate, budget)
        if found is not None:
            pair, divergence = candidate, found
        else:
            stride //= 2
    return pair, divergence


def _knob_candidates(pair: PlanPair) -> list[PlanPair]:
    """Smaller-or-simpler variants of the pair, most aggressive first.

    Every candidate stays *inside the axis's promised-equivalent family*
    — e.g. a serve pair's shard counts move on both sides together,
    because serve-vs-serial is only promised equivalent at equal shard
    counts.  A mutation that left the family would "diverge" by
    construction and lock the shrinker onto a fake reproducer.
    """
    out: list[PlanPair] = []
    axis, a, b = pair.axis, pair.a, pair.b

    def both(**changes: object) -> None:
        try:
            out.append(pair.with_workload(**changes))
        except FuzzError:
            pass

    def sides(pa: ExecutionPlan, pb: ExecutionPlan) -> None:
        try:
            out.append(PlanPair(axis, pa, pb))
        except FuzzError:
            pass

    # Collapse the emission policy: one end-of-stream flush is the
    # simplest schedule that can still observe the divergence.
    if a.emit != f"{a.take}p":
        both(emit=f"{a.take}p")

    if axis == "chunking":
        # The chunk sizes are the delta under test: pull them together
        # (adjacent sizes are the minimal delta), then toward 1-vs-2.
        lo = min(a.chunk, b.chunk)
        for pair_sizes in ((lo, lo + 1), (max(1, lo // 2),
                                          max(1, lo // 2) + 1), (1, 2)):
            if pair_sizes == tuple(sorted((a.chunk, b.chunk))):
                continue
            small, big = pair_sizes
            if a.chunk <= b.chunk:
                sides(a.with_(chunk=small), b.with_(chunk=big))
            else:
                sides(a.with_(chunk=big), b.with_(chunk=small))
    else:
        # Chunk size is workload here; shrink it on both sides together.
        for smaller in (a.chunk // 2, 8, 1):
            if 1 <= smaller < a.chunk:
                both(chunk=smaller)

    if axis == "sharding" and b.shards > 2:
        sides(a, b.with_(shards=b.shards - 1))

    if axis == "checkpoint":
        # Keep at least one restart (the axis's delta); drop extras,
        # then pull each point earlier.
        for i, point in enumerate(b.restart_at):
            fewer = b.restart_at[:i] + b.restart_at[i + 1:]
            if fewer:
                sides(a, b.with_(restart_at=fewer))
            if point > 1:
                halved = b.restart_at[:i] + (point // 2,) + \
                    b.restart_at[i + 1:]
                sides(a, b.with_(restart_at=halved))

    if axis == "serve":
        if a.shards > 2:
            smaller = a.shards - 1
            sides(
                a.with_(shards=smaller),
                b.with_(
                    shards=smaller,
                    serve_workers=min(b.serve_workers, smaller),
                ),
            )
        if b.serve_workers > 1:
            sides(a, b.with_(serve_workers=1))

    if axis in ("serve-churn", "serve-crash"):
        # Both sides run under serve here; the pool shape is workload, so
        # it shrinks on both sides together.
        if a.serve_workers > 1:
            both(serve_workers=1)
        if a.shards > 1:
            both(shards=1, serve_workers=1)

    if axis == "serve-churn":
        # Drop churn points one at a time (at least one must remain —
        # it is the axis's delta), then pull each one earlier.
        for i, point in enumerate(b.churn):
            fewer = b.churn[:i] + b.churn[i + 1:]
            if fewer:
                sides(a, b.with_(churn=fewer))
            if point > 1:
                sides(
                    a,
                    b.with_(churn=b.churn[:i] + (point // 2,)
                            + b.churn[i + 1:]),
                )

    if axis == "serve-crash":
        if b.crash_at > 1:
            sides(a, b.with_(crash_at=b.crash_at // 2))
        if a.checkpoint_every > 1:
            both(checkpoint_every=1)

    # merge-order: the orders must stay permutations of the shared shard
    # count, so only the workload knobs above shrink.
    return out


def _shrink_knobs(
    pair: PlanPair, divergence: Divergence, budget: _Budget
) -> tuple[PlanPair, Divergence]:
    """Greedily apply knob simplifications until none sticks."""
    progress = True
    while progress and budget.remaining > 0:
        progress = False
        for candidate in _knob_candidates(pair):
            if candidate == pair:
                continue
            found = _diverges(candidate, budget)
            if found is not None:
                pair, divergence = candidate, found
                progress = True
                break
            if budget.remaining <= 0:
                break
    return pair, divergence
