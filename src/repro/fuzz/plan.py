"""Execution plans and the seeded plan space.

An :class:`ExecutionPlan` pins down *one way* to run a workload through
the streaming stack: which detector, which stream spec, how the stream is
chunked, how the key space is sharded, where checkpoint/restore cycles
interrupt the run, in which order shards are folded, and whether the run
goes through the serve pool or the serial pipeline.  Plans are plain
frozen data — serializable, hashable, comparable — so a fuzz-case
artifact can carry them verbatim and replay them later.

:class:`PlanSpace` is the generator: seeded, deterministic sampling of
:class:`PlanPair`\\ s along the *equivalence axes* the layer contracts
promise.  Each axis names one contract already enforced somewhere in the
test suite for one interleaving; the fuzz harness re-checks it across
many sampled interleavings:

``chunking``
    Re-chunking a stream never changes observations
    (``tests/core/test_batch_equivalence.py``: batch ≡ scalar, so any
    chunk boundary placement is equivalent — decayed structures up to
    float rounding).
``sharding``
    Key-partitioned shards folded via ``merged()`` reproduce the
    single-stream detector for registry-``mergeable`` entries
    (``tests/core/test_merge_equivalence.py``).
``checkpoint``
    Freezing a pipeline mid-stream and resuming is bit-identical to never
    stopping (``tests/core/test_checkpoint_equivalence.py``,
    ``tests/stream/test_pipeline.py``).
``serve``
    The serve pool emits bit-identically to the serial sharded pipeline
    with the same chunk size and shard count
    (``tests/stream/test_serve.py``).
``merge-order``
    ``merge`` is order-insensitive: folding shards in any permutation
    yields the same detector (up to float rounding for decayed
    structures).
``serve-churn``
    A serve tenant's emissions are independent of sibling tenant churn:
    admitting and retiring other tenants mid-``run()`` never perturbs it
    (``tests/stream/test_serve.py``, the tenant-isolation contract).
``serve-crash``
    A worker SIGKILLed mid-run is recovered from the tenant's
    ``checkpoint_every`` auto-checkpoint bit-identically to a run with
    no crash at all (``tests/engine/test_serve_recovery.py``).

Axis eligibility comes from registry metadata: report-comparing axes
(chunking, checkpoint, serve) need ``enumerable`` detectors; merge-based
axes (sharding, merge-order) need ``mergeable`` ones and compare probed
point estimates over the observed key set instead of thresholded reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

from repro.core.registry import detector_names, get_spec

#: The equivalence axes the plan space samples, in round-robin order.
AXES = ("chunking", "sharding", "checkpoint", "serve", "merge-order",
        "serve-churn", "serve-crash")

#: Axes whose plans threshold-query and diff full emission reports.
REPORT_AXES = ("chunking", "checkpoint", "serve", "serve-churn",
               "serve-crash")

#: Axes whose plans fold shards via ``merge`` and diff probed estimates.
MERGE_AXES = ("sharding", "merge-order")


class FuzzError(ValueError):
    """An invalid plan, plan pair, or plan-space configuration."""


@dataclass(frozen=True)
class ExecutionPlan:
    """One fully-pinned way to run a workload through the real stack.

    Workload knobs (shared by both plans of a pair):

    - ``detector`` — registry name;
    - ``stream`` — stream spec string (seeds normalised in, so the string
      alone reproduces the packets);
    - ``take`` — packet budget (bounds infinite sources);
    - ``skip`` — packets dropped off the front (the shrinker raises this
      to bisect the divergence-triggering range);
    - ``emit`` — emission policy spelling (``"2s"``, ``"500p"``, ...);
    - ``phi``/``key`` — report threshold and key column.

    Interleaving knobs (where the two plans of a pair differ):

    - ``chunk`` — packets per columnar chunk;
    - ``shards`` — key-partition count (1 = plain detector);
    - ``probe`` — query via probed point estimates over observed keys with
      shards folded through ``merged()`` (the merge-axis mode) instead of
      thresholded ``query`` reports;
    - ``restart_at`` — pipeline checkpoint/restore cycles: after chunk
      index ``i`` the pipeline is frozen, torn down, rebuilt around a
      fresh detector, and restored;
    - ``merge_order`` — the shard fold order for ``probe`` plans
      (``None`` = natural order);
    - ``serve_workers`` — run through a :class:`repro.stream.ServeRuntime`
      with this many pool workers (0 = serial pipeline);
    - ``checkpoint_every`` — per-tenant auto-checkpoint cadence in
      emissions (serve plans only; 0 = off);
    - ``crash_at`` — SIGKILL one worker at this scheduler turn (serve
      plans only, requires ``checkpoint_every``; 0 = no crash);
    - ``churn`` — scheduler turns at which a sibling tenant is admitted
      (and retired two turns later), exercising live tenant churn around
      the tenant under test (serve plans only).
    """

    detector: str
    stream: str
    take: int = 512
    skip: int = 0
    emit: str = "2s"
    phi: float = 0.02
    key: str = "src"
    chunk: int = 128
    shards: int = 1
    probe: bool = False
    restart_at: tuple[int, ...] = field(default_factory=tuple)
    merge_order: tuple[int, ...] | None = None
    serve_workers: int = 0
    checkpoint_every: int = 0
    crash_at: int = 0
    churn: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.take < 1:
            raise FuzzError(f"take must be >= 1, got {self.take}")
        if self.skip < 0:
            raise FuzzError(f"skip must be >= 0, got {self.skip}")
        if self.chunk < 1:
            raise FuzzError(f"chunk must be >= 1, got {self.chunk}")
        if self.shards < 1:
            raise FuzzError(f"shards must be >= 1, got {self.shards}")
        if self.serve_workers < 0:
            raise FuzzError(
                f"serve_workers must be >= 0, got {self.serve_workers}"
            )
        if not 0.0 < self.phi <= 1.0:
            raise FuzzError(f"phi must be in (0, 1], got {self.phi}")
        object.__setattr__(
            self, "restart_at", tuple(sorted(set(self.restart_at)))
        )
        if any(i < 1 for i in self.restart_at):
            raise FuzzError(
                f"restart_at indices must be >= 1, got {self.restart_at}"
            )
        if self.merge_order is not None:
            order = tuple(self.merge_order)
            object.__setattr__(self, "merge_order", order)
            if sorted(order) != list(range(self.shards)):
                raise FuzzError(
                    f"merge_order {order} is not a permutation of "
                    f"range({self.shards})"
                )
            if not self.probe:
                raise FuzzError("merge_order requires probe mode")
        if self.probe and self.restart_at:
            raise FuzzError(
                "probe plans cannot interleave checkpoint restarts (the "
                "probe adapter's observed-key window is not checkpointed)"
            )
        if self.serve_workers:
            if self.probe:
                raise FuzzError("serve plans cannot use probe mode")
            if self.restart_at:
                raise FuzzError(
                    "serve plans cannot interleave checkpoint restarts"
                )
            if self.serve_workers > self.shards:
                raise FuzzError(
                    f"serve_workers {self.serve_workers} exceeds shards "
                    f"{self.shards}"
                )
        if self.checkpoint_every < 0:
            raise FuzzError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.crash_at < 0:
            raise FuzzError(f"crash_at must be >= 0, got {self.crash_at}")
        object.__setattr__(self, "churn", tuple(sorted(set(self.churn))))
        if any(t < 1 for t in self.churn):
            raise FuzzError(
                f"churn turns must be >= 1, got {self.churn}"
            )
        if (self.checkpoint_every or self.crash_at or self.churn) \
                and not self.serve_workers:
            raise FuzzError(
                "checkpoint_every/crash_at/churn require a serve plan "
                "(serve_workers >= 1)"
            )
        if self.crash_at and not self.checkpoint_every:
            raise FuzzError(
                "crash_at requires checkpoint_every >= 1 (a tenant "
                "without auto-checkpoints cannot survive the crash)"
            )

    def with_(self, **changes: object) -> "ExecutionPlan":
        """A copy with ``changes`` applied (shrinker mutation helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """A JSON-clean dict that :meth:`from_dict` round-trips."""
        return {
            "detector": self.detector,
            "stream": self.stream,
            "take": self.take,
            "skip": self.skip,
            "emit": self.emit,
            "phi": self.phi,
            "key": self.key,
            "chunk": self.chunk,
            "shards": self.shards,
            "probe": self.probe,
            "restart_at": list(self.restart_at),
            "merge_order": (
                None if self.merge_order is None else list(self.merge_order)
            ),
            "serve_workers": self.serve_workers,
            "checkpoint_every": self.checkpoint_every,
            "crash_at": self.crash_at,
            "churn": list(self.churn),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(data, dict):
            raise FuzzError(
                f"plan must be a dict, got {type(data).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise FuzzError(f"unknown plan fields: {sorted(unknown)}")
        kwargs = dict(data)
        if kwargs.get("restart_at") is not None:
            kwargs["restart_at"] = tuple(kwargs["restart_at"])  # type: ignore[arg-type]
        if kwargs.get("merge_order") is not None:
            kwargs["merge_order"] = tuple(kwargs["merge_order"])  # type: ignore[arg-type]
        if kwargs.get("churn") is not None:
            kwargs["churn"] = tuple(kwargs["churn"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def describe(self) -> str:
        """A compact one-line label for logs and divergence reports."""
        parts = [f"chunk={self.chunk}"]
        if self.shards > 1:
            parts.append(f"shards={self.shards}")
        if self.probe:
            parts.append("probe")
        if self.restart_at:
            parts.append(f"restart@{','.join(map(str, self.restart_at))}")
        if self.merge_order is not None:
            parts.append(f"order={''.join(map(str, self.merge_order))}")
        if self.serve_workers:
            parts.append(f"serve={self.serve_workers}w")
        if self.checkpoint_every:
            parts.append(f"ckpt={self.checkpoint_every}")
        if self.crash_at:
            parts.append(f"crash@{self.crash_at}")
        if self.churn:
            parts.append(f"churn@{','.join(map(str, self.churn))}")
        return f"{self.detector}[{' '.join(parts)}]"


@dataclass(frozen=True)
class PlanPair:
    """Two plans one equivalence axis promises are observationally equal."""

    axis: str
    a: ExecutionPlan
    b: ExecutionPlan

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise FuzzError(
                f"unknown axis {self.axis!r}; known: {', '.join(AXES)}"
            )
        for shared in ("detector", "stream", "take", "skip", "emit",
                       "phi", "key"):
            if getattr(self.a, shared) != getattr(self.b, shared):
                raise FuzzError(
                    f"plan pair must share {shared!r}: "
                    f"{getattr(self.a, shared)!r} != "
                    f"{getattr(self.b, shared)!r}"
                )

    def with_workload(self, **changes: object) -> "PlanPair":
        """Both plans with the same workload ``changes`` (shrinker)."""
        return PlanPair(
            self.axis, self.a.with_(**changes), self.b.with_(**changes)
        )

    def describe(self) -> str:
        return f"{self.axis}: {self.a.describe()} vs {self.b.describe()}"


def eligible_detectors(axis: str) -> tuple[str, ...]:
    """Registry detectors the given axis can exercise, sorted by name."""
    if axis in REPORT_AXES:
        return tuple(
            n for n in detector_names() if get_spec(n).enumerable
        )
    if axis in MERGE_AXES:
        return tuple(
            n for n in detector_names() if get_spec(n).mergeable
        )
    raise FuzzError(f"unknown axis {axis!r}; known: {', '.join(AXES)}")


#: Scenario names the workload sampler draws from (all reseedable).
_SCENARIOS = ("zipf", "ddos-burst", "flash-crowd", "portscan", "calm")

_CHUNKS = (16, 32, 48, 64, 96, 128, 192, 256)
_EMITS = ("1s", "2s", "250p", "500p", "window:2")
_PHIS = (0.01, 0.02, 0.05)


class PlanSpace:
    """Seeded, deterministic sampler of equivalent plan pairs.

    Pair ``i`` is derived from ``(seed, i)`` alone, so the space is both
    reproducible (same seed → same pairs, across runs and machines) and
    resumable (a fuzz-case artifact records the pair index).  Axes rotate
    round-robin and detectors rotate within each axis's eligible pool, so
    a short budget still covers every axis and many detectors before the
    sampler revisits anything.

    Parameters
    ----------
    seed:
        Base seed for the whole space.
    detectors:
        Optional registry-name whitelist; axes left with no eligible
        detector are dropped (raises if nothing at all is eligible).
    axes:
        Which equivalence axes to sample (default: all).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        detectors: Sequence[str] | None = None,
        axes: Sequence[str] | None = None,
    ) -> None:
        self.seed = seed
        wanted = tuple(axes) if axes is not None else AXES
        for axis in wanted:
            if axis not in AXES:
                raise FuzzError(
                    f"unknown axis {axis!r}; known: {', '.join(AXES)}"
                )
        if detectors is not None:
            for name in detectors:
                try:
                    get_spec(name)  # validate eagerly, with suggestions
                except KeyError as exc:
                    raise FuzzError(exc.args[0]) from None
        pools: dict[str, tuple[str, ...]] = {}
        for axis in wanted:
            pool = eligible_detectors(axis)
            if detectors is not None:
                pool = tuple(n for n in pool if n in set(detectors))
            if pool:
                pools[axis] = pool
        if not pools:
            raise FuzzError(
                "no (axis, detector) combination is eligible: report axes "
                "need enumerable detectors, merge axes need mergeable ones"
            )
        self.axes = tuple(pools)
        self.pools = pools

    def _rng(self, index: int) -> random.Random:
        # Seeding from a string hashes via SHA-512 (stable across runs
        # and processes, unlike object hashes under PYTHONHASHSEED).
        return random.Random(f"repro-fuzz:{self.seed}:{index}")

    def pair(self, index: int) -> PlanPair:
        """The ``index``-th plan pair of this space (pure function)."""
        axis = self.axes[index % len(self.axes)]
        pool = self.pools[axis]
        detector = pool[(index // len(self.axes)) % len(pool)]
        rng = self._rng(index)
        base = self._workload(rng, detector)
        build = getattr(self, "_pair_" + axis.replace("-", "_"))
        return build(rng, base)

    def pairs(self) -> Iterator[PlanPair]:
        """Plan pairs in index order, forever (consumers bound it)."""
        index = 0
        while True:
            yield self.pair(index)
            index += 1

    # -- workload sampling -------------------------------------------------

    def _workload(self, rng: random.Random, detector: str) -> ExecutionPlan:
        return ExecutionPlan(
            detector=detector,
            stream=self._stream(rng),
            take=rng.randrange(256, 1537),
            emit=rng.choice(_EMITS),
            phi=rng.choice(_PHIS),
            key=rng.choice(("src", "dst")),
        )

    def _stream(self, rng: random.Random) -> str:
        # A small seed pool keeps the trace LRU cache warm across pairs;
        # the per-atom seed still varies the packets between workloads.
        s = rng.randrange(0, 16)
        shape = rng.randrange(6)
        one = rng.choice(_SCENARIOS)
        two = rng.choice(_SCENARIOS)
        if shape == 0:
            return f"{one}:duration=6,seed={s}"
        if shape == 1:
            return f"repeat:{one}:duration=3,seed={s}"
        if shape == 2:
            return (
                f"{one}:duration=4,seed={s}"
                f"+{two}:duration=4,seed={s + 1}"
            )
        if shape == 3:
            return (
                f"{one}:duration=4,seed={s}"
                f"&{two}:duration=4,seed={s + 1}"
            )
        if shape == 4:
            return f"{one}:duration=6,seed={s}@x4"
        return f"repeat:{one}:duration=3,seed={s}&{two}:duration=5,seed={s + 1}"

    # -- per-axis pair construction ----------------------------------------

    def _pair_chunking(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        c1, c2 = rng.sample(_CHUNKS, 2)
        return PlanPair(
            "chunking", base.with_(chunk=c1), base.with_(chunk=c2)
        )

    def _pair_sharding(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        chunk = rng.choice(_CHUNKS)
        shards = rng.choice((2, 3, 4))
        base = base.with_(chunk=chunk, probe=True)
        return PlanPair("sharding", base, base.with_(shards=shards))

    def _pair_checkpoint(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        chunk = rng.choice(_CHUNKS)
        base = base.with_(chunk=chunk)
        # Restart points must land strictly inside the run to interrupt
        # anything; pad take so there are at least 4 full chunks.
        nchunks = base.take // chunk
        if nchunks < 4:
            base = base.with_(take=chunk * 4)
            nchunks = 4
        count = rng.choice((1, 1, 2))
        points = tuple(sorted(rng.sample(range(1, nchunks), count)))
        return PlanPair("checkpoint", base, base.with_(restart_at=points))

    def _pair_serve(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        chunk = rng.choice((64, 128, 256))
        shards = rng.choice((2, 3, 4))
        workers = rng.randrange(1, shards + 1)
        base = base.with_(chunk=chunk, shards=shards)
        return PlanPair("serve", base, base.with_(serve_workers=workers))

    def _pair_serve_churn(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        chunk = rng.choice((64, 128, 256))
        shards = rng.choice((2, 3))
        workers = rng.randrange(1, shards + 1)
        base = base.with_(chunk=chunk, shards=shards, serve_workers=workers)
        # Churn turns must land while the tenant under test still has
        # chunks to stream, or nothing interleaves with it.
        nturns = max(2, base.take // chunk)
        count = min(rng.choice((1, 2)), nturns)
        turns = tuple(sorted(rng.sample(range(1, nturns + 1), count)))
        return PlanPair("serve-churn", base, base.with_(churn=turns))

    def _pair_serve_crash(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        chunk = rng.choice((64, 128, 256))
        shards = rng.choice((2, 3))
        workers = rng.randrange(1, shards + 1)
        base = base.with_(
            chunk=chunk, shards=shards, serve_workers=workers,
            checkpoint_every=rng.choice((1, 2)),
        )
        # The kill must fire before the stream ends to interrupt anything.
        nturns = max(2, base.take // chunk)
        return PlanPair(
            "serve-crash", base,
            base.with_(crash_at=rng.randrange(1, nturns + 1)),
        )

    def _pair_merge_order(
        self, rng: random.Random, base: ExecutionPlan
    ) -> PlanPair:
        chunk = rng.choice(_CHUNKS)
        shards = rng.choice((3, 4))
        natural = tuple(range(shards))
        shuffled = natural
        while shuffled == natural:
            shuffled = tuple(rng.sample(range(shards), shards))
        base = base.with_(chunk=chunk, shards=shards, probe=True)
        return PlanPair(
            "merge-order",
            base.with_(merge_order=natural),
            base.with_(merge_order=shuffled),
        )

    def __repr__(self) -> str:
        return (
            f"PlanSpace(seed={self.seed}, axes={list(self.axes)})"
        )
