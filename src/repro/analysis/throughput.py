"""Scalar-vs-batch update timing harness.

Shared by ``repro-hhh bench`` and ``benchmarks/test_batch_throughput.py``
so the CLI's smoke numbers and the gated benchmark use the same
methodology: best-of-N fresh-detector runs on both paths, identical row
schema.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import make_detector
from repro.trace.container import Trace

Columns = tuple[np.ndarray, np.ndarray, np.ndarray]


def trace_columns(trace: Trace, limit: int = 20_000) -> Columns:
    """The first ``limit`` packets as (src, length, ts) numpy columns."""
    n = min(len(trace), limit)
    return trace.src[:n], trace.length[:n], trace.ts[:n]


def measure_update_seconds(
    name: str, columns: Columns, *, batch: bool, repeats: int = 3, **kwargs
) -> float:
    """Best-of-``repeats`` seconds to stream the columns through a fresh
    detector, per packet (``batch=False``) or as one columnar call."""
    src, length, ts = columns
    best = float("inf")
    for _ in range(repeats):
        detector = make_detector(name, **kwargs)
        if batch:
            t0 = time.perf_counter()
            detector.update_batch(src, length, ts)
        else:
            update = detector.update
            t0 = time.perf_counter()
            for key, weight, when in zip(
                src.tolist(), length.tolist(), ts.tolist()
            ):
                update(key, weight, when)
        best = min(best, time.perf_counter() - t0)
    return best


def speedup_row(
    name: str, columns: Columns, repeats: int = 3, **kwargs
) -> dict[str, object]:
    """One batch-vs-scalar comparison row for table rendering."""
    scalar_s = measure_update_seconds(
        name, columns, batch=False, repeats=repeats, **kwargs
    )
    batch_s = measure_update_seconds(
        name, columns, batch=True, repeats=repeats, **kwargs
    )
    n = len(columns[0])
    return {
        "detector": name,
        "packets": n,
        "scalar_pps": int(n / scalar_s),
        "batch_pps": int(n / batch_s),
        "speedup": round(scalar_s / batch_s, 1),
    }
