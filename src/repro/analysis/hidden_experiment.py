"""Figure 2: percentage of hidden HHHs.

"We compared the outputs of 5, 10 and 20 seconds time windows against one
that uses a sliding window of the same length and with a step of 1 second.
We consider one-dimension HHH (based on source IP addresses), the flows
which exceed 1%, 5%, 10% of the total bytes measured in a specific
time-window."

For each (window size, threshold) pair the experiment computes exact HHH
sets for the disjoint schedule and for the sliding schedule and reports the
fraction of sliding-side detections the disjoint schedule misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.render import ascii_bars, format_table
from repro.hhh.exact_hhh import ExactHHH, HHHResult
from repro.hierarchy.domain import SourceHierarchy
from repro.metrics.hidden import (
    HiddenHHHReport,
    hidden_hhh_occurrences,
    hidden_hhh_unique,
)
from repro.trace.container import Trace
from repro.windows.disjoint import DisjointWindows
from repro.windows.schedule import Window
from repro.windows.sliding import SlidingWindows


@dataclass(frozen=True)
class HiddenHHHRow:
    """One bar of Figure 2: a (trace, window size, threshold) cell."""

    label: str
    window_size: float
    phi: float
    mode: str
    total: int
    hidden: int

    @property
    def hidden_percent(self) -> float:
        """Percentage of HHHs the disjoint schedule misses."""
        return 100.0 * self.hidden / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "trace": self.label,
            "window_s": self.window_size,
            "phi_%": round(self.phi * 100, 1),
            "mode": self.mode,
            "sliding_total": self.total,
            "hidden": self.hidden,
            "hidden_%": round(self.hidden_percent, 1),
        }


@dataclass
class HiddenHHHResultSet:
    """All rows of a Figure 2 run."""

    rows: list[HiddenHHHRow] = field(default_factory=list)

    def to_table(self) -> str:
        """The Figure 2 numbers as a text table."""
        return format_table([r.to_dict() for r in self.rows])

    def to_bars(self) -> str:
        """The Figure 2 numbers as ASCII bars (one per row)."""
        labels = [
            f"{r.label} W={r.window_size:g}s phi={r.phi * 100:g}%"
            for r in self.rows
        ]
        return ascii_bars(labels, [r.hidden_percent for r in self.rows])

    def max_hidden_percent(self) -> float:
        """The headline number (the paper reports up to 34 %)."""
        return max((r.hidden_percent for r in self.rows), default=0.0)

    def rows_for(
        self, window_size: float | None = None, phi: float | None = None
    ) -> list[HiddenHHHRow]:
        """Filter rows by window size and/or threshold."""
        out = self.rows
        if window_size is not None:
            out = [r for r in out if r.window_size == window_size]
        if phi is not None:
            out = [r for r in out if r.phi == phi]
        return list(out)


class HiddenHHHExperiment:
    """The Figure 2 harness."""

    def __init__(
        self,
        window_sizes: Sequence[float] = (5.0, 10.0, 20.0),
        thresholds: Sequence[float] = (0.01, 0.05, 0.10),
        step: float = 1.0,
        mode: str = "unique",
        hierarchy: SourceHierarchy | None = None,
    ) -> None:
        if mode not in ("unique", "occurrences"):
            raise ValueError(f"unknown accounting mode {mode!r}")
        self.window_sizes = tuple(window_sizes)
        self.thresholds = tuple(thresholds)
        self.step = step
        self.mode = mode
        self.hierarchy = hierarchy or SourceHierarchy()

    def _series(
        self, trace: Trace, windows: list[Window], phi: float
    ) -> list[tuple[Window, HHHResult]]:
        detector = ExactHHH(phi, self.hierarchy)
        out = []
        for window in windows:
            counts = trace.bytes_by_key(window.t0, window.t1)
            out.append((window, detector.detect(counts)))
        return out

    def run(self, trace: Trace, label: str = "trace") -> HiddenHHHResultSet:
        """Run the full (window size x threshold) grid on one trace."""
        result = HiddenHHHResultSet()
        for window_size in self.window_sizes:
            disjoint_windows = list(DisjointWindows(window_size).over_trace(trace))
            sliding_windows = list(
                SlidingWindows(window_size, self.step).over_trace(trace)
            )
            for phi in self.thresholds:
                disjoint = self._series(trace, disjoint_windows, phi)
                sliding = self._series(trace, sliding_windows, phi)
                report = self._account(disjoint, sliding)
                result.rows.append(
                    HiddenHHHRow(
                        label=label,
                        window_size=window_size,
                        phi=phi,
                        mode=self.mode,
                        total=report.total,
                        hidden=report.hidden,
                    )
                )
        return result

    def _account(
        self,
        disjoint: list[tuple[Window, HHHResult]],
        sliding: list[tuple[Window, HHHResult]],
    ) -> HiddenHHHReport:
        if self.mode == "unique":
            return hidden_hhh_unique(disjoint, sliding)
        return hidden_hhh_occurrences(disjoint, sliding)

    def run_days(
        self, traces: Sequence[Trace], labels: Sequence[str] | None = None
    ) -> HiddenHHHResultSet:
        """Run on several traces (the paper's four days), pooling rows."""
        labels = labels or [f"day{i}" for i in range(len(traces))]
        if len(labels) != len(traces):
            raise ValueError("labels and traces must align")
        result = HiddenHHHResultSet()
        for trace, label in zip(traces, labels):
            result.rows.extend(self.run(trace, label).rows)
        return result
