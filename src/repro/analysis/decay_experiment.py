"""The Section 3 comparison: time-decaying vs disjoint-window detection.

The poster commits to "compare [the time-decaying approach] with existing
solutions in terms of performance, resource utilization and result's
accuracy".  This harness does exactly that:

- **reference truth**: exact HHH over a sliding window (size = the disjoint
  window, step = 1 s) — the detections a window-free observer should see;
- **detectors**: the disjoint-window practice (exact per window, RHHH, and
  per-level Space-Saving — all reset at boundaries) against the
  time-decaying HHH detector (exponential decay with ``tau`` equal to the
  window size, queried every step, never reset);
- **accuracy**: occurrence recall against the truth (was each truth
  detection reported at the right time?), precision, and *hidden recall* —
  the share of hidden HHHs (truth detections the disjoint-exact schedule
  misses) each detector recovers;
- **resources**: counters, and for data-plane-mappable detectors the
  pipeline stages / SRAM from :mod:`repro.dataplane`.

Update performance is measured separately in ``benchmarks/`` (wall-clock
packets/second); this module reports per-packet update operation counts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.analysis.render import format_table
from repro.dataplane.mappings import map_ondemand_tdbf, map_rhhh
from repro.decay.laws import ExponentialDecay
from repro.decay.td_hhh import TimeDecayingHHH
from repro.hhh.exact_hhh import ExactHHH
from repro.hierarchy.domain import SourceHierarchy
from repro.net.prefix import Prefix
from repro.sketch.rhhh import RHHH
from repro.trace.container import Trace
from repro.windows.disjoint import DisjointWindows
from repro.windows.driver import window_slices
from repro.windows.schedule import Window
from repro.windows.sliding import SlidingWindows

#: A detection series: time-ordered (window, reported prefixes) pairs.
Series = list[tuple[Window, frozenset[Prefix]]]


@dataclass(frozen=True)
class DetectorScore:
    """Accuracy + resource summary for one detector."""

    name: str
    occurrence_recall: float
    precision: float
    hidden_recall: float
    counters: int
    stages: int | None = None
    sram_kib: float | None = None
    window_reset: bool = False

    def to_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "detector": self.name,
            "recall": round(self.occurrence_recall, 3),
            "precision": round(self.precision, 3),
            "hidden_recall": round(self.hidden_recall, 3),
            "counters": self.counters,
            "stages": self.stages if self.stages is not None else "-",
            "sram_kib": (
                round(self.sram_kib, 1) if self.sram_kib is not None else "-"
            ),
            "window_reset": "yes" if self.window_reset else "no",
        }


@dataclass
class DecayComparisonResult:
    """All detector scores for one run."""

    window_size: float
    phi: float
    num_truth_occurrences: int
    num_hidden_occurrences: int
    scores: list[DetectorScore] = field(default_factory=list)

    def to_table(self) -> str:
        """The Section 3 comparison table."""
        return format_table([s.to_dict() for s in self.scores])

    def score_for(self, name: str) -> DetectorScore:
        """Look a detector's score up by name."""
        for score in self.scores:
            if score.name == name:
                return score
        raise KeyError(f"no detector named {name!r}")


def _covered(
    detections: Series, window: Window, prefix: Prefix
) -> bool:
    """True when ``prefix`` is reported by a series entry overlapping
    ``window``."""
    starts = [w.t0 for w, _ in detections]
    lo = bisect.bisect_left(starts, window.t0 - _max_len(detections))
    for i in range(lo, len(detections)):
        w, prefixes = detections[i]
        if w.t0 >= window.t1:
            break
        if window.overlap(w) > 0 and prefix in prefixes:
            return True
    return False


def _max_len(detections: Series) -> float:
    return max((w.length for w, _ in detections), default=0.0)


def _score_series(
    truth: Series, hidden: set[tuple[int, Prefix]], detected: Series
) -> tuple[float, float, float]:
    """(occurrence recall, precision, hidden recall) of ``detected``."""
    total = covered = 0
    hidden_total = hidden_covered = 0
    for window, prefixes in truth:
        for prefix in prefixes:
            total += 1
            hit = _covered(detected, window, prefix)
            covered += hit
            if (window.index, prefix) in hidden:
                hidden_total += 1
                hidden_covered += hit
    # Precision: detector detections that match some truth occurrence.
    reported = matched = 0
    for window, prefixes in detected:
        for prefix in prefixes:
            reported += 1
            matched += _covered(truth, window, prefix)
    recall = covered / total if total else 1.0
    precision = matched / reported if reported else 1.0
    hidden_recall = hidden_covered / hidden_total if hidden_total else 1.0
    return recall, precision, hidden_recall


class DecayComparisonExperiment:
    """The Section 3 harness."""

    def __init__(
        self,
        window_size: float = 10.0,
        phi: float = 0.05,
        step: float = 1.0,
        counters_per_level: int = 128,
        hierarchy: SourceHierarchy | None = None,
        seed: int = 0,
    ) -> None:
        self.window_size = window_size
        self.phi = phi
        self.step = step
        self.counters_per_level = counters_per_level
        self.hierarchy = hierarchy or SourceHierarchy()
        self.seed = seed

    # -- series builders ---------------------------------------------------

    def _exact_series(self, trace: Trace, windows: list[Window]) -> Series:
        detector = ExactHHH(self.phi, self.hierarchy)
        return [
            (w, detector.detect_window(trace, w.t0, w.t1).prefixes)
            for w in windows
        ]

    def _windowed_rhhh_series(
        self, trace: Trace, sample_levels: bool
    ) -> Series:
        """Disjoint windows, RHHH reset at each boundary.

        Each window is handed to the detector as one columnar batch
        (``update_batch`` replays scalar updates in trace order, so the
        RNG-driven level sampling is unchanged).
        """
        series: Series = []
        for piece in window_slices(trace, self.window_size):
            detector = RHHH(
                self.hierarchy,
                self.counters_per_level,
                seed=self.seed + piece.window.index,
                sample_levels=sample_levels,
            )
            i, j = piece.start, piece.stop
            detector.update_batch(trace.src[i:j], trace.length[i:j])
            result = detector.query_hhh(self.phi * piece.bytes)
            series.append((piece.window, result.prefixes))
        return series

    def _td_series(
        self, trace: Trace, sample_levels: bool = False
    ) -> tuple[Series, TimeDecayingHHH]:
        """The time-decaying detector, queried every ``step`` seconds.

        Returns the detection series plus the detector itself (for
        resource accounting)."""
        detector = TimeDecayingHHH(
            law=ExponentialDecay(tau=self.window_size),
            hierarchy=self.hierarchy,
            counters_per_level=self.counters_per_level,
            sample_levels=sample_levels,
            seed=self.seed,
        )
        series: Series = []
        ts, src, length = trace.ts, trace.src, trace.length
        # Query instants, accumulated exactly like the seed's per-packet
        # loop (a query fires once some packet reaches it).
        query_times: list[float] = []
        next_query = trace.start_time + self.window_size
        while trace.end_time >= next_query:
            query_times.append(next_query)
            next_query += self.step
        # Packets strictly before a query instant are applied before it;
        # batches between instants go through the unified batch path.
        cuts = np.searchsorted(ts, np.asarray(query_times), side="left")
        prev = 0
        for index, (when, cut) in enumerate(zip(query_times, cuts)):
            cut = int(cut)
            if cut > prev:
                detector.update_batch(
                    src[prev:cut], length[prev:cut], ts[prev:cut]
                )
                prev = cut
            result = detector.query(self.phi, when)
            series.append(
                (Window(when - self.window_size, when, index), result.prefixes)
            )
        if prev < len(trace):
            detector.update_batch(src[prev:], length[prev:], ts[prev:])
        return series, detector

    # -- main ---------------------------------------------------------------

    def run(self, trace: Trace) -> DecayComparisonResult:
        """Run the full comparison on one trace."""
        sliding = list(
            SlidingWindows(self.window_size, self.step).over_trace(trace)
        )
        disjoint = list(DisjointWindows(self.window_size).over_trace(trace))
        truth = self._exact_series(trace, sliding)
        disjoint_exact = self._exact_series(trace, disjoint)

        # Hidden occurrences: truth detections the disjoint-exact schedule
        # does not report in any overlapping window.
        hidden: set[tuple[int, Prefix]] = set()
        for window, prefixes in truth:
            for prefix in prefixes:
                if not _covered(disjoint_exact, window, prefix):
                    hidden.add((window.index, prefix))

        num_truth = sum(len(p) for _, p in truth)
        result = DecayComparisonResult(
            window_size=self.window_size,
            phi=self.phi,
            num_truth_occurrences=num_truth,
            num_hidden_occurrences=len(hidden),
        )

        levels = self.hierarchy.num_levels

        def add(name: str, series: Series, counters: int,
                stages: int | None = None, sram_kib: float | None = None,
                reset: bool = False) -> None:
            recall, precision, hidden_recall = _score_series(
                truth, hidden, series
            )
            result.scores.append(
                DetectorScore(
                    name, recall, precision, hidden_recall,
                    counters, stages, sram_kib, reset,
                )
            )

        add(
            "disjoint-exact", disjoint_exact,
            counters=0, reset=True,
        )

        rhhh_profile = map_rhhh(self.counters_per_level, levels).profile()
        add(
            "disjoint-rhhh",
            self._windowed_rhhh_series(trace, sample_levels=True),
            counters=self.counters_per_level * levels,
            stages=rhhh_profile.stages,
            sram_kib=rhhh_profile.sram_kib,
            reset=True,
        )
        add(
            "disjoint-perlevel-ss",
            self._windowed_rhhh_series(trace, sample_levels=False),
            counters=self.counters_per_level * levels,
            stages=rhhh_profile.stages,
            sram_kib=rhhh_profile.sram_kib,
            reset=True,
        )

        td_series, td_detector = self._td_series(trace)
        td_profile = map_ondemand_tdbf(
            cells=self.counters_per_level * levels, hashes=levels
        ).profile()
        add(
            "td-hhh",
            td_series,
            counters=td_detector.num_counters,
            stages=td_profile.stages,
            sram_kib=td_profile.sram_kib,
            reset=False,
        )
        return result
