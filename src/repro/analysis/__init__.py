"""Experiment harnesses reproducing the paper's evaluation.

- :class:`HiddenHHHExperiment` — Figure 2: percentage of hidden HHHs for
  window sizes {5, 10, 20} s and thresholds {1 %, 5 %, 10 %};
- :class:`WindowSensitivityExperiment` — Figure 3: Jaccard-similarity CDFs
  of a 10 s baseline window vs windows 10–100 ms shorter;
- :class:`DecayComparisonExperiment` — the comparison Section 3 commits to:
  the time-decaying detector vs disjoint-window solutions on accuracy,
  resource utilisation and update cost.

Each experiment consumes a :class:`repro.trace.Trace`, returns a result
object with typed rows, and renders the same table/series the paper plots
via ``to_table()``.

These classes are the computation harnesses; the uniform, registry-driven
API over them (declared params, string-addressable traces, JSON result
artifacts) lives in :mod:`repro.experiments` and is what the CLI and CI
drive.
"""

from repro.analysis.hidden_experiment import (
    HiddenHHHExperiment,
    HiddenHHHResultSet,
    HiddenHHHRow,
)
from repro.analysis.sensitivity_experiment import (
    SensitivityResult,
    SensitivityRow,
    WindowSensitivityExperiment,
)
from repro.analysis.decay_experiment import (
    DecayComparisonExperiment,
    DecayComparisonResult,
    DetectorScore,
)
from repro.analysis.render import format_table, ascii_cdf, ascii_bars

__all__ = [
    "HiddenHHHExperiment",
    "HiddenHHHResultSet",
    "HiddenHHHRow",
    "WindowSensitivityExperiment",
    "SensitivityResult",
    "SensitivityRow",
    "DecayComparisonExperiment",
    "DecayComparisonResult",
    "DetectorScore",
    "format_table",
    "ascii_cdf",
    "ascii_bars",
]
