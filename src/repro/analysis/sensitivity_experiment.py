"""Figure 3: sensitivity of the reported HHH set to micro window shrinkage.

"Using as a baseline a fixed time window of 10 seconds, we compare the
detected HHHs against the one identified in other time windows which are
10-100 milliseconds shorter from the baseline window.  All the windows have
the same starting point [...] The results produced by the baseline window
have been compared against the one obtained with different windows sizes
using the Jaccard similarity coefficient."

For each delta the experiment produces the per-window Jaccard similarities
and their CDF; the paper's reading — "window sizes of 100 and 40 ms smaller
[...] differ by 25% and 11% respectively, for at least 70% of the cases" —
corresponds to ``fraction_at_most(1 - dissimilarity)`` being >= 0.7 at the
quoted dissimilarities... i.e. the 70th-percentile similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.render import ascii_cdf, format_table
from repro.hhh.exact_hhh import ExactHHH
from repro.hierarchy.domain import SourceHierarchy
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.sets import jaccard
from repro.trace.container import Trace
from repro.windows.shrunk import NestedShrunkWindows

#: The paper's deltas: 10..100 ms in 10 ms steps.
DEFAULT_DELTAS = tuple(round(0.01 * k, 3) for k in range(1, 11))


@dataclass(frozen=True)
class SensitivityRow:
    """Summary for one shrink delta."""

    delta_s: float
    num_windows: int
    mean_similarity: float
    p70_similarity: float
    fraction_not_identical: float

    def to_dict(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "delta_ms": round(self.delta_s * 1000),
            "windows": self.num_windows,
            "mean_jaccard": round(self.mean_similarity, 3),
            "p70_jaccard": round(self.p70_similarity, 3),
            "changed_windows_%": round(100 * self.fraction_not_identical, 1),
        }


@dataclass
class SensitivityResult:
    """Per-delta similarity samples plus their summaries."""

    phi: float
    baseline_size: float
    samples: dict[float, list[float]] = field(default_factory=dict)

    def cdf(self, delta: float) -> EmpiricalCDF:
        """The Jaccard-similarity CDF for one delta."""
        return EmpiricalCDF(self.samples[delta])

    def rows(self) -> list[SensitivityRow]:
        """Per-delta summary rows (sorted by delta)."""
        out = []
        for delta in sorted(self.samples):
            values = self.samples[delta]
            cdf = EmpiricalCDF(values)
            out.append(
                SensitivityRow(
                    delta_s=delta,
                    num_windows=len(values),
                    mean_similarity=cdf.mean,
                    p70_similarity=cdf.quantile(0.70),
                    fraction_not_identical=cdf.fraction_at_most(
                        1.0 - 1e-12
                    ),
                )
            )
        return out

    def to_table(self) -> str:
        """The Figure 3 summary as a text table."""
        return format_table([r.to_dict() for r in self.rows()])

    def to_cdf_plot(self, delta: float) -> str:
        """ASCII rendering of one delta's CDF curve."""
        return ascii_cdf(
            self.cdf(delta).points(),
            title=(
                f"Jaccard similarity CDF, baseline {self.baseline_size:g}s, "
                f"delta {delta * 1000:g}ms, phi={self.phi:.0%}"
            ),
        )


class WindowSensitivityExperiment:
    """The Figure 3 harness."""

    def __init__(
        self,
        baseline_size: float = 10.0,
        deltas: Sequence[float] = DEFAULT_DELTAS,
        phi: float = 0.05,
        hierarchy: SourceHierarchy | None = None,
    ) -> None:
        if baseline_size <= 0:
            raise ValueError("baseline_size must be positive")
        for delta in deltas:
            if not 0 < delta < baseline_size:
                raise ValueError(f"delta {delta} out of (0, {baseline_size})")
        self.baseline_size = baseline_size
        self.deltas = tuple(deltas)
        self.phi = phi
        self.hierarchy = hierarchy or SourceHierarchy()

    def run(self, trace: Trace) -> SensitivityResult:
        """Compute per-window Jaccard similarities for every delta."""
        detector = ExactHHH(self.phi, self.hierarchy)
        result = SensitivityResult(self.phi, self.baseline_size)
        # Baseline detections, computed once per baseline window.
        baseline_sets = {}
        schedule = NestedShrunkWindows(self.baseline_size, self.deltas[0])
        pairs = list(schedule.over_trace(trace))
        for base, _ in pairs:
            counts = trace.bytes_by_key(base.t0, base.t1)
            baseline_sets[base.index] = detector.detect(counts).prefixes
        for delta in self.deltas:
            samples: list[float] = []
            for base, _ in pairs:
                shrunk_counts = trace.bytes_by_key(base.t0, base.t1 - delta)
                shrunk_set = detector.detect(shrunk_counts).prefixes
                samples.append(jaccard(baseline_sets[base.index], shrunk_set))
            result.samples[delta] = samples
        return result
