"""Plain-text rendering of experiment results.

No plotting dependency is available offline, so experiments render their
tables and curves as aligned text / ASCII art; the same row dictionaries
are trivially exportable to CSV by callers.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Align a list of uniform dict rows into a text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    cells = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(c), max(len(r[i]) for r in cells))
        for i, c in enumerate(columns)
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def ascii_cdf(
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 12,
    title: str = "",
) -> str:
    """Render (value, cumulative_fraction) points as an ASCII curve."""
    if not points:
        return "(empty CDF)"
    xs = [p[0] for p in points]
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - x_min) / span * (width - 1)))
        row = min(height - 1, int((1.0 - y) * (height - 1)))
        grid[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        lines.append(f"{frac:4.2f} |" + "".join(row))
    lines.append("     +" + "-" * width)
    lines.append(f"      {x_min:<10.3f}{'':^{max(0, width - 20)}}{x_max:>10.3f}")
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "%",
) -> str:
    """Horizontal bar chart (used for the Figure 2 style summary)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(no bars)"
    peak = max(values) or 1.0
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)
