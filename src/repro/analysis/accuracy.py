"""Exact-ground-truth accuracy scoring for enumerable detectors.

The shared harness behind two consumers:

- the ``detector-accuracy`` experiment — deterministic
  precision/recall/F1 rows for any enumerable registry detector on any
  string-addressable trace (the accuracy face of a sweep grid's
  ``detector`` axis);
- the registry-wide conformance suite
  (``tests/core/test_accuracy_conformance.py``) — every enumerable
  detector is held to the :class:`repro.core.AccuracyFloor` declared next
  to its registry entry.

Ground truth is computed exactly from the columnar trace under the truth
mode the detector's registry entry declares: whole-trace byte counts
(``total``), exponentially decayed byte counts at end of trace
(``decayed``, ``horizon`` = tau, matching the decayed factories'
defaults), or byte counts over the trailing ``horizon`` seconds
(``window``, matching the sliding-window factories' defaults).  The
detector then answers the question it was built for, so the scores
measure approximation error — not a mismatch between decay frames.
"""

from __future__ import annotations

import numpy as np

from repro.core import DetectorSpec
from repro.core.registry import TRUTH_MODES
from repro.metrics.classification import ClassificationReport, classify_sets
from repro.trace.container import Trace


def exact_truth(
    trace: Trace, mode: str = "total", horizon: float = 10.0,
    key: str = "src",
) -> dict[int, float]:
    """Per-key exact mass at end of trace under the declared truth mode."""
    if mode not in TRUTH_MODES:
        raise ValueError(
            f"unknown truth mode {mode!r}; known: {', '.join(TRUTH_MODES)}"
        )
    col = trace.key_column(key)
    if not len(trace):
        return {}
    if mode == "window":
        i = int(np.searchsorted(trace.ts, trace.end_time - horizon, "left"))
        return trace.bytes_by_key_index(i, len(trace), key)
    weights = trace.length.astype(np.float64)
    if mode == "decayed":
        weights = weights * np.exp((trace.ts - trace.end_time) / horizon)
    keys, inverse = np.unique(col, return_inverse=True)
    sums = np.bincount(inverse, weights=weights)
    return {int(k): float(s) for k, s in zip(keys, sums)}


def accuracy_row(
    spec: DetectorSpec,
    trace: Trace,
    phi: float,
    key: str = "src",
    truth_mode: str | None = None,
    horizon: float | None = None,
) -> dict[str, object]:
    """Score one fresh default-constructed detector against exact truth.

    ``truth_mode``/``horizon`` default to the registry entry's declared
    :class:`~repro.core.AccuracyFloor` (or ``total`` when none is
    declared).  The threshold is ``phi`` times the total exact mass under
    that truth, applied identically to the truth set and the detector's
    ``query`` — so the row is a like-for-like set comparison.
    """
    declared = spec.accuracy
    mode = truth_mode or (declared.truth if declared else "total")
    tau = horizon if horizon is not None else (
        declared.horizon if declared else 10.0
    )
    truth = exact_truth(trace, mode, tau, key)
    total_mass = float(sum(truth.values()))
    threshold = phi * total_mass
    truth_set = {k for k, v in truth.items() if v >= threshold}

    detector = spec.factory()
    col = trace.key_column(key)
    detector.update_batch(
        col, trace.length, trace.ts if spec.timestamped else None
    )
    if spec.timestamped:
        report = detector.query(threshold, float(trace.end_time))
    else:
        report = detector.query(threshold)
    scored: ClassificationReport = classify_sets(truth_set, set(report))
    return {
        "detector": spec.name,
        "truth": mode,
        "phi": phi,
        "packets": len(trace),
        "truth_size": len(truth_set),
        "report_size": len(report),
        "tp": scored.true_positives,
        "fp": scored.false_positives,
        "fn": scored.false_negatives,
        "precision": round(scored.precision, 4),
        "recall": round(scored.recall, 4),
        "f1": round(scored.f1, 4),
    }
