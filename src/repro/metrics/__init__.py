"""Comparison metrics for detection results.

- :mod:`repro.metrics.sets` — Jaccard similarity (the paper's Figure 3
  metric) and set differences;
- :mod:`repro.metrics.hidden` — hidden-HHH accounting (the paper's
  Figure 2 metric);
- :mod:`repro.metrics.classification` — precision/recall/F1 of a detector
  against ground truth;
- :mod:`repro.metrics.cdf` — empirical CDFs for reporting distributions
  across windows.
"""

from repro.metrics.sets import jaccard, set_difference_report
from repro.metrics.hidden import (
    HiddenHHHReport,
    hidden_hhh_occurrences,
    hidden_hhh_unique,
)
from repro.metrics.classification import ClassificationReport, classify_sets
from repro.metrics.cdf import EmpiricalCDF

__all__ = [
    "jaccard",
    "set_difference_report",
    "HiddenHHHReport",
    "hidden_hhh_unique",
    "hidden_hhh_occurrences",
    "ClassificationReport",
    "classify_sets",
    "EmpiricalCDF",
]
