"""Hidden-HHH accounting — the paper's Figure 2 metric.

A *hidden* HHH is one the sliding-window analysis reveals but the disjoint
schedule misses.  The poster reports "up to 34% of the total number of the
HHH might not be detected", where the total is what the sliding analysis
finds.  Two accounting conventions are provided (and compared in the
ablation bench):

- **unique**: identity is the prefix itself; hidden fraction is
  ``|prefixes seen by sliding \\ prefixes seen by disjoint| / |sliding|``
  over the whole trace;
- **occurrences**: identity is a (sliding window, prefix) detection; it
  counts as covered when the prefix is also reported by *some* disjoint
  window overlapping that sliding window.  This credits the disjoint
  schedule for detections at roughly the right time, not just anywhere in
  the trace, and is the stricter reading of "not detected".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hhh.exact_hhh import HHHResult
from repro.net.prefix import Prefix
from repro.windows.schedule import Window


@dataclass(frozen=True)
class HiddenHHHReport:
    """Outcome of hidden-HHH accounting.

    ``total`` counts sliding-side detections (unique prefixes or
    occurrences depending on the mode); ``hidden`` the subset the disjoint
    schedule misses.
    """

    total: int
    hidden: int
    mode: str
    hidden_prefixes: frozenset[Prefix] = frozenset()

    @property
    def hidden_fraction(self) -> float:
        """hidden / total (0 when nothing was detected at all)."""
        return self.hidden / self.total if self.total else 0.0

    @property
    def hidden_percent(self) -> float:
        """Hidden fraction in percent, as plotted in Figure 2."""
        return 100.0 * self.hidden_fraction


def hidden_hhh_unique(
    disjoint: Sequence[tuple[Window, HHHResult]],
    sliding: Sequence[tuple[Window, HHHResult]],
) -> HiddenHHHReport:
    """Unique-prefix accounting of hidden HHHs."""
    seen_disjoint: set[Prefix] = set()
    for _, result in disjoint:
        seen_disjoint |= result.prefixes
    seen_sliding: set[Prefix] = set()
    for _, result in sliding:
        seen_sliding |= result.prefixes
    hidden = seen_sliding - seen_disjoint
    return HiddenHHHReport(
        total=len(seen_sliding),
        hidden=len(hidden),
        mode="unique",
        hidden_prefixes=frozenset(hidden),
    )


def hidden_hhh_occurrences(
    disjoint: Sequence[tuple[Window, HHHResult]],
    sliding: Sequence[tuple[Window, HHHResult]],
) -> HiddenHHHReport:
    """Occurrence accounting: per sliding detection, is the prefix reported
    by any overlapping disjoint window?"""
    total = 0
    hidden = 0
    hidden_prefixes: set[Prefix] = set()
    disjoint_list = [(w, r.prefixes) for w, r in disjoint]
    for window, result in sliding:
        if not result.items:
            continue
        overlapping = [
            prefixes for w, prefixes in disjoint_list if window.overlap(w) > 0
        ]
        for item in result.items:
            total += 1
            if not any(item.prefix in prefixes for prefixes in overlapping):
                hidden += 1
                hidden_prefixes.add(item.prefix)
    return HiddenHHHReport(
        total=total,
        hidden=hidden,
        mode="occurrences",
        hidden_prefixes=frozenset(hidden_prefixes),
    )
