"""Empirical cumulative distribution functions.

Figure 3 of the paper is a CDF of Jaccard similarities across windows;
:class:`EmpiricalCDF` computes the quantities the figure reports ("window
sizes of 100 and 40 ms smaller than the baseline window differ by 25% and
11% respectively, for at least 70% of the cases").
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


class EmpiricalCDF:
    """The empirical CDF of a sample."""

    def __init__(self, samples: Iterable[float]) -> None:
        values = np.asarray(sorted(samples), dtype=np.float64)
        if len(values) == 0:
            raise ValueError("cannot build a CDF from an empty sample")
        self._values = values

    def __len__(self) -> int:
        return len(self._values)

    def fraction_at_most(self, x: float) -> float:
        """P(X <= x)."""
        return float(np.searchsorted(self._values, x, side="right")) / len(self)

    def fraction_at_least(self, x: float) -> float:
        """P(X >= x)."""
        below = float(np.searchsorted(self._values, x, side="left"))
        return 1.0 - below / len(self)

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return float(np.quantile(self._values, q))

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self._values.mean())

    @property
    def min(self) -> float:
        """Smallest sample."""
        return float(self._values[0])

    @property
    def max(self) -> float:
        """Largest sample."""
        return float(self._values[-1])

    def points(self) -> list[tuple[float, float]]:
        """(value, cumulative_fraction) pairs for plotting."""
        n = len(self)
        return [
            (float(v), (i + 1) / n) for i, v in enumerate(self._values)
        ]

    def series(self, grid: Sequence[float]) -> list[float]:
        """CDF values sampled on an explicit grid."""
        return [self.fraction_at_most(x) for x in grid]
