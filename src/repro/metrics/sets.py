"""Set similarity metrics.

The paper's Figure 3: "The results produced by the baseline window have
been compared against the one obtained with different windows sizes using
the Jaccard similarity coefficient."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Hashable, TypeVar

T = TypeVar("T", bound=Hashable)


def jaccard(a: AbstractSet[T], b: AbstractSet[T]) -> float:
    """Jaccard similarity |a & b| / |a | b|.

    Two empty sets are defined as identical (similarity 1.0): two windows
    that both report "no HHHs" agree perfectly.
    """
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union


@dataclass(frozen=True)
class SetDifferenceReport:
    """Breakdown of how set ``observed`` differs from set ``reference``."""

    common: int
    only_reference: int
    only_observed: int

    @property
    def jaccard(self) -> float:
        """Jaccard similarity implied by the breakdown."""
        union = self.common + self.only_reference + self.only_observed
        return self.common / union if union else 1.0


def set_difference_report(
    reference: AbstractSet[T], observed: AbstractSet[T]
) -> SetDifferenceReport:
    """Count common and one-sided elements between two sets."""
    common = len(reference & observed)
    return SetDifferenceReport(
        common=common,
        only_reference=len(reference) - common,
        only_observed=len(observed) - common,
    )
