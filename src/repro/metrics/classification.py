"""Precision / recall / F1 of a detector against ground truth.

Used by the Section 3 comparison to score approximate detectors (sketches,
the time-decaying detector) against exact HHH sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Hashable, TypeVar

T = TypeVar("T", bound=Hashable)


@dataclass(frozen=True)
class ClassificationReport:
    """Confusion counts and the derived rates."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was reported."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to find."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def merged(self, other: "ClassificationReport") -> "ClassificationReport":
        """Pool confusion counts with another report (micro-averaging)."""
        return ClassificationReport(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
        )


def classify_sets(
    truth: AbstractSet[T], reported: AbstractSet[T]
) -> ClassificationReport:
    """Score a reported set against a ground-truth set."""
    tp = len(truth & reported)
    return ClassificationReport(
        true_positives=tp,
        false_positives=len(reported) - tp,
        false_negatives=len(truth) - tp,
    )
