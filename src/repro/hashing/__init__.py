"""Deterministic, seedable hash functions for sketches.

Python's builtin ``hash`` is salted per process, which would make every
sketch non-reproducible across runs.  All sketches in :mod:`repro.sketch`
and :mod:`repro.decay` therefore draw their hash functions from the families
defined here: 64-bit mixers (splitmix64 / xorshift variants), multiply-shift
universal hashing, and 4-way tabulation hashing for when stronger
independence guarantees matter.
"""

from repro.hashing.mixers import splitmix64, xorshift64star, fibonacci_hash
from repro.hashing.families import (
    HashFamily,
    MultiplyShiftFamily,
    MixerFamily,
    pairwise_indep_family,
)
from repro.hashing.tabulation import TabulationHash, TabulationFamily

__all__ = [
    "splitmix64",
    "xorshift64star",
    "fibonacci_hash",
    "HashFamily",
    "MultiplyShiftFamily",
    "MixerFamily",
    "pairwise_indep_family",
    "TabulationHash",
    "TabulationFamily",
]
