"""64-bit integer mixing functions.

These are the standard public-domain finalisers (splitmix64, xorshift64*)
restricted to 64-bit arithmetic with explicit masking.  They are used both
directly (as fast stateless hashes of integer keys) and as the seed expanders
for the hash families in :mod:`repro.hashing.families`.

:func:`splitmix64_array` is the numpy counterpart of :func:`splitmix64` for
the vectorized batch-update paths; it is bit-exact with the scalar mixer
(uint64 arithmetic wraps modulo 2^64 exactly like the explicit masking).
"""

from __future__ import annotations

import numpy as np

_MASK64 = (1 << 64) - 1

# 2^64 / golden ratio, the classic Fibonacci hashing multiplier.
_FIB_MULT = 0x9E3779B97F4A7C15


def splitmix64(value: int) -> int:
    """The splitmix64 finaliser: a strong 64-bit bijective mixer.

    >>> splitmix64(0) != 0
    True
    """
    z = (value + _FIB_MULT) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


# Large chunks are mixed in blocks of this many elements so every
# temporary stays small enough for the allocator to reuse hot heap memory
# (whole-array temporaries go through mmap and fault in cold pages).
_BLOCK = 16384


def _splitmix64_block(values: np.ndarray) -> np.ndarray:
    z = values + np.uint64(_FIB_MULT)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a uint64 array (bit-exact)."""
    values = np.asarray(values, dtype=np.uint64)
    n = values.shape[0]
    if n <= _BLOCK:
        return _splitmix64_block(values)
    out = np.empty(n, dtype=np.uint64)
    for i in range(0, n, _BLOCK):
        out[i:i + _BLOCK] = _splitmix64_block(values[i:i + _BLOCK])
    return out


def xorshift64star(value: int) -> int:
    """xorshift64* mixer; weaker than splitmix64 but cheaper.

    Maps 0 to 0 (the xorshift core fixes 0), so callers hashing possibly-zero
    keys should offset them first.
    """
    x = value & _MASK64
    x ^= x >> 12
    x ^= (x << 25) & _MASK64
    x ^= x >> 27
    return (x * 0x2545F4914F6CDD1D) & _MASK64


def fibonacci_hash(value: int, bits: int) -> int:
    """Fibonacci (golden-ratio) hashing of ``value`` into ``bits`` bits."""
    if not 0 < bits <= 64:
        raise ValueError(f"bits must be in 1..64, got {bits}")
    return ((value * _FIB_MULT) & _MASK64) >> (64 - bits)
