"""Simple tabulation hashing.

Tabulation hashing splits a 32-bit key into four bytes and XORs together four
random 64-bit table entries, one per byte.  It is 3-independent (and much
stronger in practice), making it a good fit for the Bloom-filter variants
where clustering under weak hashing would distort false-positive behaviour.
"""

from __future__ import annotations

import random

_MASK64 = (1 << 64) - 1


class TabulationHash:
    """One tabulation hash function over 32-bit keys.

    ``tables`` is a 4x256 matrix of random 64-bit entries, generated from the
    seed at construction.
    """

    __slots__ = ("tables",)

    def __init__(self, seed: int = 0) -> None:
        rng = random.Random(seed)
        self.tables = [
            [rng.getrandbits(64) for _ in range(256)] for _ in range(4)
        ]

    def __call__(self, key: int) -> int:
        t = self.tables
        return (
            t[0][key & 0xFF]
            ^ t[1][(key >> 8) & 0xFF]
            ^ t[2][(key >> 16) & 0xFF]
            ^ t[3][(key >> 24) & 0xFF]
        )

    def bounded(self, key: int, range_size: int) -> int:
        """Hash ``key`` into ``[0, range_size)``."""
        return self(key) % range_size


class TabulationFamily:
    """Family view over tabulation hashing (same protocol as the others)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._cache: dict[int, TabulationHash] = {}

    def _hash(self, index: int) -> TabulationHash:
        if index not in self._cache:
            self._cache[index] = TabulationHash(self.seed * 1009 + index)
        return self._cache[index]

    def function(self, index: int, range_size: int):
        """Tabulation function into ``[0, range_size)``."""
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        th = self._hash(index)

        def h(key: int, _th: TabulationHash = th, _m: int = range_size) -> int:
            return _th(key) % _m

        return h

    def sign_function(self, index: int):
        """Tabulation-based +/-1 function."""
        th = self._hash(index ^ 0x0F0F)

        def s(key: int, _th: TabulationHash = th) -> int:
            return 1 if _th(key) & 1 else -1

        return s
