"""Seeded hash families.

A *hash family* hands out independent hash functions ``h_i: int -> [0, m)``
from a single seed.  Sketches ask for ``rows`` functions at construction time
and keep them for their lifetime, so the family objects are tiny and the
returned callables carry plain integers only.

Each family also hands out *vectorized* twins (``function_array`` /
``sign_array``) mapping a uint64 numpy array of keys to an array of slots or
signs in one shot.  The vectorized functions are bit-exact with their scalar
counterparts — the batch update paths in :mod:`repro.core` rely on that to
keep ``update_batch`` equivalent to repeated scalar ``update``.

The returned callables are module-level classes rather than closures so
that every detector holding them is *picklable* — the sharded execution
engine (:mod:`repro.engine`) ships detector shards across a process pool,
which requires the whole detector state (hash functions included) to
survive a pickle round-trip bit-exactly.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.hashing.mixers import splitmix64, splitmix64_array

_MASK64 = (1 << 64) - 1

# A Mersenne prime; multiply-shift style universal hashing mod p.
_PRIME = (1 << 61) - 1

HashFunc = Callable[[int], int]
ArrayHashFunc = Callable[[np.ndarray], np.ndarray]

# Large chunks are hashed in blocks of this many elements: the mod-p
# arithmetic spawns ~30 same-sized temporaries, and keeping each one small
# lets the allocator reuse hot heap memory instead of faulting in cold
# mmap pages for every intermediate (a >3x win on 100k+ element chunks).
_BLOCK = 16384


def _blocked_affine(keys: np.ndarray, a: int, b: int) -> np.ndarray:
    """:func:`_affine_mod_p` evaluated block-wise (bit-identical)."""
    keys = np.asarray(keys, dtype=np.uint64)
    n = keys.shape[0]
    if n <= _BLOCK:
        return _affine_mod_p(keys, a, b)
    out = np.empty(n, dtype=np.uint64)
    for i in range(0, n, _BLOCK):
        out[i:i + _BLOCK] = _affine_mod_p(keys[i:i + _BLOCK], a, b)
    return out


def _fold_mod_p(x: np.ndarray) -> np.ndarray:
    """One folding step of reduction mod ``p = 2^61 - 1``.

    Since ``2^61 ≡ 1 (mod p)``, ``x = q*2^61 + r ≡ q + r``; for ``x < 2^64``
    the result is below ``2^61 + 8``.
    """
    return (x >> np.uint64(61)) + (x & np.uint64(_PRIME))


def _shift32_mod_p(x: np.ndarray) -> np.ndarray:
    """``(x << 32) mod p`` for ``x < 2^64`` without overflowing uint64.

    Split ``x = xh*2^29 + xl``; then ``x << 32 = xh*2^61 + xl*2^32 ≡
    xh + xl*2^32 (mod p)``, and both addends fit comfortably in uint64.
    """
    return _fold_mod_p(
        (x >> np.uint64(29)) + ((x & np.uint64((1 << 29) - 1)) << np.uint64(32))
    )


def _affine_mod_p(keys: np.ndarray, a: int, b: int) -> np.ndarray:
    """Exact vectorized ``(a*key + b) mod p`` with ``p = 2^61 - 1``.

    ``a, b < p`` but ``a*key`` spans up to 2^125, so the product is built
    from 32-bit limbs, each partial product reduced while it still fits in
    uint64 (``2^64 ≡ 8`` and ``2^32`` handled by :func:`_shift32_mod_p`).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    # a < p < 2^61, so a_hi < 2^29 and the folded-in 2^64 ≡ 8 factor can be
    # pre-multiplied into the scalar limb without overflow.
    a_hi8 = np.uint64((a >> 32) << 3)
    a_hi, a_lo = np.uint64(a >> 32), np.uint64(a & 0xFFFFFFFF)
    k_hi = keys >> np.uint64(32)
    k_lo = keys & np.uint64(0xFFFFFFFF)
    # The two cross terms share one <<32: a_hi*k_lo < 2^61 and the folded
    # a_lo*k_hi is < 2^61 + 8, so their sum stays well under 2^64.
    mid = a_hi * k_lo + _fold_mod_p(a_lo * k_hi)
    total = (
        _fold_mod_p(a_hi8 * k_hi)
        + _shift32_mod_p(mid)
        + _fold_mod_p(a_lo * k_lo)
        + np.uint64(b)
    )
    # Each addend is < 2^61 + 8, so one fold lands below 2*p and a single
    # conditional subtract canonicalizes.
    total = _fold_mod_p(total)
    return np.where(total >= np.uint64(_PRIME), total - np.uint64(_PRIME), total)


class _ParamHashBase:
    """Shared identity for the parameterised hash callables.

    Two functions are equal iff they are the same class with the same
    parameters — what merge validation needs to tell "same family and
    seed" apart from "same geometry, different hashes".
    """

    __slots__ = ()

    def _state(self) -> tuple:
        return tuple(int(getattr(self, s)) for s in self.__slots__)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and (
            other._state() == self._state()  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._state()))


class _AffineSlot(_ParamHashBase):
    """Scalar ``((a*key + b) mod p) mod m`` (picklable closure stand-in)."""

    __slots__ = ("a", "b", "m")

    def __init__(self, a: int, b: int, m: int) -> None:
        self.a, self.b, self.m = a, b, m

    def __call__(self, key: int) -> int:
        return ((self.a * (key & _MASK64) + self.b) % _PRIME) % self.m


class _AffineSign(_ParamHashBase):
    """Scalar pairwise-independent +/-1 function (picklable)."""

    __slots__ = ("a", "b")

    def __init__(self, a: int, b: int) -> None:
        self.a, self.b = a, b

    def __call__(self, key: int) -> int:
        return 1 if ((self.a * (key & _MASK64) + self.b) % _PRIME) & 1 else -1


class _AffineSlotArray(_ParamHashBase):
    """Vectorized twin of :class:`_AffineSlot` (bit-exact, picklable)."""

    __slots__ = ("a", "b", "m")

    def __init__(self, a: int, b: int, m: int) -> None:
        self.a, self.b = a, b
        self.m = np.uint64(m)

    def __getstate__(self):
        return (self.a, self.b, int(self.m))

    def __setstate__(self, state) -> None:
        self.a, self.b, m = state
        self.m = np.uint64(m)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        h = _blocked_affine(keys, self.a, self.b)
        m = int(self.m)
        if m & (m - 1) == 0:
            # Power-of-two range: identical result, mask beats division.
            h &= np.uint64(m - 1)
            return h
        h %= self.m
        return h


class _AffineSignArray(_ParamHashBase):
    """Vectorized twin of :class:`_AffineSign` (bit-exact, picklable)."""

    __slots__ = ("a", "b")

    def __init__(self, a: int, b: int) -> None:
        self.a, self.b = a, b

    def __getstate__(self):
        return (self.a, self.b)

    def __setstate__(self, state) -> None:
        self.a, self.b = state

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        odd = _blocked_affine(keys, self.a, self.b) & np.uint64(1)
        return np.where(odd.astype(bool), 1, -1).astype(np.int64)


class _MixerSlot(_ParamHashBase):
    """Scalar ``splitmix64(key ^ salt) % m`` (picklable)."""

    __slots__ = ("salt", "m")

    def __init__(self, salt: int, m: int) -> None:
        self.salt, self.m = salt, m

    def __call__(self, key: int) -> int:
        return splitmix64(key ^ self.salt) % self.m


class _MixerSign(_ParamHashBase):
    """Scalar mixer-based +/-1 function (picklable)."""

    __slots__ = ("salt",)

    def __init__(self, salt: int) -> None:
        self.salt = salt

    def __call__(self, key: int) -> int:
        return 1 if splitmix64(key ^ self.salt) & 1 else -1


class _MixerSlotArray(_ParamHashBase):
    """Vectorized twin of :class:`_MixerSlot` (bit-exact, picklable)."""

    __slots__ = ("salt", "m")

    def __init__(self, salt: int, m: int) -> None:
        self.salt = np.uint64(salt)
        self.m = np.uint64(m)

    def __getstate__(self):
        return (int(self.salt), int(self.m))

    def __setstate__(self, state) -> None:
        salt, m = state
        self.salt = np.uint64(salt)
        self.m = np.uint64(m)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        mixed = splitmix64_array(np.asarray(keys, dtype=np.uint64) ^ self.salt)
        return mixed % self.m


class _MixerSignArray(_ParamHashBase):
    """Vectorized twin of :class:`_MixerSign` (bit-exact, picklable)."""

    __slots__ = ("salt",)

    def __init__(self, salt: int) -> None:
        self.salt = np.uint64(salt)

    def __getstate__(self):
        return int(self.salt)

    def __setstate__(self, state) -> None:
        self.salt = np.uint64(state)

    def __call__(self, keys: np.ndarray) -> np.ndarray:
        mixed = splitmix64_array(np.asarray(keys, dtype=np.uint64) ^ self.salt)
        return np.where((mixed & np.uint64(1)).astype(bool), 1, -1).astype(
            np.int64
        )


class HashFamily(Protocol):
    """Protocol for seeded hash families used by sketches."""

    def function(self, index: int, range_size: int) -> HashFunc:
        """The ``index``-th function of the family, mapping into
        ``[0, range_size)``."""
        ...

    def sign_function(self, index: int) -> HashFunc:
        """A +/-1 valued function (for Count-Sketch style estimators)."""
        ...

    def function_array(self, index: int, range_size: int) -> ArrayHashFunc:
        """Vectorized twin of :meth:`function` over uint64 key arrays."""
        ...

    def sign_array(self, index: int) -> ArrayHashFunc:
        """Vectorized twin of :meth:`sign_function` (int64 +/-1 array)."""
        ...


class MultiplyShiftFamily:
    """Classic ``(a*x + b) mod p mod m`` 2-universal hashing.

    Parameters are derived deterministically from the seed via splitmix64,
    so the same seed always yields the same functions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _params(self, index: int) -> tuple[int, int]:
        base = splitmix64(self.seed * 0x1000193 + index * 2 + 1)
        a = (splitmix64(base) % (_PRIME - 1)) + 1
        b = splitmix64(base ^ 0xDEADBEEF) % _PRIME
        return a, b

    def function(self, index: int, range_size: int) -> HashFunc:
        """2-universal function into ``[0, range_size)``.

        Keys are taken modulo 2^64 (two's-complement wrap for negatives) so
        scalar hashing agrees bit-exactly with the uint64 vectorized twin
        for any Python int.
        """
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        a, b = self._params(index)
        return _AffineSlot(a, b, range_size)

    def sign_function(self, index: int) -> HashFunc:
        """Pairwise-independent +/-1 function."""
        a, b = self._params(index ^ 0x5A5A5A5A)
        return _AffineSign(a, b)

    def function_array(self, index: int, range_size: int) -> ArrayHashFunc:
        """Vectorized 2-universal function (bit-exact with scalar)."""
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        a, b = self._params(index)
        return _AffineSlotArray(a, b, range_size)

    def sign_array(self, index: int) -> ArrayHashFunc:
        """Vectorized +/-1 function (bit-exact with scalar)."""
        a, b = self._params(index ^ 0x5A5A5A5A)
        return _AffineSignArray(a, b)


class MixerFamily:
    """Hash family built from the splitmix64 mixer.

    Faster than :class:`MultiplyShiftFamily` in CPython (no modulo by a big
    prime) and empirically well distributed; has no formal universality
    guarantee, which is why sketches accept the family as a parameter.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def function(self, index: int, range_size: int) -> HashFunc:
        """Mixer-based function into ``[0, range_size)``."""
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        salt = splitmix64((self.seed << 8) ^ (index * 0x9E37 + 0x79B9))
        return _MixerSlot(salt, range_size)

    def sign_function(self, index: int) -> HashFunc:
        """Mixer-based +/-1 function."""
        salt = splitmix64((self.seed << 8) ^ (index * 0x85EB + 0xCA6B))
        return _MixerSign(salt)

    def function_array(self, index: int, range_size: int) -> ArrayHashFunc:
        """Vectorized mixer-based function (bit-exact with scalar)."""
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        salt = splitmix64((self.seed << 8) ^ (index * 0x9E37 + 0x79B9))
        return _MixerSlotArray(salt, range_size)

    def sign_array(self, index: int) -> ArrayHashFunc:
        """Vectorized mixer-based +/-1 function (bit-exact with scalar)."""
        salt = splitmix64((self.seed << 8) ^ (index * 0x85EB + 0xCA6B))
        return _MixerSignArray(salt)


def pairwise_indep_family(seed: int = 0) -> MultiplyShiftFamily:
    """The default family sketches use when the caller does not care."""
    return MultiplyShiftFamily(seed)
