"""Seeded hash families.

A *hash family* hands out independent hash functions ``h_i: int -> [0, m)``
from a single seed.  Sketches ask for ``rows`` functions at construction time
and keep them for their lifetime, so the family objects are tiny and the
returned callables close over plain integers only.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.hashing.mixers import splitmix64

_MASK64 = (1 << 64) - 1

# A Mersenne prime; multiply-shift style universal hashing mod p.
_PRIME = (1 << 61) - 1

HashFunc = Callable[[int], int]


class HashFamily(Protocol):
    """Protocol for seeded hash families used by sketches."""

    def function(self, index: int, range_size: int) -> HashFunc:
        """The ``index``-th function of the family, mapping into
        ``[0, range_size)``."""
        ...

    def sign_function(self, index: int) -> HashFunc:
        """A +/-1 valued function (for Count-Sketch style estimators)."""
        ...


class MultiplyShiftFamily:
    """Classic ``(a*x + b) mod p mod m`` 2-universal hashing.

    Parameters are derived deterministically from the seed via splitmix64,
    so the same seed always yields the same functions.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _params(self, index: int) -> tuple[int, int]:
        base = splitmix64(self.seed * 0x1000193 + index * 2 + 1)
        a = (splitmix64(base) % (_PRIME - 1)) + 1
        b = splitmix64(base ^ 0xDEADBEEF) % _PRIME
        return a, b

    def function(self, index: int, range_size: int) -> HashFunc:
        """2-universal function into ``[0, range_size)``."""
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        a, b = self._params(index)

        def h(key: int, _a: int = a, _b: int = b, _m: int = range_size) -> int:
            return ((_a * key + _b) % _PRIME) % _m

        return h

    def sign_function(self, index: int) -> HashFunc:
        """Pairwise-independent +/-1 function."""
        a, b = self._params(index ^ 0x5A5A5A5A)

        def s(key: int, _a: int = a, _b: int = b) -> int:
            return 1 if ((_a * key + _b) % _PRIME) & 1 else -1

        return s


class MixerFamily:
    """Hash family built from the splitmix64 mixer.

    Faster than :class:`MultiplyShiftFamily` in CPython (no modulo by a big
    prime) and empirically well distributed; has no formal universality
    guarantee, which is why sketches accept the family as a parameter.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def function(self, index: int, range_size: int) -> HashFunc:
        """Mixer-based function into ``[0, range_size)``."""
        if range_size <= 0:
            raise ValueError(f"range_size must be positive, got {range_size}")
        salt = splitmix64((self.seed << 8) ^ (index * 0x9E37 + 0x79B9))

        def h(key: int, _salt: int = salt, _m: int = range_size) -> int:
            return splitmix64(key ^ _salt) % _m

        return h

    def sign_function(self, index: int) -> HashFunc:
        """Mixer-based +/-1 function."""
        salt = splitmix64((self.seed << 8) ^ (index * 0x85EB + 0xCA6B))

        def s(key: int, _salt: int = salt) -> int:
            return 1 if splitmix64(key ^ _salt) & 1 else -1

        return s


def pairwise_indep_family(seed: int = 0) -> MultiplyShiftFamily:
    """The default family sketches use when the caller does not care."""
    return MultiplyShiftFamily(seed)
