"""Per-window ground truth over a window schedule.

Bridges the exact detector and the window engines: given a trace and any
iterable of ``(t0, t1)`` windows, produce the exact HHH result for each.
Both figures of the paper are comparisons between two such series.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.hhh.exact_hhh import ExactHHH, HHHResult
from repro.trace.container import Trace
from repro.windows.schedule import Window


def window_ground_truth(
    trace: Trace,
    windows: Iterable[Window],
    detector: ExactHHH,
    key: str = "src",
) -> Iterator[tuple[Window, HHHResult]]:
    """Yield ``(window, exact HHH result)`` for each window in order."""
    for window in windows:
        yield window, detector.detect_window(trace, window.t0, window.t1, key=key)
