"""Exact (plain, non-hierarchical) heavy hitters.

The paper: "[HH detection] seeks to find an IP prefix p which contributes
with a traffic volume larger than a given threshold T during a fixed time
interval t."  At the leaf level this is a simple filter over aggregated
counts; :func:`heavy_hitter_prefixes` additionally reports the *undiscounted*
heavy prefixes at every hierarchy level, which is the non-hierarchical
baseline HHH detectors are compared against.
"""

from __future__ import annotations

from typing import Mapping

from repro.hierarchy.domain import SourceHierarchy
from repro.net.prefix import Prefix


def exact_heavy_hitters(
    counts: Mapping[int, int], threshold: float
) -> dict[int, int]:
    """Keys whose count meets an absolute ``threshold``.

    Returns ``{key: count}`` for every key with ``count >= threshold``.
    ``threshold`` is in the same unit as the counts (bytes in the paper).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    return {k: c for k, c in counts.items() if c >= threshold}


def heavy_hitter_prefixes(
    counts: Mapping[int, int],
    threshold: float,
    hierarchy: SourceHierarchy | None = None,
) -> dict[Prefix, int]:
    """Heavy prefixes at every level, *without* hierarchical discounting.

    A prefix qualifies when the plain sum of its descendants' counts meets
    the threshold.  The result of HHH detection is always a subset of these
    prefixes; the difference is exactly the mass double-counted by
    non-hierarchical aggregation.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    hierarchy = hierarchy or SourceHierarchy()
    result: dict[Prefix, int] = {}
    level_counts: dict[int, int] = dict(counts)
    for level in range(hierarchy.num_levels):
        if level > 0:
            rolled: dict[int, int] = {}
            for value, count in level_counts.items():
                parent = hierarchy.generalize(value, level)
                rolled[parent] = rolled.get(parent, 0) + count
            level_counts = rolled
        for value, count in level_counts.items():
            if count >= threshold:
                result[hierarchy.prefix_at(value, level)] = count
    return result
