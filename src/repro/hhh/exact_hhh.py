"""Exact hierarchical heavy hitters with discounted counts.

Semantics (Cormode et al., and the paper's Section 1): processing levels
bottom-up, a prefix ``p`` is an HHH when its *discounted* volume — the bytes
of descendants not already covered by an HHH below ``p`` — reaches the
threshold ``T``.  Once a prefix is declared an HHH its residual volume stops
propagating upward, which is precisely the "excluding the contribution of
all its HHH descendants" rule.

The computation rolls a ``{generalized_value: residual_bytes}`` dict up the
hierarchy, zeroing declared HHHs; it is O(distinct_keys * num_levels) per
window and exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.hierarchy.domain import SourceHierarchy
from repro.net.prefix import Prefix
from repro.trace.container import Trace


@dataclass(frozen=True, slots=True, order=True)
class HHHItem:
    """One detected HHH: the prefix plus its discounted byte volume."""

    prefix: Prefix
    discounted_bytes: int


@dataclass(frozen=True)
class HHHResult:
    """The outcome of HHH detection over one window.

    Attributes
    ----------
    items:
        Detected HHHs with their discounted volumes.
    threshold_bytes:
        The absolute byte threshold ``T = phi * total_bytes`` that was used.
    total_bytes:
        Total byte volume of the window.
    phi:
        The relative threshold requested (0 when constructed from an
        absolute threshold directly).
    """

    items: tuple[HHHItem, ...]
    threshold_bytes: float
    total_bytes: int
    phi: float = 0.0

    @property
    def prefixes(self) -> frozenset[Prefix]:
        """The set of detected prefixes."""
        return frozenset(item.prefix for item in self.items)

    def prefixes_at_length(self, length: int) -> frozenset[Prefix]:
        """Detected prefixes with the given prefix length."""
        return frozenset(
            item.prefix for item in self.items if item.prefix.length == length
        )

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[HHHItem]:
        return iter(self.items)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self.prefixes


class ExactHHH:
    """Exact offline HHH detector.

    Parameters
    ----------
    phi:
        Relative threshold: a prefix is heavy when its discounted volume
        reaches ``phi`` times the window's total bytes (the paper uses
        1 %, 5 % and 10 %).
    hierarchy:
        The generalisation hierarchy (byte-granularity source hierarchy by
        default, as in the paper).
    """

    def __init__(
        self,
        phi: float = 0.05,
        hierarchy: SourceHierarchy | None = None,
    ) -> None:
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        self.phi = phi
        self.hierarchy = hierarchy or SourceHierarchy()

    def detect(self, counts: Mapping[int, int]) -> HHHResult:
        """Run detection over aggregated ``{source: bytes}`` counts."""
        total = int(sum(counts.values()))
        threshold = self.phi * total
        return self.detect_absolute(counts, threshold, total, phi=self.phi)

    def detect_absolute(
        self,
        counts: Mapping[int, int],
        threshold_bytes: float,
        total_bytes: int | None = None,
        phi: float = 0.0,
    ) -> HHHResult:
        """Run detection with an absolute byte threshold."""
        if threshold_bytes <= 0:
            # Degenerate window (no traffic): nothing can be heavy.
            return HHHResult((), max(threshold_bytes, 0.0),
                             total_bytes or 0, phi)
        hierarchy = self.hierarchy
        items: list[HHHItem] = []
        residual: dict[int, int] = dict(counts)
        for level in range(hierarchy.num_levels):
            if level > 0:
                rolled: dict[int, int] = {}
                get = rolled.get
                for value, count in residual.items():
                    if count == 0:
                        continue
                    parent = hierarchy.generalize(value, level)
                    rolled[parent] = get(parent, 0) + count
                residual = rolled
            for value, count in residual.items():
                if count >= threshold_bytes:
                    items.append(
                        HHHItem(hierarchy.prefix_at(value, level), count)
                    )
                    residual[value] = 0
        items.sort()
        return HHHResult(
            tuple(items), threshold_bytes,
            total_bytes if total_bytes is not None else int(sum(counts.values())),
            phi,
        )

    def detect_window(
        self, trace: Trace, t0: float, t1: float, key: str = "src"
    ) -> HHHResult:
        """Run detection over the packets of ``trace`` in [t0, t1)."""
        counts = trace.bytes_by_key(t0, t1, key=key)
        return self.detect(counts)
