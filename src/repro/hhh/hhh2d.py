"""Exact two-dimensional (source x destination) HHH.

2D HHH generalises the discounted-count semantics to the src x dst lattice.
Following the "full ancestry" variant of Cormode et al. (the one RHHH and
most data-plane systems implement), a lattice element is an HHH when its
conditioned volume — the bytes of leaf flows under it that are not under
any already-declared HHH descendant — reaches the threshold.

Leaf flows are (src/32, dst/32) pairs packed into 64-bit keys.  Because an
element of the lattice has two parents, a leaf discounted at one node must
not re-appear via the other parent; we therefore track, per lattice node,
the *set of surviving leaves* rather than scalar residuals.  This is
O(leaves * lattice_size) and exact; it is the test oracle and ground truth
for the 2D extension, not a line-rate algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.hierarchy.lattice import LatticeNode, TwoDHierarchy
from repro.net.prefix import Prefix


@dataclass(frozen=True, slots=True, order=True)
class HHH2DItem:
    """One detected 2D HHH: (src_prefix, dst_prefix) and discounted bytes."""

    src_prefix: Prefix
    dst_prefix: Prefix
    discounted_bytes: int


class ExactHHH2D:
    """Exact offline 2D HHH detector over packed (src<<32|dst) leaf counts."""

    def __init__(
        self,
        phi: float = 0.05,
        hierarchy: TwoDHierarchy | None = None,
    ) -> None:
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        self.phi = phi
        self.hierarchy = hierarchy or TwoDHierarchy()

    def detect(self, counts: Mapping[int, int]) -> list[HHH2DItem]:
        """Run detection over ``{(src<<32|dst): bytes}`` counts."""
        total = sum(counts.values())
        threshold = self.phi * total
        if threshold <= 0:
            return []
        lattice = self.hierarchy
        # Leaves that are not yet covered by any declared HHH.
        surviving: dict[int, int] = {
            key: count for key, count in counts.items() if count > 0
        }
        # Per declared HHH we remember which generalized cell it owns, so a
        # leaf is covered once it generalises into any declared cell.
        declared: list[tuple[LatticeNode, int]] = []
        items: list[HHH2DItem] = []
        for node in lattice.nodes_bottom_up():
            # Conditioned volume per generalized cell at this node, counting
            # only leaves not covered by a declared descendant HHH.
            cells: dict[int, int] = {}
            for key, count in surviving.items():
                cell = lattice.generalize(key, node)
                cells[cell] = cells.get(cell, 0) + count
            newly: list[int] = []
            for cell, volume in cells.items():
                if volume >= threshold:
                    src_p, dst_p = lattice.prefixes_of(cell, node)
                    items.append(HHH2DItem(src_p, dst_p, volume))
                    newly.append(cell)
            if newly:
                newly_set = set(newly)
                surviving = {
                    key: count
                    for key, count in surviving.items()
                    if lattice.generalize(key, node) not in newly_set
                }
                declared.extend((node, cell) for cell in newly)
        items.sort()
        return items
