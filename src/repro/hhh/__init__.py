"""Exact heavy-hitter and hierarchical-heavy-hitter algorithms.

These are the ground-truth computations both figures of the paper are built
on: given the per-source byte volume of a time window, find

- **HH**: sources whose volume exceeds ``phi * total_bytes``;
- **HHH**: prefixes whose volume exceeds the threshold *after excluding the
  contribution of all their HHH descendants* (the standard
  Cormode–Korn–Muthukrishnan–Srivastava discounted-count semantics, which
  is also how the paper phrases it).

The implementations here are exact and offline (they see the whole window);
approximate streaming detectors live in :mod:`repro.sketch` and
:mod:`repro.decay`.
"""

from repro.hhh.exact_hh import exact_heavy_hitters, heavy_hitter_prefixes
from repro.hhh.exact_hhh import ExactHHH, HHHResult, HHHItem
from repro.hhh.trie import PrefixTrie
from repro.hhh.hhh2d import ExactHHH2D, HHH2DItem
from repro.hhh.ground_truth import window_ground_truth

__all__ = [
    "exact_heavy_hitters",
    "heavy_hitter_prefixes",
    "ExactHHH",
    "HHHResult",
    "HHHItem",
    "PrefixTrie",
    "ExactHHH2D",
    "HHH2DItem",
    "window_ground_truth",
]
