"""A binary prefix trie over 32-bit keys.

The dict-rollup in :mod:`repro.hhh.exact_hhh` is the fast path for a fixed
level set; the trie is the general structure: it supports bit-granularity
HHH at any level subset, longest-prefix queries, and subtree volume
queries.  Tests use it as an independent oracle against the rollup
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.net.ipv4 import IPV4_BITS
from repro.net.prefix import Prefix


@dataclass
class _Node:
    count: int = 0          # volume recorded exactly at this node's key
    subtree: int = 0        # cached subtree volume (maintained on insert)
    children: list["_Node | None"] = field(default_factory=lambda: [None, None])


class PrefixTrie:
    """Binary trie accumulating byte volumes at /32 leaves."""

    def __init__(self) -> None:
        self._root = _Node()
        self._total = 0

    @property
    def total(self) -> int:
        """Total volume inserted."""
        return self._total

    def insert(self, key: int, count: int = 1) -> None:
        """Add ``count`` volume at address ``key``."""
        if not 0 <= key < (1 << IPV4_BITS):
            raise ValueError(f"key {key} not a 32-bit value")
        if count < 0:
            raise ValueError(f"negative count {count}")
        node = self._root
        node.subtree += count
        for bit_pos in range(IPV4_BITS - 1, -1, -1):
            bit = (key >> bit_pos) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            child.subtree += count
            node = child
        node.count += count
        self._total += count

    def insert_counts(self, counts: Mapping[int, int]) -> None:
        """Bulk-insert a ``{key: count}`` mapping."""
        for key, count in counts.items():
            self.insert(key, count)

    def subtree_volume(self, prefix: Prefix) -> int:
        """Total volume under ``prefix`` (0 when absent)."""
        node = self._node_at(prefix)
        return node.subtree if node is not None else 0

    def _node_at(self, prefix: Prefix) -> _Node | None:
        node = self._root
        for bit_pos in range(IPV4_BITS - 1, IPV4_BITS - 1 - prefix.length, -1):
            bit = (prefix.value >> bit_pos) & 1
            node = node.children[bit]
            if node is None:
                return None
        return node

    def leaves(self) -> Iterator[tuple[int, int]]:
        """Yield ``(key, count)`` for every key with non-zero volume."""
        stack: list[tuple[_Node, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, value, depth = stack.pop()
            if depth == IPV4_BITS:
                if node.count:
                    yield value, node.count
                continue
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append(
                        (child, value | (bit << (IPV4_BITS - 1 - depth)), depth + 1)
                    )

    def hhh(self, threshold: float, lengths: tuple[int, ...] | None = None
            ) -> dict[Prefix, int]:
        """Exact HHH over the trie, at the given level lengths.

        ``lengths`` is leaf-first (e.g. ``(32, 24, 16, 8, 0)``); default is
        every bit length 32..0.  Returns ``{prefix: discounted_volume}``.

        This walks the full trie once per call and implements the same
        discounted-count recursion as :class:`repro.hhh.ExactHHH`; it exists
        as the independent oracle for cross-checking.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if lengths is None:
            lengths = tuple(range(IPV4_BITS, -1, -1))
        level_set = set(lengths)
        result: dict[Prefix, int] = {}

        def walk(node: _Node, value: int, depth: int) -> int:
            """Residual (non-HHH-covered) volume of this subtree."""
            if depth == IPV4_BITS:
                residual = node.count
            else:
                residual = 0
                for bit in (0, 1):
                    child = node.children[bit]
                    if child is not None:
                        residual += walk(
                            child,
                            value | (bit << (IPV4_BITS - 1 - depth)),
                            depth + 1,
                        )
            # depth equals the prefix length at this node.
            if depth in level_set and residual >= threshold:
                result[Prefix(value, depth)] = residual
                return 0
            return residual

        walk(self._root, 0, 0)
        return result
