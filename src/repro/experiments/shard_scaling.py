"""Shard-scaling sweep: throughput and report accuracy vs shard count.

The experiment behind the sharded engine's acceptance story: feed the
same columnar packet stream through a single-stream detector and through
:class:`repro.engine.ShardedDetector` at increasing shard counts
(optionally fanning shard updates across a process pool), and record

- packets/second and the speedup relative to the smallest swept shard
  count, and
- the report's Jaccard similarity against the single-stream report —
  near 1.0 by construction, since key partitioning gives every key's
  whole state to exactly one shard (small deviations come from per-shard
  collision noise being *lower* than single-stream).

``repro-hhh run shard-scaling --trace SPEC --shards 1,2,4 --workers 4``
drives it; CI archives the JSON artifact as ``BENCH_shard-scaling.json``
at smoke scale on the serial backend.
"""

from __future__ import annotations

import time

from repro.analysis.throughput import trace_columns
from repro.core import get_enumerable_spec
from repro.core.detector import as_batch
from repro.engine import ParallelRunner, ShardedDetector, partition_batch
from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_min1,
    check_phi,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.metrics.sets import jaccard
from repro.trace.container import Trace


def _check_shards(value: object) -> None:
    counts = value  # already coerced to a tuple of ints
    if not counts or any(s < 1 for s in counts):  # type: ignore[operator]
        raise ValueError(f"shard counts must all be >= 1, got {value}")
    if len(set(counts)) != len(counts):  # type: ignore[arg-type]
        raise ValueError(f"duplicate shard counts in {value}")


@register_experiment
class ShardScaling(Experiment):
    """Throughput + accuracy of key-partitioned sharding by shard count."""

    name = "shard-scaling"
    description = (
        "sharded-engine throughput and report accuracy vs shard count "
        "(serial or process-pool workers)"
    )
    PARAMS = (
        Param("detector", "str", "countmin-hh",
              "registry name of an enumerable detector to shard"),
        Param("shards", "ints", (1, 2, 4),
              "comma-separated shard counts to sweep", check=_check_shards),
        Param("workers", "int", 1,
              "process-pool workers for shard updates; 1 = serial in-process",
              check=check_min1),
        Param("phi", "float", 0.01,
              "report threshold as a fraction of total bytes",
              check=check_phi),
        Param("limit", "int", 100_000, "packets fed to each configuration",
              check=check_min1),
        Param("repeats", "int", 3, "best-of-N timing repeats",
              check=check_min1),
    )
    default_trace = "caida:day=0,duration=60"
    smoke_trace = "caida:day=0,duration=4"
    smoke_overrides = {
        "shards": (1, 2), "workers": 1, "limit": 3000, "repeats": 1,
    }

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        name = self.bound_params["detector"]
        spec = get_enumerable_spec(name, error=ExperimentError)
        keys, weights, ts = trace_columns(
            trace, limit=self.bound_params["limit"]
        )
        threshold = self.bound_params["phi"] * float(weights.sum())
        now = float(ts[-1]) if len(ts) else 0.0
        repeats = self.bound_params["repeats"]
        workers = self.bound_params["workers"]

        reference = spec.factory()
        reference.update_batch(keys, weights, ts)
        reference_report = self._query(reference, spec, threshold, now)

        runner = (
            ParallelRunner("process", workers) if workers > 1 else None
        )
        rows: list[dict[str, object]] = []
        try:
            if runner is not None:
                # Warm the pool (fork + worker imports) outside every
                # timed region so the first swept configuration — the
                # speedup baseline — is not understated.
                warm = ShardedDetector(spec.factory, workers, runner)
                warm.update_batch(keys[:256], weights[:256], ts[:256])
            measured: dict[int, float] = {}
            for num_shards in self.bound_params["shards"]:
                best = float("inf")
                sharded = None
                for _ in range(repeats):
                    sharded = ShardedDetector(
                        spec.factory, num_shards, runner
                    )
                    t0 = time.perf_counter()
                    sharded.update_batch(keys, weights, ts)
                    best = min(best, time.perf_counter() - t0)
                t0 = time.perf_counter()
                report = self._query(sharded, spec, threshold, now)
                emit_s = time.perf_counter() - t0
                partition_s, update_s = self._stage_breakdown(
                    spec, num_shards, runner, keys, weights, ts
                )
                # Clamp degenerate timings (coarse clocks on tiny batches)
                # so pps stays finite for int rendering and JSON.
                pps = len(keys) / max(best, 1e-9)
                measured[num_shards] = pps
                rows.append({
                    "detector": name,
                    "shards": num_shards,
                    "backend": "process" if runner else "serial",
                    "workers": workers if runner else 1,
                    "packets": len(keys),
                    "pps": int(pps),
                    "speedup": 0.0,  # filled once the sweep's base is known
                    "partition_ms": round(partition_s * 1000, 3),
                    "update_ms": round(update_s * 1000, 3),
                    "emit_ms": round(emit_s * 1000, 3),
                    "report_size": len(report),
                    "jaccard_vs_single": round(
                        jaccard(set(reference_report), set(report)), 4
                    ),
                })
        finally:
            if runner is not None:
                runner.close()
        # Speedup is always relative to the smallest swept shard count,
        # regardless of sweep order.
        base_pps = measured[min(measured)]
        for row in rows:
            row["speedup"] = round(measured[row["shards"]] / base_pps, 2)
        return self._finish(
            trace, label, rows,
            headline={
                "max_speedup": max(row["speedup"] for row in rows),
                "min_jaccard": min(
                    row["jaccard_vs_single"] for row in rows
                ),
                "reference_report_size": len(reference_report),
            },
        )

    @staticmethod
    def _stage_breakdown(
        spec, num_shards: int, runner, keys, weights, ts
    ) -> tuple[float, float]:
        """(partition seconds, update seconds) for one instrumented pass.

        Measured on a fresh instance so the best-of-N total timing above
        is never perturbed; this is the split that shows where a sharded
        configuration's time actually goes (the routing tax vs the
        detector work the shards parallelize).
        """
        stage = ShardedDetector(spec.factory, num_shards, runner)
        kb, wb, tb = as_batch(keys, weights, ts)
        t0 = time.perf_counter()
        parts = partition_batch(kb, wb, tb, num_shards)
        partition_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        if runner is None:
            for shard, (pk, pw, pt) in zip(stage.shards, parts):
                if len(pk):
                    shard.update_batch(pk, pw, pt)
        else:
            stage.shards = runner.update_shards(stage.shards, parts)
        update_s = time.perf_counter() - t0
        return partition_s, update_s

    @staticmethod
    def _query(detector, spec, threshold: float, now: float):
        if spec.timestamped:
            return detector.query(threshold, now)
        return detector.query(threshold)
