"""The uniform experiment result artifact.

Every registered experiment returns one :class:`ExperimentResult`: tabular
``rows`` plus the parameters that produced them, the provenance of the
trace(s) they were measured on, and wall-clock timings.  The same object
renders as the paper's text tables (:meth:`ExperimentResult.to_table`) and
serializes to a versioned JSON document (:meth:`ExperimentResult.to_json`)
that CI archives as the machine-readable perf/accuracy trajectory.

The JSON schema is deliberately flat and self-describing::

    {
      "schema": "repro-hhh/experiment-result/v1",
      "experiment": "hidden-hhh",
      "params": {...},
      "traces": [{"spec": "caida:day=0,duration=60", "label": "day0",
                  "num_packets": 48120, "duration_s": 59.99,
                  "total_bytes": 33715560}],
      "rows": [{...}, ...],
      "headline": {"max_hidden_percent": 28.6},
      "timings": {"trace_build_s": 0.41, "run_s": 2.05}
    }

:func:`validate_result_dict` checks a decoded document against this shape
and is what the CLI tests (and downstream tooling) rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.render import format_table
from repro.trace.container import Trace

#: Version tag embedded in every serialized result.
SCHEMA_ID = "repro-hhh/experiment-result/v1"


def read_json_text(text_or_path: str | Path) -> str:
    """Resolve a ``from_json`` argument to JSON text.

    A :class:`Path`, or a single-line string ending in ``.json``, is read
    from disk; anything else is taken as the JSON text itself.  Shared by
    :meth:`ExperimentResult.from_json` and the sweep layer's
    ``SweepResult.from_json`` so the sniffing rule cannot drift.
    """
    if isinstance(text_or_path, Path) or (
        isinstance(text_or_path, str)
        and text_or_path.endswith(".json")
        and "\n" not in text_or_path
    ):
        return Path(text_or_path).read_text()
    return str(text_or_path)


def jsonify(value: object) -> object:
    """Recursively coerce a value into JSON-serializable builtins.

    Handles the numpy scalars that leak out of vectorized row computations
    and normalises tuples to lists (matching what a JSON round-trip
    produces, so equality survives serialization).
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize {type(value).__name__}: {value!r}")


@dataclass
class TraceProvenance:
    """Where a result's input trace came from, and its basic shape."""

    label: str
    num_packets: int
    duration_s: float
    total_bytes: int
    spec: str | None = None

    @classmethod
    def from_trace(
        cls, trace: Trace, label: str, spec: str | None = None
    ) -> "TraceProvenance":
        """Provenance for an in-memory trace."""
        return cls(
            label=label,
            num_packets=len(trace),
            duration_s=round(float(trace.duration), 3),
            total_bytes=int(trace.total_bytes),
            spec=spec,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "spec": self.spec,
            "label": self.label,
            "num_packets": self.num_packets,
            "duration_s": self.duration_s,
            "total_bytes": self.total_bytes,
        }


@dataclass
class ExperimentResult:
    """Uniform result artifact shared by every registered experiment."""

    experiment: str
    params: dict[str, object]
    rows: list[dict[str, object]] = field(default_factory=list)
    traces: list[TraceProvenance] = field(default_factory=list)
    headline: dict[str, object] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    #: Experiment-specific rich objects (CDFs, detectors, ...) for callers
    #: that want more than the tabular view.  Never serialized.
    extras: dict[str, object] = field(default_factory=dict)

    def to_table(self) -> str:
        """The rows as an aligned text table (the paper's rendering)."""
        return format_table(self.rows)

    def headline_lines(self) -> list[str]:
        """The headline numbers as ``key: value`` lines."""
        return [f"{key}: {value}" for key, value in self.headline.items()]

    def to_dict(self) -> dict[str, object]:
        """The versioned, JSON-serializable document."""
        return {
            "schema": SCHEMA_ID,
            "experiment": self.experiment,
            "params": jsonify(self.params),
            "traces": [jsonify(t.to_dict()) for t in self.traces],
            "rows": jsonify(self.rows),
            "headline": jsonify(self.headline),
            "timings": jsonify(self.timings),
        }

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize to JSON text, optionally also writing ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=False)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from a decoded document (validates first)."""
        validate_result_dict(document)
        traces = [
            TraceProvenance(
                label=t["label"],
                num_packets=t["num_packets"],
                duration_s=t["duration_s"],
                total_bytes=t["total_bytes"],
                spec=t.get("spec"),
            )
            for t in document["traces"]
        ]
        return cls(
            experiment=document["experiment"],
            params=dict(document["params"]),
            rows=[dict(r) for r in document["rows"]],
            traces=traces,
            headline=dict(document["headline"]),
            timings=dict(document["timings"]),
        )

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "ExperimentResult":
        """Rebuild a result from JSON text or a ``.json`` file path."""
        return cls.from_dict(json.loads(read_json_text(text_or_path)))


def validate_result_dict(document: object) -> None:
    """Raise ``ValueError`` unless ``document`` matches the v1 schema."""
    if not isinstance(document, dict):
        raise ValueError(f"result document must be an object, got "
                         f"{type(document).__name__}")
    if document.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"unknown result schema {document.get('schema')!r}; "
            f"expected {SCHEMA_ID!r}"
        )
    required = ("experiment", "params", "traces", "rows", "headline",
                "timings")
    missing = [key for key in required if key not in document]
    if missing:
        raise ValueError(f"result document missing keys: {missing}")
    if not isinstance(document["experiment"], str) or not document["experiment"]:
        raise ValueError("'experiment' must be a non-empty string")
    for mapping in ("params", "headline", "timings"):
        if not isinstance(document[mapping], dict):
            raise ValueError(f"'{mapping}' must be an object")
    for value in document["timings"].values():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError("'timings' values must be numbers")
    if not isinstance(document["rows"], list):
        raise ValueError("'rows' must be an array")
    for row in document["rows"]:
        if not isinstance(row, dict):
            raise ValueError("every row must be an object")
    if not isinstance(document["traces"], list):
        raise ValueError("'traces' must be an array")
    for trace in document["traces"]:
        if not isinstance(trace, dict):
            raise ValueError("every trace provenance entry must be an object")
        for key, kinds in (
            ("label", str), ("num_packets", int),
            ("duration_s", (int, float)), ("total_bytes", int),
        ):
            if key not in trace or not isinstance(trace[key], kinds):
                raise ValueError(
                    f"trace provenance needs {key!r} of type {kinds}"
                )
        spec = trace.get("spec")
        if spec is not None and not isinstance(spec, str):
            raise ValueError("trace provenance 'spec' must be a string or null")
