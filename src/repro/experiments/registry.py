"""String-keyed experiment registry.

The analysis counterpart of :mod:`repro.core.registry`: experiment classes
register themselves under a short stable name so the CLI, CI smoke jobs,
and library callers drive them uniformly::

    from repro.experiments import make_experiment

    exp = make_experiment("hidden-hhh", thresholds="0.01,0.05")
    result = exp.run(trace)

Registration happens as a side effect of importing the experiment modules;
the public functions lazily import them so callers never see a
half-populated registry.
"""

from __future__ import annotations

from repro.core.suggest import closest_hint
from repro.experiments.base import Experiment, ExperimentError

_REGISTRY: dict[str, type[Experiment]] = {}


def register_experiment(cls: type[Experiment]) -> type[Experiment]:
    """Register an :class:`Experiment` subclass under its ``name``.

    Usable as a class decorator; returns the class unchanged.
    """
    if not cls.name:
        raise ValueError(f"experiment class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"experiment {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_populated() -> None:
    # Importing the experiment modules runs their register_experiment calls.
    from repro.experiments import (  # noqa: F401
        accuracy,
        decay,
        fuzz,
        hidden,
        sensitivity,
        serve_recovery,
        shard_scaling,
        stats,
        stream_replay,
        stream_serve,
        sweep,
        throughput,
    )


def experiment_names() -> tuple[str, ...]:
    """All registered experiment names, sorted."""
    _ensure_populated()
    return tuple(sorted(_REGISTRY))


def get_experiment(name: str) -> type[Experiment]:
    """The experiment class registered under ``name``."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {name!r};{closest_hint(name, _REGISTRY)} "
            f"known: {known}"
        ) from None


def make_experiment(name: str, **overrides: object) -> Experiment:
    """Instantiate an experiment by name with parameter overrides."""
    return get_experiment(name)(**overrides)
