"""Spec-to-artifact experiment driver.

:func:`run_experiment` is the one path the CLI, the CI smoke job, and
library callers use to go from *strings* (an experiment name, TraceSpec
strings, ``key=value`` overrides) to a finished
:class:`ExperimentResult` with trace provenance and wall-clock timings
attached.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from repro.experiments.base import ExperimentError
from repro.experiments.registry import get_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.spec import TraceSpec


def run_experiment(
    name: str,
    trace_specs: Sequence[str] | None = None,
    overrides: Mapping[str, object] | None = None,
    labels: Sequence[str] | None = None,
    smoke: bool = False,
) -> ExperimentResult:
    """Run a registered experiment over string-addressed traces.

    ``trace_specs`` defaults to the experiment's ``default_trace`` (or its
    tiny ``smoke_trace`` when ``smoke=True``); ``overrides`` are applied on
    top of the smoke overrides, so explicit settings always win.  The
    returned result carries the spec string of each input trace in its
    provenance and ``trace_build_s`` / ``run_s`` timings.
    """
    cls = get_experiment(name)
    params: dict[str, object] = {}
    if smoke:
        params.update(cls.smoke_overrides)
    params.update(overrides or {})
    experiment = cls(**params)

    if not trace_specs:
        trace_specs = [cls.smoke_trace if smoke else cls.default_trace]
    specs = [TraceSpec.parse(text) for text in trace_specs]
    if labels is None:
        labels = [
            spec.scenario if len(specs) == 1 else f"{spec.scenario}{i}"
            for i, spec in enumerate(specs)
        ]
    if len(labels) != len(specs):
        raise ExperimentError(
            f"got {len(labels)} labels for {len(specs)} traces"
        )

    t0 = time.perf_counter()
    traces = [spec.build() for spec in specs]
    build_s = time.perf_counter() - t0

    t1 = time.perf_counter()
    if len(traces) == 1:
        result = experiment.run(traces[0], label=labels[0])
    else:
        result = experiment.run_many(traces, labels=labels)
    run_s = time.perf_counter() - t1

    for provenance, spec in zip(result.traces, specs):
        provenance.spec = spec.format()
    result.timings = {
        "trace_build_s": round(build_s, 3),
        "run_s": round(run_s, 3),
    }
    return result
