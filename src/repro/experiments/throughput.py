"""The batch-throughput bench as a registry experiment.

Shares its methodology with ``benchmarks/test_batch_throughput.py`` via
:mod:`repro.analysis.throughput`, so the CLI's ``bench`` alias, the generic
``run batch-throughput`` path, and the gated benchmark all measure the same
thing.  JSON artifacts of this experiment are what CI archives as the
``BENCH_*.json`` perf trajectory.
"""

from __future__ import annotations

from repro.analysis.throughput import speedup_row, trace_columns
from repro.core import detector_names
from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_min1,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.container import Trace


@register_experiment
class BatchThroughput(Experiment):
    """Batch-vs-scalar update throughput for registry detectors."""

    name = "batch-throughput"
    description = (
        "batch vs scalar update throughput (packets/second) by detector "
        "registry name"
    )
    PARAMS = (
        Param("detectors", "strs", ("countmin", "ondemand-tdbf", "spacesaving"),
              "detector registry names to measure"),
        Param("limit", "int", 20_000, "packets fed to each detector",
              check=check_min1),
        Param("repeats", "int", 3, "best-of-N timing repeats",
              check=check_min1),
    )
    default_trace = "caida:day=0,duration=20"
    smoke_trace = "caida:day=0,duration=4"
    smoke_overrides = {"repeats": 1, "limit": 3000}

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        known = detector_names()
        unknown = [d for d in self.bound_params["detectors"] if d not in known]
        if unknown:
            raise ExperimentError(
                f"unknown detector(s) {', '.join(map(repr, unknown))}; "
                "see 'repro-hhh detectors' for the registry"
            )
        columns = trace_columns(trace, limit=self.bound_params["limit"])
        rows = [
            speedup_row(name, columns, repeats=self.bound_params["repeats"])
            for name in self.bound_params["detectors"]
        ]
        return self._finish(
            trace, label, rows,
            headline={
                "min_speedup": min(row["speedup"] for row in rows),
                "max_batch_pps": max(row["batch_pps"] for row in rows),
            },
        )
