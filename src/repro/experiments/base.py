"""The experiment contract: declared params, ``run(trace)``, uniform result.

This mirrors what :mod:`repro.core` did for detectors.  An experiment is a
class with

- a class-level parameter declaration (:attr:`Experiment.PARAMS`), each a
  :class:`Param` with a name, type, default, and optional validity check —
  the single source of truth the CLI's ``--set key=value`` parsing, the
  listings, and EXPERIMENTS.md render from;
- :meth:`Experiment.run`, consuming one :class:`repro.trace.Trace` and
  returning an :class:`ExperimentResult`;
- :meth:`Experiment.run_many` for multi-trace pooling (Figure 2's four
  days), which concatenates rows and recombines headlines.

Experiments register themselves in :mod:`repro.experiments.registry` so
the CLI and CI drive them by name, with trace input addressed as
:class:`repro.trace.TraceSpec` strings.
"""

from __future__ import annotations

import difflib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Sequence

from repro.experiments.result import ExperimentResult, TraceProvenance
from repro.trace.container import Trace


class ExperimentError(ValueError):
    """An unknown experiment or an invalid parameter binding."""


@dataclass(frozen=True)
class Param:
    """One declared experiment parameter."""

    name: str
    kind: str  # "int" | "float" | "str" | "choice" | "floats" | "ints" | "strs"
    default: object
    description: str = ""
    choices: tuple[str, ...] = ()
    #: Optional extra validation; raise ``ValueError`` to reject a value.
    check: Callable[[object], None] | None = None

    def parse(self, value: object) -> object:
        """Coerce ``value`` (possibly a CLI string) to this param's type."""
        try:
            parsed = self._coerce(value)
        except (TypeError, ValueError) as exc:
            raise ExperimentError(
                f"bad value for parameter {self.name!r}: {exc}"
            ) from None
        if self.check is not None:
            try:
                self.check(parsed)
            except ValueError as exc:
                raise ExperimentError(
                    f"bad value for parameter {self.name!r}: {exc}"
                ) from None
        return parsed

    def _coerce(self, value: object) -> object:
        if self.kind == "int":
            if isinstance(value, bool):
                raise ValueError("expected an integer")
            if isinstance(value, str):
                return int(value)
            if isinstance(value, int):
                return value
            raise ValueError(f"expected an integer, got {value!r}")
        if self.kind == "float":
            if isinstance(value, str):
                return float(value)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
            raise ValueError(f"expected a number, got {value!r}")
        if self.kind == "str":
            return str(value)
        if self.kind == "choice":
            value = str(value)
            if value not in self.choices:
                raise ValueError(
                    f"expected one of {', '.join(self.choices)}, got {value!r}"
                )
            return value
        if self.kind == "floats":
            if isinstance(value, str):
                parts = [p for p in value.split(",") if p.strip()]
                if not parts:
                    raise ValueError("expected a comma-separated float list")
                return tuple(float(p) for p in parts)
            return tuple(float(v) for v in value)  # type: ignore[union-attr]
        if self.kind == "ints":
            if isinstance(value, str):
                parts = [p for p in value.split(",") if p.strip()]
                if not parts:
                    raise ValueError("expected a comma-separated integer list")
                return tuple(int(p) for p in parts)
            if isinstance(value, int) and not isinstance(value, bool):
                return (value,)
            return tuple(int(v) for v in value)  # type: ignore[union-attr]
        if self.kind == "strs":
            if isinstance(value, str):
                parts = [p.strip() for p in value.split(",") if p.strip()]
                if not parts:
                    raise ValueError("expected a comma-separated list")
                return tuple(parts)
            return tuple(str(v) for v in value)  # type: ignore[union-attr]
        raise ValueError(f"unknown param kind {self.kind!r}")

    def describe_default(self) -> str:
        """The default value in ``--set`` syntax (for listings)."""
        if isinstance(self.default, tuple):
            return ",".join(f"{v:g}" if isinstance(v, float) else str(v)
                            for v in self.default)
        if isinstance(self.default, float):
            return f"{self.default:g}"
        return str(self.default)


def check_phi(value: object) -> None:
    """Shared check for threshold parameters: phi must lie in (0, 1]."""
    if not 0.0 < float(value) <= 1.0:  # type: ignore[arg-type]
        raise ValueError(f"phi must be in (0, 1], got {value}")


def check_positive(value: object) -> None:
    """Shared check for strictly positive scalars."""
    if float(value) <= 0.0:  # type: ignore[arg-type]
        raise ValueError(f"must be positive, got {value}")


def check_min1(value: object) -> None:
    """Shared check for counts that must be at least 1."""
    if int(value) < 1:  # type: ignore[arg-type]
        raise ValueError(f"must be >= 1, got {value}")


class Experiment(ABC):
    """Base class for registry-driven experiments."""

    #: Registry name; set by subclasses.
    name: ClassVar[str] = ""
    #: One-line description for listings.
    description: ClassVar[str] = ""
    #: Declared parameters (the contract behind ``--set``).
    PARAMS: ClassVar[tuple[Param, ...]] = ()
    #: TraceSpec string used when the caller supplies no trace.
    default_trace: ClassVar[str] = "caida:day=0,duration=60"
    #: Tiny TraceSpec for CI smoke runs.
    smoke_trace: ClassVar[str] = "caida:day=0,duration=5"
    #: Param overrides applied (below explicit ones) for CI smoke runs.
    smoke_overrides: ClassVar[dict[str, object]] = {}

    def __init__(self, **overrides: object) -> None:
        self.bound_params = self.bind_params(overrides)

    @classmethod
    def params(cls) -> tuple[Param, ...]:
        """The declared parameters."""
        return cls.PARAMS

    @classmethod
    def bind_params(cls, overrides: dict[str, object]) -> dict[str, object]:
        """Merge ``overrides`` over declared defaults, with type coercion."""
        declared = {p.name: p for p in cls.PARAMS}
        unknown = sorted(set(overrides) - set(declared))
        if unknown:
            declared_desc = "; ".join(
                f"{p.name} ({p.kind}, default {p.describe_default()})"
                for p in cls.PARAMS
            ) or "(none)"
            hints = []
            for name in unknown:
                # Several unknowns can each have their own close match, so
                # this composes its own multi-name hint rather than using
                # the single-name repro.core.suggest.closest_hint format.
                close = difflib.get_close_matches(name, declared, n=1)
                if close:
                    hints.append(f"did you mean {close[0]!r} for {name!r}?")
            hint = (" " + " ".join(hints)) if hints else ""
            raise ExperimentError(
                f"experiment {cls.name!r} has no parameter(s) "
                f"{', '.join(map(repr, unknown))};{hint} "
                f"declared parameters: {declared_desc}"
            )
        bound: dict[str, object] = {}
        for name, param in declared.items():
            if name in overrides:
                bound[name] = param.parse(overrides[name])
            else:
                bound[name] = param.default
        return bound

    @abstractmethod
    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        """Run on one trace, returning the uniform result artifact."""

    def run_many(
        self, traces: Sequence[Trace], labels: Sequence[str] | None = None
    ) -> ExperimentResult:
        """Run on several traces, pooling rows (Figure 2's four days)."""
        labels = list(labels) if labels is not None else [
            f"trace{i}" for i in range(len(traces))
        ]
        if len(labels) != len(traces):
            raise ExperimentError("labels and traces must align")
        results = [self.run(t, label) for t, label in zip(traces, labels)]
        merged = self._fresh_result()
        for result in results:
            merged.rows.extend(result.rows)
            merged.traces.extend(result.traces)
        merged.headline = self.combine_headlines(
            [result.headline for result in results]
        )
        return merged

    def combine_headlines(
        self, headlines: Sequence[dict[str, object]]
    ) -> dict[str, object]:
        """How ``run_many`` merges per-trace headlines.

        The default keeps a single trace's headline and drops conflicting
        multi-trace ones (experiments that support pooling override this).
        """
        return dict(headlines[0]) if len(headlines) == 1 else {}

    def _fresh_result(self) -> ExperimentResult:
        return ExperimentResult(experiment=self.name, params=dict(self.bound_params))

    def _finish(
        self,
        trace: Trace,
        label: str,
        rows: Sequence[dict[str, object]],
        headline: dict[str, object] | None = None,
        extras: dict[str, object] | None = None,
    ) -> ExperimentResult:
        """Assemble the result artifact for a single-trace run."""
        result = self._fresh_result()
        result.rows = list(rows)
        result.traces = [TraceProvenance.from_trace(trace, label)]
        result.headline = dict(headline or {})
        result.extras = dict(extras or {})
        return result
