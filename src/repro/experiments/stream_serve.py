"""Multi-tenant serve throughput: the persistent shard-worker runtime.

The experiment face of :mod:`repro.stream.serve`: multiplex several
concurrent tenant streams over one :class:`repro.engine.ServePool`
(persistent worker processes owning their shards, zero-copy shared-memory
chunk handoff, partition/update pipelining) and record one row per
emission per tenant.  The headline ``streaming_pps`` is aggregate packets
over the *run-loop wall clock* — pool spin-up excluded, worker drain
included — which is the number the serve throughput floor in
``benchmarks/perf_floors.json`` fences.

Every tenant consumes the same deterministic stream (the input trace
replayed, or the ``source`` stream spec), so runs are reproducible and
every tenant's emissions are independently comparable to a serial
:class:`StreamPipeline` replay (which ``tests/stream/test_serve.py``
enforces bit-identically).
"""

from __future__ import annotations

import time

from repro.core import get_enumerable_spec
from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_min1,
    check_phi,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult, TraceProvenance
from repro.stream.emission import parse_emission_policy
from repro.stream.serve import ServeRuntime
from repro.trace.container import Trace


def _check_emit(value: object) -> None:
    parse_emission_policy(str(value))  # raises ValueError on bad spellings


@register_experiment
class StreamServe(Experiment):
    """Concurrent tenant streams over one persistent shard-worker pool."""

    name = "stream-serve"
    description = (
        "multi-tenant serve runtime: persistent shard workers, "
        "shared-memory chunk handoff, per-tenant online emissions"
    )
    PARAMS = (
        Param("detector", "str", "countmin-hh",
              "registry name of an enumerable detector to serve"),
        Param("tenants", "int", 2,
              "concurrent tenant streams multiplexed over the pool",
              check=check_min1),
        Param("workers", "int", 2,
              "persistent shard-worker processes", check=check_min1),
        Param("shards", "int", 2,
              "logical key-partitioned shards (>= workers)",
              check=check_min1),
        Param("chunk", "int", 8192,
              "packets per chunk and per shared-memory slot",
              check=check_min1),
        Param("emit", "str", "2s",
              "emission policy: 'Np' packets, 'Ts' trace seconds, or "
              "'window:T' driver-aligned", check=_check_emit),
        Param("phi", "float", 0.02,
              "report threshold as a fraction of each interval's bytes",
              check=check_phi),
        Param("key", "choice", "src", "trace column keying the detector",
              choices=("src", "dst")),
        Param("source", "str", "",
              "stream spec overriding the input trace (every tenant gets "
              "the same spec; default derives per-tenant seeds from the "
              "input trace spec)"),
        Param("max_packets", "int", 500_000,
              "hard per-tenant packet cap", check=check_min1),
    )
    default_trace = "drift:duration=30"
    smoke_trace = "drift:duration=10"
    smoke_overrides = {
        "chunk": 2048, "emit": "1s", "max_packets": 10_000, "tenants": 2,
        "workers": 2, "shards": 2,
    }

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        spec = get_enumerable_spec(
            self.bound_params["detector"], error=ExperimentError
        )
        num_tenants = self.bound_params["tenants"]
        workers = self.bound_params["workers"]
        shards = self.bound_params["shards"]
        if shards < workers:
            raise ExperimentError(
                f"shards ({shards}) must be >= workers ({workers})"
            )
        source_spec = self.bound_params["source"]
        rows: list[dict[str, object]] = []
        total_packets = 0
        total_bytes = 0
        num_emissions = 0
        runtime = ServeRuntime(
            workers=workers, shards=shards,
            chunk_size=self.bound_params["chunk"],
        )
        try:
            from repro.stream.source import TraceSource

            for i in range(num_tenants):
                runtime.add_tenant(
                    f"t{i}",
                    self.bound_params["detector"],
                    source_spec if source_spec else TraceSource(trace),
                    emit=self.bound_params["emit"],
                    phi=self.bound_params["phi"],
                    key=self.bound_params["key"],
                    max_packets=self.bound_params["max_packets"],
                )
            t0 = time.perf_counter()
            for tenant, emission in runtime.run():
                num_emissions += 1
                rows.append({
                    "tenant": tenant,
                    "emission": emission.index,
                    "t0": round(emission.window.t0, 3),
                    "t1": round(emission.window.t1, 3),
                    "packets": emission.packets,
                    "bytes": emission.bytes,
                    "report_size": len(emission.report),
                    "partial": emission.partial,
                })
            wall = time.perf_counter() - t0
            if runtime.failed:
                raise ExperimentError(
                    f"tenant failures: {dict(runtime.failed)}"
                )
            for name in runtime.tenants:
                pipeline = runtime.pipeline(name)
                total_packets += pipeline.packets
                total_bytes += pipeline.bytes
        finally:
            runtime.close()

        headline = {
            "tenants": num_tenants,
            "workers": workers,
            "shards": shards,
            "num_emissions": num_emissions,
            "stream_packets": total_packets,
            "stream_bytes": total_bytes,
            "streaming_pps": int(total_packets / wall) if wall > 0 else 0,
        }
        result = self._finish(trace, label, rows, headline=headline)
        if source_spec:
            result.traces = [
                TraceProvenance(
                    label=label,
                    num_packets=total_packets,
                    duration_s=0.0,
                    total_bytes=total_bytes,
                    spec=source_spec,
                )
            ]
        return result
