"""Registry-driven experiments — the analysis counterpart of ``repro.core``.

Every artefact the repo reproduces (Figure 2 hidden-HHH percentages,
Figure 3 window sensitivity, the Section 3 decay-vs-windows comparison,
the batch-throughput bench, trace statistics) is an :class:`Experiment`
subclass registered under a stable string name:

- ``params()`` declares the tunable parameters (name, type, default,
  validity check) that the CLI binds from ``--set key=value``;
- ``run(trace)`` consumes a :class:`repro.trace.Trace` and returns one
  uniform :class:`ExperimentResult` (rows + params + trace provenance +
  timings) that renders as a text table and serializes to versioned JSON;
- trace input is string-addressable via :class:`repro.trace.TraceSpec`
  (``"caida:day=0,duration=120"``, ``"ddos-burst:duration=60"``, ...).

``repro-hhh run <experiment> --trace SPEC --set key=value --json out.json``
drives any of them; adding an experiment is one ``@register_experiment``
class instead of a new CLI subcommand.
"""

from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_phi,
    check_positive,
)
from repro.experiments.registry import (
    experiment_names,
    get_experiment,
    make_experiment,
    register_experiment,
)
from repro.experiments.result import (
    SCHEMA_ID,
    ExperimentResult,
    TraceProvenance,
    jsonify,
    validate_result_dict,
)
from repro.experiments.runner import run_experiment

__all__ = [
    "Experiment",
    "ExperimentError",
    "ExperimentResult",
    "Param",
    "SCHEMA_ID",
    "TraceProvenance",
    "check_phi",
    "check_positive",
    "experiment_names",
    "get_experiment",
    "jsonify",
    "make_experiment",
    "register_experiment",
    "run_experiment",
    "validate_result_dict",
]
