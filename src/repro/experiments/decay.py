"""Registry wrapper for Section 3: time-decaying vs disjoint windows.

Adapts :class:`repro.analysis.DecayComparisonExperiment` to the uniform
:class:`Experiment` contract.
"""

from __future__ import annotations

from repro.analysis.decay_experiment import DecayComparisonExperiment
from repro.experiments.base import (
    Experiment,
    Param,
    check_phi,
    check_positive,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.container import Trace


def _check_counters(value: object) -> None:
    if int(value) < 1:  # type: ignore[arg-type]
        raise ValueError(f"must be >= 1, got {value}")


@register_experiment
class DecayComparison(Experiment):
    """Section 3: accuracy/resource comparison against windowed practice."""

    name = "decay-comparison"
    description = (
        "Section 3 — time-decaying HHH vs disjoint-window detectors on "
        "recall, precision, hidden recall and resources"
    )
    PARAMS = (
        Param("window_size", "float", 10.0,
              "disjoint window size / decay tau in seconds",
              check=check_positive),
        Param("phi", "float", 0.05, "HHH byte-share threshold",
              check=check_phi),
        Param("step", "float", 1.0, "truth sliding step / query period",
              check=check_positive),
        Param("counters_per_level", "int", 128,
              "sketch counters per hierarchy level", check=_check_counters),
        Param("seed", "int", 0, "RNG seed for the sampled detectors"),
    )
    default_trace = "caida:day=0,duration=60"
    smoke_trace = "caida:day=0,duration=12"
    smoke_overrides = {"window_size": 4.0}

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        harness = DecayComparisonExperiment(
            window_size=self.bound_params["window_size"],
            phi=self.bound_params["phi"],
            step=self.bound_params["step"],
            counters_per_level=self.bound_params["counters_per_level"],
            seed=self.bound_params["seed"],
        )
        comparison = harness.run(trace)
        rows = [score.to_dict() for score in comparison.scores]
        td = comparison.score_for("td-hhh")
        return self._finish(
            trace, label, rows,
            headline={
                "num_truth_occurrences": comparison.num_truth_occurrences,
                "num_hidden_occurrences": comparison.num_hidden_occurrences,
                "td_hidden_recall": round(td.hidden_recall, 3),
            },
            extras={"comparison": comparison},
        )
