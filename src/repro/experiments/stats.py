"""Trace statistics as a registry experiment.

Wraps :func:`repro.trace.stats.compute_stats` so any string-addressable
workload can be summarised (and archived as JSON) through the same ``run``
path as the paper experiments — useful when checking that a new scenario
preset actually has the properties an experiment assumes.
"""

from __future__ import annotations

from dataclasses import fields

from repro.experiments.base import Experiment, Param, check_positive
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.container import Trace
from repro.trace.spec import cache_info
from repro.trace.stats import compute_stats


@register_experiment
class TraceStatsExperiment(Experiment):
    """Descriptive statistics (tail, burstiness, rates) for one trace."""

    name = "trace-stats"
    description = (
        "descriptive trace statistics: volume, heavy-tail shares, "
        "burstiness"
    )
    PARAMS = (
        Param("rate_bin_s", "float", 1.0,
              "bin width for the rate-CV computation, seconds",
              check=check_positive),
    )
    default_trace = "caida:day=0,duration=60"
    smoke_trace = "caida:day=0,duration=5"

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        stats = compute_stats(trace, rate_bin_s=self.bound_params["rate_bin_s"])
        rows = [
            {"metric": f.name, "value": getattr(stats, f.name)}
            for f in fields(stats)
        ]
        # Build-path memoization counters, so sweeps that re-run on the
        # same spec can see whether they actually hit the trace cache.
        cache = cache_info()
        return self._finish(
            trace, label, rows,
            headline={
                "num_packets": stats.num_packets,
                "gini_coefficient": round(stats.gini_coefficient, 3),
                "trace_cache_hits": cache.hits,
                "trace_cache_misses": cache.misses,
            },
            extras={"stats": stats, "trace_cache": cache},
        )
