"""Registered meta-experiment: a budgeted equivalence-fuzz run.

Adapts :class:`repro.fuzz.FuzzHarness` to the uniform
:class:`Experiment` contract so the harness rides every registry-driven
surface — ``repro-hhh run equivalence-fuzz --set budget_s=30``, the CI
smoke loop (which archives ``BENCH_equivalence-fuzz.json``), and the
JSON result artifact.  Rows are per-(axis, detector) coverage cells; the
headline carries pair throughput and the divergence count — plus, when
anything diverged, the full ``repro-hhh/fuzz-case/v1`` documents under
``headline["cases"]``, so an archived ``BENCH_equivalence-fuzz.json``
alone is enough to replay a failure.  The in-process
:class:`~repro.fuzz.FuzzReport` rides in ``extras["report"]``.

The input trace is *ignored* — the plan space samples its own seeded
stream specs (that is the point: many workloads, not one).
``default_trace`` is a tiny calm preset so the uniform spec-to-artifact
path stays cheap.  The dedicated ``repro-hhh fuzz`` subcommand is the
full-featured driver (artifact directory, replay, exit codes).
"""

from __future__ import annotations

from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_positive,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.fuzz.harness import FuzzHarness
from repro.fuzz.plan import AXES, FuzzError
from repro.trace.container import Trace


def _check_axes(value: object) -> None:
    for axis in _split(value):
        if axis not in AXES:
            raise ValueError(
                f"unknown axis {axis!r}; known: {', '.join(AXES)}"
            )


def _split(value: object) -> list[str]:
    return [part.strip() for part in str(value).split(",") if part.strip()]


@register_experiment
class EquivalenceFuzzExperiment(Experiment):
    """Fuzz the promised equivalences across sampled interleavings (meta)."""

    name = "equivalence-fuzz"
    description = (
        "meta-experiment: sample promised-equivalent plan pairs (chunking, "
        "sharding, checkpoint/resume, serve-vs-serial, merge-order, "
        "serve tenant churn, serve worker crash), run both sides through "
        "the real stack, and shrink any divergence"
    )
    PARAMS = (
        Param("budget_s", "float", 20.0,
              "wall-clock fuzz budget in seconds", check=check_positive),
        Param("seed", "int", 0, "plan-space seed"),
        Param("pairs", "int", 0,
              "additional cap on plan pairs (0 = budget-bound only)"),
        Param("detectors", "str", "",
              "comma-separated registry names restricting the plan space "
              "(empty = all eligible)"),
        Param("axes", "str", "",
              "comma-separated equivalence axes (empty = all)",
              check=_check_axes),
        Param("shrink", "choice", "on",
              "minimise divergences before reporting",
              choices=("on", "off")),
    )
    default_trace = "calm:duration=2"
    smoke_trace = "calm:duration=2"
    smoke_overrides = {"budget_s": 5.0, "pairs": 40}

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        params = self.bound_params
        detectors = _split(params["detectors"]) or None
        axes = _split(params["axes"]) or None
        pairs = int(params["pairs"])
        try:
            harness = FuzzHarness(
                seed=int(params["seed"]),
                budget_s=float(params["budget_s"]),
                max_pairs=pairs if pairs > 0 else None,
                detectors=detectors,
                axes=axes,
                shrink=params["shrink"] == "on",
            )
            report = harness.run()
        except (FuzzError, KeyError) as exc:
            raise ExperimentError(str(exc)) from None
        headline = report.headline()
        if report.cases:
            # The serialized artifact must be self-sufficient for replay.
            headline["cases"] = [case.to_dict() for case in report.cases]
        return self._finish(
            trace, label, report.rows(),
            headline=headline,
            extras={"report": report},
        )
