"""Registry wrapper for Figure 3: window-size sensitivity.

Adapts :class:`repro.analysis.WindowSensitivityExperiment` to the uniform
:class:`Experiment` contract.  The rich per-delta sample sets (for CDF
plots) travel in ``result.extras["sensitivity"]``.
"""

from __future__ import annotations

from repro.analysis.sensitivity_experiment import (
    DEFAULT_DELTAS,
    WindowSensitivityExperiment,
)
from repro.experiments.base import (
    Experiment,
    Param,
    check_phi,
    check_positive,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.container import Trace


def _check_deltas(value: object) -> None:
    for delta in value:  # type: ignore[union-attr]
        check_positive(delta)


@register_experiment
class WindowSensitivity(Experiment):
    """Figure 3: Jaccard similarity of HHH sets under micro window shrinks."""

    name = "window-sensitivity"
    description = (
        "Figure 3 — Jaccard similarity of the HHH set when the window is "
        "shrunk by 10-100 ms"
    )
    PARAMS = (
        Param("baseline_size", "float", 10.0,
              "baseline window size in seconds", check=check_positive),
        Param("deltas", "floats", DEFAULT_DELTAS,
              "shrink deltas in seconds", check=_check_deltas),
        Param("phi", "float", 0.05, "HHH byte-share threshold",
              check=check_phi),
    )
    default_trace = "sensitivity:duration=240"
    smoke_trace = "sensitivity:duration=25"

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        harness = WindowSensitivityExperiment(
            baseline_size=self.bound_params["baseline_size"],
            deltas=self.bound_params["deltas"],
            phi=self.bound_params["phi"],
        )
        sensitivity = harness.run(trace)
        rows = [row.to_dict() for row in sensitivity.rows()]
        headline: dict[str, object] = {}
        if rows:
            worst = min(rows, key=lambda r: r["p70_jaccard"])
            headline = {
                "worst_delta_ms": worst["delta_ms"],
                "worst_p70_jaccard": worst["p70_jaccard"],
            }
        return self._finish(
            trace, label, rows,
            headline=headline,
            extras={"sensitivity": sensitivity},
        )
