"""Registered experiment: exact-truth accuracy for one named detector.

The registry face of :mod:`repro.analysis.accuracy`: score any enumerable
detector's report against exact ground truth on any string-addressable
trace, as deterministic precision/recall/F1 rows (fresh default-seeded
detector, exact columnar truth — no timing columns, so the same cell
always produces byte-identical rows).  This is the experiment a sweep
grid's ``detector`` axis naturally drives::

    repro-hhh sweep --grid "exp=detector-accuracy;trace=zipf:duration=30,ddos-burst:duration=30;detector=countmin-hh,spacesaving;phi=0.01,0.001"

One ``phi`` per run keeps cells independent; sweep the axis instead of
passing a list.  The registry-wide conformance suite
(``tests/core/test_accuracy_conformance.py``) runs the same harness
against the :class:`repro.core.AccuracyFloor` declared on each entry.
"""

from __future__ import annotations

from repro.analysis.accuracy import accuracy_row
from repro.core import get_enumerable_spec
from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_phi,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.container import Trace


@register_experiment
class DetectorAccuracy(Experiment):
    """Precision/recall/F1 of a registry detector vs exact ground truth."""

    name = "detector-accuracy"
    description = (
        "precision/recall/F1 of one enumerable detector against exact "
        "ground truth (truth mode from the registry's accuracy metadata)"
    )
    PARAMS = (
        Param("detector", "str", "countmin-hh",
              "registry name of an enumerable detector to score"),
        Param("phi", "float", 0.01,
              "heavy-hitter threshold as a fraction of total truth mass",
              check=check_phi),
        Param("key", "choice", "src", "trace column keying the detector",
              choices=("src", "dst")),
    )
    default_trace = "zipf:duration=30"
    smoke_trace = "zipf:duration=4"

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        spec = get_enumerable_spec(
            self.bound_params["detector"], error=ExperimentError
        )
        row = accuracy_row(
            spec, trace,
            phi=self.bound_params["phi"],
            key=self.bound_params["key"],
        )
        row = {"trace": label, **row}
        return self._finish(
            trace, label, [row],
            headline={
                "recall": row["recall"],
                "precision": row["precision"],
                "f1": row["f1"],
                "truth_size": row["truth_size"],
            },
        )
