"""Serve crash recovery: kill a worker mid-run, prove nothing was lost.

The supervision face of :mod:`repro.stream.serve`: several tenant streams
multiplex over a :class:`repro.engine.ServePool`, every tenant
auto-checkpoints (``checkpoint_every``), and at a deterministic scheduler
turn the experiment SIGKILLs one worker process via the pool's
crash-injection hook.  The runtime detects the death at the next pipe
operation, respawns the worker, rewinds each tenant to its last
checkpoint, and replays the gap from the deterministic source —
suppressing already-delivered emissions, so the consumer-visible stream
is exactly-once.

The experiment *asserts* the recovery contract rather than just timing
it: every tenant's full emission sequence must be byte-identical (modulo
wall-clock) to a serial :class:`repro.engine.ShardedDetector` pipeline
fed the same chunk grid with no crash anywhere.  A mismatch raises
:class:`ExperimentError` and fails the build.

Headline ``recovery_s`` is the supervised path's cost — respawn plus
checkpoint restore, excluding the replay (which runs at normal streaming
speed) — and is fenced by a *ceiling* in ``benchmarks/perf_floors.json``.
"""

from __future__ import annotations

import dataclasses
import time

from repro.core import get_enumerable_spec
from repro.engine.sharded import ShardedDetector
from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_min1,
    check_phi,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult, TraceProvenance
from repro.stream.emission import Emission, parse_emission_policy
from repro.stream.pipeline import StreamPipeline
from repro.stream.serve import ServeRuntime
from repro.stream.source import StreamSource, parse_stream_spec
from repro.trace.container import Trace


def _check_emit(value: object) -> None:
    parse_emission_policy(str(value))  # raises ValueError on bad spellings


def _strip(emission: Emission) -> Emission:
    return dataclasses.replace(emission, wall_s=0.0)


@register_experiment
class ServeRecovery(Experiment):
    """Worker-crash recovery over the serve runtime, equivalence-gated."""

    name = "serve-recovery"
    description = (
        "kill one shard worker mid-run; the supervised serve runtime "
        "respawns it, restores tenants from auto-checkpoints, and the "
        "emission stream stays byte-identical to an uninterrupted "
        "serial run"
    )
    PARAMS = (
        Param("detector", "str", "countmin-hh",
              "registry name of an enumerable detector to serve"),
        Param("tenants", "int", 2,
              "concurrent tenant streams multiplexed over the pool",
              check=check_min1),
        Param("workers", "int", 2,
              "persistent shard-worker processes", check=check_min1),
        Param("shards", "int", 2,
              "logical key-partitioned shards (>= workers)",
              check=check_min1),
        Param("chunk", "int", 4096,
              "packets per chunk and per shared-memory slot",
              check=check_min1),
        Param("emit", "str", "1s",
              "emission policy: 'Np' packets, 'Ts' trace seconds, or "
              "'window:T' driver-aligned", check=_check_emit),
        Param("phi", "float", 0.02,
              "report threshold as a fraction of each interval's bytes",
              check=check_phi),
        Param("key", "choice", "src", "trace column keying the detector",
              choices=("src", "dst")),
        Param("source", "str", "",
              "stream spec overriding the input trace (every tenant gets "
              "the same spec)"),
        Param("max_packets", "int", 100_000,
              "hard per-tenant packet cap", check=check_min1),
        Param("checkpoint_every", "int", 2,
              "auto-checkpoint cadence in emissions per tenant",
              check=check_min1),
        Param("kill_turn", "int", 3,
              "scheduler turn at which one worker is SIGKILLed",
              check=check_min1),
    )
    default_trace = "drift:duration=30"
    smoke_trace = "drift:duration=10"
    smoke_overrides = {
        "chunk": 2048, "max_packets": 10_000, "tenants": 2,
        "workers": 2, "shards": 2,
    }

    def _serial_reference(
        self, source: StreamSource, shards: int
    ) -> list[Emission]:
        """The uninterrupted serial run every tenant must reproduce."""
        spec = get_enumerable_spec(
            self.bound_params["detector"], error=ExperimentError
        )
        pipeline = StreamPipeline(
            ShardedDetector(spec.factory, shards),
            parse_emission_policy(self.bound_params["emit"]),
            phi=self.bound_params["phi"],
            key=self.bound_params["key"],
            timestamped=spec.timestamped,
        )
        emissions: list[Emission] = []
        remaining = self.bound_params["max_packets"]
        for chunk in source.chunks(self.bound_params["chunk"]):
            if len(chunk) > remaining:
                chunk = chunk.slice_index(0, remaining)
            remaining -= len(chunk)
            emissions.extend(pipeline.push(chunk))
            if remaining <= 0:
                break
        emissions.extend(pipeline.finish())
        return [_strip(e) for e in emissions]

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        from repro.stream.source import TraceSource

        workers = self.bound_params["workers"]
        shards = self.bound_params["shards"]
        if shards < workers:
            raise ExperimentError(
                f"shards ({shards}) must be >= workers ({workers})"
            )
        num_tenants = self.bound_params["tenants"]
        kill_turn = self.bound_params["kill_turn"]
        source_spec = self.bound_params["source"]

        def make_source() -> StreamSource:
            if source_spec:
                return parse_stream_spec(source_spec)
            return TraceSource(trace)

        reference = self._serial_reference(make_source(), shards)

        got: dict[str, list[Emission]] = {}
        runtime = ServeRuntime(
            workers=workers, shards=shards,
            chunk_size=self.bound_params["chunk"],
        )
        try:
            for i in range(num_tenants):
                name = f"t{i}"
                got[name] = []
                runtime.add_tenant(
                    name,
                    self.bound_params["detector"],
                    make_source(),
                    emit=self.bound_params["emit"],
                    phi=self.bound_params["phi"],
                    key=self.bound_params["key"],
                    max_packets=self.bound_params["max_packets"],
                    checkpoint_every=self.bound_params["checkpoint_every"],
                )

            def crash_injector(turn: int) -> None:
                if turn == kill_turn:
                    runtime.pool.kill_worker(kill_turn % workers)

            runtime.on_turn = crash_injector
            t0 = time.perf_counter()
            for tenant, emission in runtime.run():
                got[tenant].append(_strip(emission))
            wall = time.perf_counter() - t0
            if runtime.failed:
                raise ExperimentError(
                    f"tenant failures: {dict(runtime.failed)}"
                )
            if not runtime.recoveries:
                raise ExperimentError(
                    f"kill_turn {kill_turn} fired after the run ended; "
                    "no crash was injected — raise max_packets or lower "
                    "kill_turn"
                )
            total_packets = sum(
                runtime.pipeline(name).packets for name in runtime.tenants
            )
            recovery_s = sum(
                r["seconds"] for r in runtime.recoveries  # type: ignore
            )
            recoveries = list(runtime.recoveries)
        finally:
            runtime.close()

        rows: list[dict[str, object]] = []
        for name, emissions in got.items():
            equivalent = emissions == reference
            rows.append({
                "tenant": name,
                "packets": self.bound_params["max_packets"],
                "emissions": len(emissions),
                "equivalent": equivalent,
            })
            if not equivalent:
                raise ExperimentError(
                    f"tenant {name!r} diverged from the uninterrupted "
                    f"serial run after crash recovery "
                    f"({len(emissions)} vs {len(reference)} emissions)"
                )

        headline = {
            "tenants": num_tenants,
            "workers": workers,
            "shards": shards,
            "recoveries": len(recoveries),
            "recovery_s": round(recovery_s, 6),
            "equivalent": 1,
            "stream_packets": total_packets,
            "streaming_pps": int(total_packets / wall) if wall > 0 else 0,
        }
        result = self._finish(trace, label, rows, headline=headline)
        if source_spec:
            result.traces = [
                TraceProvenance(
                    label=label,
                    num_packets=total_packets,
                    duration_s=0.0,
                    total_bytes=0,
                    spec=source_spec,
                )
            ]
        return result
