"""Registry wrapper for Figure 2: percentage of hidden HHHs.

The computation lives in :class:`repro.analysis.HiddenHHHExperiment`; this
module adapts it to the uniform :class:`Experiment` contract so the CLI's
``run hidden-hhh`` path, the ``fig2`` alias, and the CI smoke job all share
one parameter schema and result artifact.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.hidden_experiment import HiddenHHHExperiment
from repro.experiments.base import (
    Experiment,
    Param,
    check_phi,
    check_positive,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.trace.container import Trace


def _check_thresholds(value: object) -> None:
    for phi in value:  # type: ignore[union-attr]
        check_phi(phi)


def _check_window_sizes(value: object) -> None:
    for size in value:  # type: ignore[union-attr]
        check_positive(size)


@register_experiment
class HiddenHHH(Experiment):
    """Figure 2: share of sliding-window HHHs disjoint windows miss."""

    name = "hidden-hhh"
    description = (
        "Figure 2 — % of sliding-window HHH detections that disjoint "
        "windows of the same size hide"
    )
    PARAMS = (
        Param("window_sizes", "floats", (5.0, 10.0, 20.0),
              "window sizes in seconds", check=_check_window_sizes),
        Param("thresholds", "floats", (0.01, 0.05, 0.10),
              "HHH byte-share thresholds (phi)", check=_check_thresholds),
        Param("step", "float", 1.0, "sliding-window step in seconds",
              check=check_positive),
        Param("mode", "choice", "unique",
              "accounting mode", choices=("unique", "occurrences")),
    )
    default_trace = "caida:day=0,duration=60"
    smoke_trace = "caida:day=0,duration=10"
    smoke_overrides = {"window_sizes": (5.0,), "thresholds": (0.05,)}

    def _harness(self) -> HiddenHHHExperiment:
        return HiddenHHHExperiment(
            window_sizes=self.bound_params["window_sizes"],
            thresholds=self.bound_params["thresholds"],
            step=self.bound_params["step"],
            mode=self.bound_params["mode"],
        )

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        result_set = self._harness().run(trace, label=label)
        rows = [row.to_dict() for row in result_set.rows]
        return self._finish(
            trace, label, rows,
            headline={
                "max_hidden_percent": round(
                    result_set.max_hidden_percent(), 1
                ),
            },
            extras={"result_set": result_set},
        )

    def combine_headlines(
        self, headlines: Sequence[dict[str, object]]
    ) -> dict[str, object]:
        """Pooling four days keeps the overall worst case (the paper's 34%)."""
        peaks = [h["max_hidden_percent"] for h in headlines if h]
        return {"max_hidden_percent": max(peaks)} if peaks else {}
