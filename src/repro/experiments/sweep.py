"""Registered meta-experiment: run a sweep grid as one experiment.

Adapts :mod:`repro.sweep` to the uniform :class:`Experiment` contract so
the sweep engine rides every registry-driven surface for free — ``repro-hhh
run sweep --set grid=...``, the CI smoke loop (which runs every registered
experiment and archives ``BENCH_sweep.json``), and the JSON result
artifact.  The rows are the sweep's flat per-cell view (identity + swept
params + headline metrics); the full ``repro-hhh/sweep-result/v1``
artifact rides in ``extras["sweep"]``.

The input trace is *ignored* — a sweep grid carries its own trace axis (or
falls back to each experiment's ``default_trace``); ``default_trace`` here
is just a tiny calm preset so the uniform spec-to-artifact path stays
cheap.  The dedicated ``repro-hhh sweep`` subcommand is the full-featured
driver (workers, pivot tables, best-cell selection).
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentError, Param, check_min1
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.trace.container import Trace

_DEFAULT_GRID = (
    "exp=detector-accuracy,trace-stats;"
    "trace=zipf:duration=8,calm:duration=8;"
    "detector=countmin-hh,spacesaving;phi=0.02"
)

_SMOKE_GRID = (
    "exp=detector-accuracy;trace=zipf:duration=3;"
    "detector=countmin-hh,spacesaving;phi=0.02"
)


def _check_grid(value: object) -> None:
    SweepSpec.parse(str(value))  # raises SweepError on bad grammar


@register_experiment
class SweepExperiment(Experiment):
    """Expand a parameter grid into cells and run them all (meta)."""

    name = "sweep"
    description = (
        "meta-experiment: expand a grid of experiment x trace x parameter "
        "cells and run each on the serial/process backend"
    )
    PARAMS = (
        Param("grid", "str", _DEFAULT_GRID,
              "sweep grid: 'exp=...;trace=...;param=v1,v2' "
              "(zip: prefix for zipped expansion)", check=_check_grid),
        Param("backend", "choice", "serial",
              "cell execution backend", choices=("serial", "process")),
        Param("workers", "int", 1,
              "process-pool workers for the process backend",
              check=check_min1),
    )
    default_trace = "calm:duration=2"
    smoke_trace = "calm:duration=2"
    smoke_overrides = {"grid": _SMOKE_GRID}

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        spec = SweepSpec.parse(self.bound_params["grid"])
        try:
            with SweepRunner(
                self.bound_params["backend"], self.bound_params["workers"]
            ) as runner:
                sweep = runner.run(spec)
        except ValueError as exc:
            raise ExperimentError(str(exc)) from None
        return self._finish(
            trace, label, sweep.rows(),
            headline={
                "num_cells": sweep.num_cells,
                "num_ok": sweep.num_ok,
                "num_errors": sweep.num_errors,
                "backend": sweep.backend,
                "cells_per_s": sweep.timings.get("cells_per_s", 0.0),
            },
            extras={"sweep": sweep},
        )
