"""Streaming replay: emission timeline, churn, and throughput as rows.

The experiment face of :mod:`repro.stream`: drive one registered detector
over a chunked stream with an online emission policy, and record one row
per emission — the report size, the churn relative to the previous
emission (Jaccard, entries/exits, rank displacement), and the ingest
throughput of the interval.  On a drift workload (the ``drift`` scenario's
calm → ddos-burst → calm splice) the churn columns flip on when the burst
regime arrives and off when it leaves — the online signature the offline
hidden-HHH experiments can only see in hindsight.

``--set source=SPEC`` replaces the input trace with any stream spec
(splices, overlays, ``repeat:`` infinite sources, ``@x`` rate rewrites);
``max_packets`` always bounds the run, which is what keeps infinite
sources finite in CI smoke runs.  ``shards``/``workers`` wrap the detector
in the key-partitioned sharded engine, so the pipeline exercises the same
fan-out path as the offline experiments.
"""

from __future__ import annotations

from repro.core import get_enumerable_spec
from repro.experiments.base import (
    Experiment,
    ExperimentError,
    Param,
    check_min1,
    check_phi,
)
from repro.experiments.registry import register_experiment
from repro.experiments.result import ExperimentResult, TraceProvenance
from repro.stream.churn import churn_series, emission_rows
from repro.stream.emission import parse_emission_policy
from repro.stream.pipeline import StreamPipeline, build_stream_detector
from repro.stream.source import TraceSource, parse_stream_spec
from repro.trace.container import Trace


def _check_emit(value: object) -> None:
    parse_emission_policy(str(value))  # raises ValueError on bad spellings


@register_experiment
class StreamReplay(Experiment):
    """Online emissions + churn + throughput for one streamed detector."""

    name = "stream-replay"
    description = (
        "chunked streaming: online report emissions with churn and "
        "throughput per interval"
    )
    PARAMS = (
        Param("detector", "str", "countmin-hh",
              "registry name of an enumerable detector to stream"),
        Param("chunk", "int", 8192, "packets per columnar chunk",
              check=check_min1),
        Param("emit", "str", "2s",
              "emission policy: 'Np' packets, 'Ts' trace seconds, or "
              "'window:T' driver-aligned", check=_check_emit),
        Param("phi", "float", 0.02,
              "report threshold as a fraction of each interval's bytes",
              check=check_phi),
        Param("key", "choice", "src", "trace column keying the detector",
              choices=("src", "dst")),
        Param("source", "str", "",
              "stream spec overriding the input trace (splice '+', "
              "interleave '&', 'repeat:' infinite, '@xF' rate rewrite)"),
        Param("max_packets", "int", 1_000_000,
              "hard packet cap (bounds infinite 'repeat:' sources)",
              check=check_min1),
        Param("shards", "int", 1,
              "key-partitioned shards wrapping the detector",
              check=check_min1),
        Param("workers", "int", 1,
              "process-pool workers for shard updates; 1 = serial",
              check=check_min1),
    )
    default_trace = "drift:duration=60"
    smoke_trace = "drift:duration=12"
    smoke_overrides = {
        "chunk": 2048, "emit": "1s", "max_packets": 30_000,
    }

    def run(self, trace: Trace, label: str = "trace") -> ExperimentResult:
        spec = get_enumerable_spec(
            self.bound_params["detector"], error=ExperimentError
        )
        source_spec = self.bound_params["source"]
        source = (
            parse_stream_spec(source_spec) if source_spec
            else TraceSource(trace)
        )
        detector, runner = build_stream_detector(
            spec,
            shards=self.bound_params["shards"],
            workers=self.bound_params["workers"],
        )
        pipeline = StreamPipeline(
            detector,
            parse_emission_policy(self.bound_params["emit"]),
            phi=self.bound_params["phi"],
            key=self.bound_params["key"],
            timestamped=spec.timestamped,
        )
        try:
            emissions = list(
                pipeline.process(
                    source,
                    self.bound_params["chunk"],
                    max_packets=self.bound_params["max_packets"],
                )
            )
        finally:
            if runner is not None:
                runner.close()

        churn = churn_series(emissions)
        rows = emission_rows(emissions)
        total_wall = sum(emission.wall_s for emission in emissions)
        flips = sum(
            1 for stats in churn[1:] if stats.flipped
        )
        headline = {
            "num_emissions": len(emissions),
            "stream_packets": pipeline.packets,
            "stream_bytes": pipeline.bytes,
            "chunks": pipeline.chunk_index,
            "streaming_pps": (
                int(pipeline.packets / total_wall) if total_wall > 0 else 0
            ),
            "churn_flips": flips,
            "mean_jaccard": round(
                sum(stats.jaccard for stats in churn) / len(churn), 3
            ) if churn else 1.0,
        }
        if source_spec:
            headline["source"] = source_spec
        result = self._finish(trace, label, rows, headline=headline,
                              extras={"emissions": emissions})
        if source_spec:
            # The stream replaced the input trace; make the provenance say
            # what was actually consumed.
            result.traces = [
                TraceProvenance(
                    label=label,
                    num_packets=pipeline.packets,
                    duration_s=round(
                        emissions[-1].window.t1 - emissions[0].window.t0, 3
                    ) if emissions else 0.0,
                    total_bytes=pipeline.bytes,
                    spec=source_spec,
                )
            ]
        return result
