"""repro — reproduction of *Revealing Hidden Hierarchical Heavy Hitters in
network traffic* (Galea et al., SIGCOMM Posters and Demos 2018).

The package provides, from the bottom up:

- :mod:`repro.core` — the unified :class:`~repro.core.Detector` contract
  (scalar + vectorized batch updates) and the string-keyed detector
  registry every other layer programs against;
- :mod:`repro.net` — IPv4 address and prefix algebra;
- :mod:`repro.hashing` — seeded, deterministic hash families for sketches;
- :mod:`repro.packet` — packet records, flow keys and pcap I/O;
- :mod:`repro.trace` — synthetic Tier-1-like trace generation (the CAIDA
  substitute) and trace statistics;
- :mod:`repro.hierarchy` — prefix hierarchies (1D and 2D);
- :mod:`repro.hhh` — exact heavy-hitter and hierarchical-heavy-hitter
  ground-truth algorithms;
- :mod:`repro.windows` — the three window models of the paper's Figure 1
  (disjoint, sliding, micro-shrunk) and streaming drivers;
- :mod:`repro.stream` — the streaming runtime: chunked unbounded
  ingestion (finite traces, infinite synthetic scenarios, drift splices),
  online report emission with churn accounting, and pipeline
  checkpoint/restore;
- :mod:`repro.sketch` — the prior-work detectors the poster positions itself
  against (Count-Min, Space-Saving, HashPipe, RHHH, ...);
- :mod:`repro.decay` — the direction the paper advocates in Section 3:
  time-decaying Bloom filters and a windowless time-decaying HHH detector;
- :mod:`repro.dataplane` — a match-action pipeline resource model used to
  judge "match-action friendliness";
- :mod:`repro.metrics` and :mod:`repro.analysis` — the measurement
  methodology itself: hidden-HHH accounting (Figure 2), window-size
  sensitivity (Figure 3) and the Section 3 comparison.

Quickstart::

    from repro import presets, HiddenHHHExperiment

    trace = presets.caida_like_day(day=0, duration=60.0)
    exp = HiddenHHHExperiment(window_sizes=(5.0,), thresholds=(0.05,))
    result = exp.run(trace)
    print(result.to_table())
"""

from repro.core import Detector, detector_names, make_detector
from repro.net import IPv4Address, Prefix
from repro.packet import Packet
from repro.hierarchy import SourceHierarchy
from repro.hhh import ExactHHH, HHHResult, exact_heavy_hitters
from repro.windows import DisjointWindows, SlidingWindows, NestedShrunkWindows
from repro.decay import TimeDecayingBloomFilter, TimeDecayingHHH
from repro.analysis import (
    HiddenHHHExperiment,
    WindowSensitivityExperiment,
    DecayComparisonExperiment,
)
from repro.trace import presets

__version__ = "1.0.0"

__all__ = [
    "Detector",
    "detector_names",
    "make_detector",
    "IPv4Address",
    "Prefix",
    "Packet",
    "SourceHierarchy",
    "ExactHHH",
    "HHHResult",
    "exact_heavy_hitters",
    "DisjointWindows",
    "SlidingWindows",
    "NestedShrunkWindows",
    "TimeDecayingBloomFilter",
    "TimeDecayingHHH",
    "HiddenHHHExperiment",
    "WindowSensitivityExperiment",
    "DecayComparisonExperiment",
    "presets",
    "__version__",
]
