"""Randomized HHH (Ben Basat et al., SIGCOMM 2017), simplified.

RHHH keeps one heavy-hitter summary (Space-Saving here) per hierarchy
level.  Per packet it draws one level uniformly at random and updates only
that level's summary with the packet's generalized key — a constant-time
update, which is what made HHH feasible at line rate and in data planes.
Estimates are scaled back up by the number of levels.

Level draws come from a counter-indexed splitmix64 stream: draw ``i`` is
``splitmix64(base + i) mod num_levels``.  The stream is deterministic
under the seed, identical whether packets arrive one at a time or as a
columnar batch, and vectorizes — the batch path materialises the level
column for the whole chunk and fans each level's packets into that level's
Space-Saving batch update.

At query time, HHHs are extracted bottom-up with conditioned counts: a
prefix's estimate is discounted by the scaled estimates of the HHHs already
declared below it, mirroring the exact semantics of
:class:`repro.hhh.ExactHHH` (we omit the paper's Z-score confidence
correction; with byte weights and laptop-scale streams the plain estimator
is the behaviourally relevant part).
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.registry import AccuracyFloor, register_detector
from repro.hashing.mixers import splitmix64, splitmix64_array
from repro.hhh.exact_hhh import HHHItem, HHHResult
from repro.hierarchy.domain import SourceHierarchy
from repro.sketch.spacesaving import SpaceSaving


_SCALAR_CUTOFF = 16


def _sampler_base(seed: int) -> int:
    """Stream base for the counter-indexed level sampler."""
    return splitmix64(seed ^ 0x9E3779B97F4A7C15)


class RHHH(Detector):
    """Per-level Space-Saving with randomised level updates."""

    def __init__(
        self,
        hierarchy: SourceHierarchy | None = None,
        counters_per_level: int = 256,
        seed: int = 0,
        sample_levels: bool = True,
    ) -> None:
        self.hierarchy = hierarchy or SourceHierarchy()
        if counters_per_level < 1:
            raise ValueError(
                f"counters_per_level must be >= 1, got {counters_per_level}"
            )
        self.counters_per_level = counters_per_level
        self.seed = seed
        self._levels = [
            SpaceSaving(counters_per_level)
            for _ in range(self.hierarchy.num_levels)
        ]
        self._sbase = _sampler_base(seed)
        self._draws = 0
        self.sample_levels = sample_levels
        self.total = 0
        self.updates = 0

    def _draw_level(self) -> int:
        """Next level in the deterministic sampling stream."""
        level = splitmix64(self._sbase + self._draws) % self.hierarchy.num_levels
        self._draws += 1
        return level

    def update(self, key: int, weight: float = 1, ts: float = 0.0) -> None:
        """Account one packet (updates one sampled level, or all levels when
        ``sample_levels`` is off)."""
        self.total += weight
        if self.sample_levels:
            level = self._draw_level()
            self._levels[level].update(
                self.hierarchy.generalize(key, level), weight
            )
            self.updates += 1
        else:
            for level in range(self.hierarchy.num_levels):
                self._levels[level].update(
                    self.hierarchy.generalize(key, level), weight
                )
                self.updates += 1

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update: draw the whole level column at once and
        fan each level's packets into that level's batch update."""
        keys, weights, _ = as_batch(keys, weights, ts)
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights)
        num_levels = self.hierarchy.num_levels
        if self.sample_levels:
            draws = np.arange(
                self._draws, self._draws + n, dtype=np.uint64
            ) + np.uint64(self._sbase)
            levels = splitmix64_array(draws) % np.uint64(num_levels)
            self._draws += n
            for level in range(num_levels):
                chosen = levels == level
                if chosen.any():
                    self._levels[level].update_batch(
                        self.hierarchy.generalize_array(ku[chosen], level),
                        w[chosen],
                    )
            self.updates += n
        else:
            for level in range(num_levels):
                self._levels[level].update_batch(
                    self.hierarchy.generalize_array(ku, level), w
                )
            self.updates += n * num_levels
        self.total += w.sum().item()

    def _scale(self) -> float:
        """Estimate scale-up factor under level sampling."""
        return float(self.hierarchy.num_levels) if self.sample_levels else 1.0

    def estimate(self, key: int, level: int) -> float:
        """Scaled volume estimate for ``key`` generalized at ``level``."""
        value = self.hierarchy.generalize(key, level)
        return self._levels[level].estimate(value) * self._scale()

    def query_hhh(self, threshold: float) -> HHHResult:
        """Extract HHHs with conditioned (discounted) estimates."""
        if threshold <= 0:
            return HHHResult((), max(threshold, 0.0), self.total)
        hierarchy = self.hierarchy
        scale = self._scale()
        items: list[HHHItem] = []
        # Discount mass accumulated from declared HHHs, keyed by the value
        # they generalise to at each upper level.
        declared: list[tuple[int, float]] = []  # (leaf-masked value, volume)
        for level in range(hierarchy.num_levels):
            summary = self._levels[level]
            for value, count in summary.items().items():
                estimate = count * scale
                discount = sum(
                    volume
                    for masked, volume in declared
                    if hierarchy.generalize(masked, level) == value
                )
                conditioned = estimate - discount
                if conditioned >= threshold:
                    prefix = hierarchy.prefix_at(value, level)
                    items.append(HHHItem(prefix, int(conditioned)))
                    declared.append((value, conditioned))
        items.sort()
        return HHHResult(tuple(items), threshold, self.total)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Leaf-level heavy keys (StreamingDetector protocol)."""
        leaf = self._levels[0]
        scale = self._scale()
        return {
            key: count * scale
            for key, count in leaf.items().items()
            if count * scale >= threshold
        }

    def reset(self) -> None:
        """Reset every level and rewind the level-sampling stream."""
        for level in self._levels:
            level.reset()
        self._draws = 0
        self.total = 0
        self.updates = 0

    @property
    def num_counters(self) -> int:
        """Counters across all levels (for resource accounting)."""
        return sum(level.num_counters for level in self._levels)


register_detector(
    "rhhh", RHHH,
    description="Randomized HHH (per-level Space-Saving; vectorized batch)",
    probe=lambda det, key, now: det.estimate(key, 0),
    accuracy=AccuracyFloor(recall=0.70, f1=0.70),
)
