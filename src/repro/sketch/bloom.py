"""Standard Bloom filter.

The membership substrate that Section 3's time-decaying extension builds
on; also used by tests as the non-decaying baseline whose saturation
behaviour motivates windowed resets in the first place.

The bit array is packed numpy uint8, so batch insertion is a vectorized
``np.bitwise_or.at`` scatter per hash function.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.detector import Detector, as_batch, as_uint64_keys
from repro.core.registry import register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family


def optimal_parameters(
    expected_items: int, false_positive_rate: float
) -> tuple[int, int]:
    """Optimal (bits, hashes) for a target false-positive rate.

    >>> bits, hashes = optimal_parameters(1000, 0.01)
    >>> bits > 9000 and hashes == 7
    True
    """
    if expected_items < 1:
        raise ValueError("expected_items must be >= 1")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = math.ceil(
        -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    )
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return bits, hashes


class BloomFilter(Detector):
    """Fixed-size bit array with ``hashes`` independent hash functions."""

    def __init__(
        self,
        bits: int = 8192,
        hashes: int = 4,
        family: HashFamily | None = None,
    ) -> None:
        if bits < 1 or hashes < 1:
            raise ValueError(f"need bits, hashes >= 1; got {bits}, {hashes}")
        self.bits = bits
        self.hashes = hashes
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, bits) for i in range(hashes)]
        self._vfuncs = [family.function_array(i, bits) for i in range(hashes)]
        self._array = np.zeros((bits + 7) // 8, dtype=np.uint8)
        self.inserted = 0

    @classmethod
    def for_capacity(
        cls,
        expected_items: int,
        false_positive_rate: float = 0.01,
        family: HashFamily | None = None,
    ) -> "BloomFilter":
        """A filter sized for ``expected_items`` at the target FP rate."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes, family)

    def add(self, key: int) -> None:
        """Insert ``key``."""
        for f in self._funcs:
            i = f(key)
            self._array[i >> 3] |= 1 << (i & 7)
        self.inserted += 1

    def update(self, key: int, weight: float = 1, ts: float = 0.0) -> None:
        """Detector protocol: insert ``key`` (weight is ignored)."""
        self.add(key)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized batch insertion (one bit-OR scatter per function)."""
        keys, _, _ = as_batch(keys, weights, ts)
        keys = as_uint64_keys(keys)
        for vf in self._vfuncs:
            idx = vf(keys)
            np.bitwise_or.at(
                self._array,
                (idx >> np.uint64(3)).astype(np.intp),
                (np.uint8(1) << (idx & np.uint64(7)).astype(np.uint8)),
            )
        self.inserted += len(keys)

    def __contains__(self, key: int) -> bool:
        return all(
            self._array[(i := f(key)) >> 3] & (1 << (i & 7)) for f in self._funcs
        )

    def estimate(self, key: int) -> float:
        """Membership indicator (1.0 when possibly present, else 0.0)."""
        return 1.0 if key in self else 0.0

    def reset(self) -> None:
        """Clear every bit, keeping the hash functions."""
        self._array.fill(0)
        self.inserted = 0

    def merge(self, other: "Detector") -> None:
        """Bitwise OR (same geometry and family required)."""
        if not isinstance(other, BloomFilter) or (
            other.bits != self.bits or other.hashes != self.hashes
            or other._funcs != self._funcs
        ):
            raise ValueError(
                "can only merge BloomFilter of equal geometry and hash "
                "functions"
            )
        np.bitwise_or(self._array, other._array, out=self._array)
        self.inserted += other.inserted

    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation indicator)."""
        return int(np.unpackbits(self._array).sum()) / self.bits

    def expected_false_positive_rate(self) -> float:
        """FP probability implied by the current fill ratio."""
        return self.fill_ratio() ** self.hashes

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return int(self._array.nbytes)

    @property
    def num_counters(self) -> int:
        """Bits allocated (for resource accounting)."""
        return self.bits


register_detector(
    "bloom", BloomFilter, enumerable=False, mergeable=True,
    description="Bloom filter membership (vectorized batch insertion)",
    probe=lambda det, key, now: 1.0 if key in det else 0.0,
)
