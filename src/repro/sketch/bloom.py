"""Standard Bloom filter.

The membership substrate that Section 3's time-decaying extension builds
on; also used by tests as the non-decaying baseline whose saturation
behaviour motivates windowed resets in the first place.
"""

from __future__ import annotations

import math

from repro.hashing.families import HashFamily, pairwise_indep_family


def optimal_parameters(
    expected_items: int, false_positive_rate: float
) -> tuple[int, int]:
    """Optimal (bits, hashes) for a target false-positive rate.

    >>> bits, hashes = optimal_parameters(1000, 0.01)
    >>> bits > 9000 and hashes == 7
    True
    """
    if expected_items < 1:
        raise ValueError("expected_items must be >= 1")
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = math.ceil(
        -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
    )
    hashes = max(1, round(bits / expected_items * math.log(2)))
    return bits, hashes


class BloomFilter:
    """Fixed-size bit array with ``hashes`` independent hash functions."""

    def __init__(
        self,
        bits: int = 8192,
        hashes: int = 4,
        family: HashFamily | None = None,
    ) -> None:
        if bits < 1 or hashes < 1:
            raise ValueError(f"need bits, hashes >= 1; got {bits}, {hashes}")
        self.bits = bits
        self.hashes = hashes
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, bits) for i in range(hashes)]
        self._array = bytearray((bits + 7) // 8)
        self.inserted = 0

    @classmethod
    def for_capacity(
        cls,
        expected_items: int,
        false_positive_rate: float = 0.01,
        family: HashFamily | None = None,
    ) -> "BloomFilter":
        """A filter sized for ``expected_items`` at the target FP rate."""
        bits, hashes = optimal_parameters(expected_items, false_positive_rate)
        return cls(bits, hashes, family)

    def add(self, key: int) -> None:
        """Insert ``key``."""
        for f in self._funcs:
            i = f(key)
            self._array[i >> 3] |= 1 << (i & 7)
        self.inserted += 1

    def __contains__(self, key: int) -> bool:
        return all(
            self._array[(i := f(key)) >> 3] & (1 << (i & 7)) for f in self._funcs
        )

    def fill_ratio(self) -> float:
        """Fraction of bits set (saturation indicator)."""
        set_bits = sum(bin(b).count("1") for b in self._array)
        return set_bits / self.bits

    def expected_false_positive_rate(self) -> float:
        """FP probability implied by the current fill ratio."""
        return self.fill_ratio() ** self.hashes

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._array)
