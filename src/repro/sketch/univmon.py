"""UnivMon-style universal sketching (Liu et al., SIGCOMM 2016).

Reference [4] of the paper.  UnivMon maintains ``levels`` Count-Sketches;
a key is sampled into level ``i`` when ``i`` independent hash bits of the
key are all 1 (so level i sees a ~2^-i subsample of the key space).  From
the per-level top-k views, any G-sum statistic can be estimated by the
recursive universal-sketching combination; for this library the relevant
outputs are heavy hitters (the per-window detector role UnivMon plays in
the paper's framing) and entropy (the canonical "one sketch, many tasks"
demonstration).

Per-level candidate keys are tracked by small Space-Saving summaries fed
the raw packet stream; estimates are always read back from the
Count-Sketches at query time.  Both the per-level sketches and the
candidate trackers consume the identical (key, weight) subsequence
whether packets arrive one at a time or as a columnar batch, so the batch
path is observationally equivalent to the scalar one.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.registry import AccuracyFloor, register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family
from repro.sketch.countsketch import CountSketch
from repro.sketch.spacesaving import SpaceSaving

_SCALAR_CUTOFF = 16


class UnivMon(Detector):
    """Universal sketch: layered, subsampled Count-Sketches + candidates.

    The batch path assigns every packet its deepest sampled level with the
    vectorized sample-bit hashes, then fans the ``depth >= level`` subset
    of the chunk into each level's Count-Sketch and Space-Saving batch
    updates.
    """

    def __init__(
        self,
        levels: int = 8,
        width: int = 512,
        rows: int = 5,
        top_k: int = 64,
        family: HashFamily | None = None,
    ) -> None:
        if levels < 1:
            raise ValueError(f"need at least one level, got {levels}")
        self.levels = levels
        self.top_k = top_k
        family = family or pairwise_indep_family()
        self._sample_bits = [
            family.function(1000 + i, 2) for i in range(levels - 1)
        ]
        self._vsample_bits = [
            family.function_array(1000 + i, 2) for i in range(levels - 1)
        ]
        self._sketches = [
            CountSketch(width=width, rows=rows, family=family)
            for _ in range(levels)
        ]
        self._trackers = [SpaceSaving(top_k) for _ in range(levels)]
        self.total = 0

    def _level_of(self, key: int) -> int:
        """Deepest level the key is sampled into (level 0 sees all)."""
        level = 0
        for bit in self._sample_bits:
            if bit(key) == 0:
                break
            level += 1
        return level

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Account one packet: update levels 0..level_of(key)."""
        self.total += weight
        deepest = self._level_of(key)
        for level in range(deepest + 1):
            self._sketches[level].update(key, weight)
            self._trackers[level].update(key, weight)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update: per-packet sampling depth, then a
        per-level fan-out into sketch and tracker batch updates."""
        keys, weights, _ = as_batch(keys, weights, ts)
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights)
        depth = np.zeros(n, dtype=np.int64)
        alive = np.ones(n, dtype=bool)
        for vbit in self._vsample_bits:
            alive = alive & (vbit(ku) == 1)
            if not alive.any():
                break
            depth += alive
        for level in range(self.levels):
            mask = depth >= level
            if not mask.any():
                break
            self._sketches[level].update_batch(ku[mask], w[mask])
            self._trackers[level].update_batch(ku[mask], w[mask])
        self.total += w.sum().item()

    def estimate(self, key: int) -> float:
        """Point estimate from the level-0 Count-Sketch."""
        return self._sketches[0].estimate(key)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Heavy keys (StreamingDetector protocol): level-0 candidates."""
        out: dict[int, float] = {}
        for key in self._trackers[0].items():
            estimate = self._sketches[0].estimate(key)
            if estimate >= threshold:
                out[key] = estimate
        return out

    def g_sum(self, g) -> float:
        """Universal-sketching estimator of ``sum(g(count))`` over keys.

        Uses the standard recursion: Y_L = sum over level-L top keys;
        Y_i = 2 * Y_{i+1} + sum over level-i top keys of g(w) * (1 - 2 *
        sampled_deeper(key)).
        """
        deepest = self.levels - 1
        y = 0.0
        for level in range(deepest, -1, -1):
            contribution = 0.0
            for key in self._trackers[level].items():
                w = self._sketches[level].estimate(key)
                if w <= 0:
                    continue
                if level == deepest:
                    contribution += g(w)
                else:
                    goes_deeper = self._sample_bits[level](key) == 1
                    contribution += g(w) * (1.0 - 2.0 * goes_deeper)
            y = contribution if level == deepest else 2.0 * y + contribution
        return max(y, 0.0)

    def entropy(self) -> float:
        """Empirical Shannon entropy estimate of the key distribution."""
        if self.total <= 0:
            return 0.0
        total = float(self.total)
        plogp = self.g_sum(lambda w: w * math.log2(w))
        return max(0.0, math.log2(total) - plogp / total)

    def cardinality(self) -> float:
        """Distinct-key (L0) estimate via g(w) = 1."""
        return self.g_sum(lambda w: 1.0)

    def reset(self) -> None:
        """Reset every level sketch and candidate tracker."""
        for sketch in self._sketches:
            sketch.reset()
        for tracker in self._trackers:
            tracker.reset()
        self.total = 0

    @property
    def num_counters(self) -> int:
        """Counters across all levels (for resource accounting)."""
        return sum(s.num_counters for s in self._sketches)


register_detector(
    "univmon", UnivMon,
    description="UnivMon universal sketch (vectorized level fan-out batch)",
    accuracy=AccuracyFloor(recall=0.85, f1=0.90),
)
