"""UnivMon-style universal sketching (Liu et al., SIGCOMM 2016).

Reference [4] of the paper.  UnivMon maintains ``levels`` Count-Sketches;
a key is sampled into level ``i`` when ``i`` independent hash bits of the
key are all 1 (so level i sees a ~2^-i subsample of the key space).  From
the per-level top-k views, any G-sum statistic can be estimated by the
recursive universal-sketching combination; for this library the relevant
outputs are heavy hitters (the per-window detector role UnivMon plays in
the paper's framing) and entropy (the canonical "one sketch, many tasks"
demonstration).
"""

from __future__ import annotations

import math

from repro.core.detector import Detector
from repro.core.registry import AccuracyFloor, register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family
from repro.sketch.countsketch import CountSketch


class _TopK:
    """A small exact top-k tracker refreshed from sketch estimates."""

    def __init__(self, k: int) -> None:
        self.k = k
        self.estimates: dict[int, float] = {}

    def offer(self, key: int, estimate: float) -> None:
        self.estimates[key] = estimate
        if len(self.estimates) > 4 * self.k:
            self._shrink()

    def _shrink(self) -> None:
        keep = sorted(
            self.estimates.items(), key=lambda kv: kv[1], reverse=True
        )[: self.k]
        self.estimates = dict(keep)

    def top(self) -> dict[int, float]:
        self._shrink()
        return dict(self.estimates)


class UnivMon(Detector):
    """Universal sketch: layered, subsampled Count-Sketches + top-k.

    Each update refreshes top-k trackers with post-update estimates, a
    sequential dependency; the batch path is the exact scalar replay
    inherited from :class:`repro.core.Detector`.
    """

    def __init__(
        self,
        levels: int = 8,
        width: int = 512,
        rows: int = 5,
        top_k: int = 64,
        family: HashFamily | None = None,
    ) -> None:
        if levels < 1:
            raise ValueError(f"need at least one level, got {levels}")
        self.levels = levels
        self.top_k = top_k
        family = family or pairwise_indep_family()
        self._sample_bits = [
            family.function(1000 + i, 2) for i in range(levels - 1)
        ]
        self._sketches = [
            CountSketch(width=width, rows=rows, family=family)
            for _ in range(levels)
        ]
        self._tops = [_TopK(top_k) for _ in range(levels)]
        self.total = 0

    def _level_of(self, key: int) -> int:
        """Deepest level the key is sampled into (level 0 sees all)."""
        level = 0
        for bit in self._sample_bits:
            if bit(key) == 0:
                break
            level += 1
        return level

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Account one packet: update levels 0..level_of(key)."""
        self.total += weight
        deepest = self._level_of(key)
        for level in range(deepest + 1):
            sketch = self._sketches[level]
            sketch.update(key, weight)
            self._tops[level].offer(key, sketch.estimate(key))

    def estimate(self, key: int) -> float:
        """Point estimate from the level-0 Count-Sketch."""
        return self._sketches[0].estimate(key)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Heavy keys (StreamingDetector protocol): level-0 top-k filter."""
        out: dict[int, float] = {}
        for key in self._tops[0].top():
            estimate = self._sketches[0].estimate(key)
            if estimate >= threshold:
                out[key] = estimate
        return out

    def g_sum(self, g) -> float:
        """Universal-sketching estimator of ``sum(g(count))`` over keys.

        Uses the standard recursion: Y_L = sum over level-L top keys;
        Y_i = 2 * Y_{i+1} + sum over level-i top keys of g(w) * (1 - 2 *
        sampled_deeper(key)).
        """
        deepest = self.levels - 1
        y = 0.0
        for level in range(deepest, -1, -1):
            contribution = 0.0
            for key, _ in self._tops[level].top().items():
                w = self._sketches[level].estimate(key)
                if w <= 0:
                    continue
                if level == deepest:
                    contribution += g(w)
                else:
                    goes_deeper = self._sample_bits[level](key) == 1
                    contribution += g(w) * (1.0 - 2.0 * goes_deeper)
            y = contribution if level == deepest else 2.0 * y + contribution
        return max(y, 0.0)

    def entropy(self) -> float:
        """Empirical Shannon entropy estimate of the key distribution."""
        if self.total <= 0:
            return 0.0
        total = float(self.total)
        plogp = self.g_sum(lambda w: w * math.log2(w))
        return max(0.0, math.log2(total) - plogp / total)

    def cardinality(self) -> float:
        """Distinct-key (L0) estimate via g(w) = 1."""
        return self.g_sum(lambda w: 1.0)

    def reset(self) -> None:
        """Reset every level sketch and top-k tracker."""
        for sketch in self._sketches:
            sketch.reset()
        self._tops = [_TopK(self.top_k) for _ in range(self.levels)]
        self.total = 0

    @property
    def num_counters(self) -> int:
        """Counters across all levels (for resource accounting)."""
        return sum(s.num_counters for s in self._sketches)


register_detector(
    "univmon", UnivMon,
    description="UnivMon universal sketch (scalar-replay batch)",
    accuracy=AccuracyFloor(recall=0.85, f1=0.90),
)
