"""Counting Bloom filter.

Each cell is a small counter instead of a bit, so deletions are possible
and the *minimum* cell value doubles as a Count-Min-style frequency
overestimate.  This is the stepping stone between the plain Bloom filter
and the time-decaying variant of Section 3 (which replaces "decrement on
delete" with "decay with time").

Cells are a numpy int64 array, so batch insertion is one ``np.add.at``
scatter per hash function.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.registry import register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family


class CountingBloomFilter(Detector):
    """Bloom filter with integer cells supporting add/remove/estimate."""

    def __init__(
        self,
        cells: int = 8192,
        hashes: int = 4,
        family: HashFamily | None = None,
    ) -> None:
        if cells < 1 or hashes < 1:
            raise ValueError(f"need cells, hashes >= 1; got {cells}, {hashes}")
        self.cells = cells
        self.hashes = hashes
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, cells) for i in range(hashes)]
        self._vfuncs = [family.function_array(i, cells) for i in range(hashes)]
        self._array = np.zeros(cells, dtype=np.int64)

    def add(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` to ``key``'s cells."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        for f in self._funcs:
            self._array[f(key)] += weight

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Detector protocol: alias of :meth:`add`."""
        self.add(key, weight)

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized batch insertion (one scatter-add per function)."""
        keys, weights, _ = as_batch(keys, weights, ts)
        keys = as_uint64_keys(keys)
        weights = ensure_nonnegative_weights(weights).astype(np.int64)
        for vf in self._vfuncs:
            np.add.at(self._array, vf(keys), weights)

    def remove(self, key: int, weight: int = 1) -> None:
        """Subtract ``weight`` from ``key``'s cells (floored at zero).

        Removing keys that were never added can produce false negatives,
        as with any counting Bloom filter; callers own that contract.
        """
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        for f in self._funcs:
            i = f(key)
            self._array[i] = max(0, int(self._array[i]) - weight)

    def estimate(self, key: int) -> int:
        """Count-Min style overestimate: the minimum cell value."""
        return int(min(self._array[f(key)] for f in self._funcs))

    def __contains__(self, key: int) -> bool:
        return self.estimate(key) > 0

    def reset(self) -> None:
        """Zero every cell, keeping the hash functions."""
        self._array.fill(0)

    def merge(self, other: "Detector") -> None:
        """Elementwise sum (same geometry and family required)."""
        if not isinstance(other, CountingBloomFilter) or (
            other.cells != self.cells or other.hashes != self.hashes
            or other._funcs != self._funcs
        ):
            raise ValueError(
                "can only merge CountingBloomFilter of equal geometry and "
                "hash functions"
            )
        self._array += other._array

    @property
    def num_counters(self) -> int:
        """Cells allocated (for resource accounting)."""
        return self.cells


register_detector(
    "counting-bloom", CountingBloomFilter, enumerable=False, mergeable=True,
    description="Counting Bloom filter (vectorized batch insertion)",
)
