"""Counting Bloom filter.

Each cell is a small counter instead of a bit, so deletions are possible
and the *minimum* cell value doubles as a Count-Min-style frequency
overestimate.  This is the stepping stone between the plain Bloom filter
and the time-decaying variant of Section 3 (which replaces "decrement on
delete" with "decay with time").
"""

from __future__ import annotations

from repro.hashing.families import HashFamily, pairwise_indep_family


class CountingBloomFilter:
    """Bloom filter with integer cells supporting add/remove/estimate."""

    def __init__(
        self,
        cells: int = 8192,
        hashes: int = 4,
        family: HashFamily | None = None,
    ) -> None:
        if cells < 1 or hashes < 1:
            raise ValueError(f"need cells, hashes >= 1; got {cells}, {hashes}")
        self.cells = cells
        self.hashes = hashes
        family = family or pairwise_indep_family()
        self._funcs = [family.function(i, cells) for i in range(hashes)]
        self._array = [0] * cells

    def add(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` to ``key``'s cells."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        for f in self._funcs:
            self._array[f(key)] += weight

    def remove(self, key: int, weight: int = 1) -> None:
        """Subtract ``weight`` from ``key``'s cells (floored at zero).

        Removing keys that were never added can produce false negatives,
        as with any counting Bloom filter; callers own that contract.
        """
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        for f in self._funcs:
            i = f(key)
            self._array[i] = max(0, self._array[i] - weight)

    def estimate(self, key: int) -> int:
        """Count-Min style overestimate: the minimum cell value."""
        return min(self._array[f(key)] for f in self._funcs)

    def __contains__(self, key: int) -> bool:
        return self.estimate(key) > 0

    @property
    def num_counters(self) -> int:
        """Cells allocated (for resource accounting)."""
        return self.cells
