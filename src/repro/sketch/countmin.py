"""Count-Min sketch (Cormode & Muthukrishnan 2005).

``rows x width`` counters; each row hashes the key independently and the
estimate is the minimum over rows, giving a one-sided overestimate with
error at most ``e * N / width`` with probability ``1 - e^-rows``.

The counter table is a numpy ``(rows, width)`` int64 array, so
``update_batch`` is a true vectorized fast path: one array hash per row and
one ``np.add.at`` scatter for a whole columnar batch of packets.
Conservative update is inherently sequential (each packet's write depends
on the estimate after the previous one), so that variant keeps the exact
scalar replay.

A plain Count-Min cannot *enumerate* heavy keys, so
:class:`CountMinHeavyHitters` pairs it with a candidate map of keys whose
estimate has ever crossed a tracking threshold — the standard arrangement
used when a Count-Min backs a heavy-hitter report.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.flat_table import grouped_cumsum
from repro.core.registry import AccuracyFloor, register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family

_SCALAR_CUTOFF = 16


class CountMinSketch(Detector):
    """The counter array; supports point, batch, and point-query access."""

    def __init__(
        self,
        width: int = 1024,
        rows: int = 4,
        family: HashFamily | None = None,
        conservative: bool = False,
    ) -> None:
        if width < 1 or rows < 1:
            raise ValueError(f"need width, rows >= 1; got {width}x{rows}")
        self.width = width
        self.rows = rows
        self.conservative = conservative
        family = family or pairwise_indep_family()
        self._hashes = [family.function(r, width) for r in range(rows)]
        self._vhashes = [family.function_array(r, width) for r in range(rows)]
        self._table = np.zeros((rows, width), dtype=np.int64)
        self.total = 0

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Add ``weight`` to ``key``'s counters."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        if self.conservative:
            # Conservative update: raise only the minimal counters.
            cells = [(row, h(key)) for row, h in zip(self._table, self._hashes)]
            new_estimate = min(int(row[i]) for row, i in cells) + weight
            for row, i in cells:
                if row[i] < new_estimate:
                    row[i] = new_estimate
        else:
            for row, h in zip(self._table, self._hashes):
                row[h(key)] += weight

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized scatter update (scalar replay when conservative)."""
        if self.conservative:
            super().update_batch(keys, weights, ts)
            return
        keys, weights, _ = as_batch(keys, weights, ts)
        keys = as_uint64_keys(keys)
        weights = ensure_nonnegative_weights(weights)
        # Counters truncate like the scalar path's int64 setitem; `total`
        # accumulates the given weights untruncated, also like scalar.
        int_weights = weights.astype(np.int64)
        for row, vh in zip(self._table, self._vhashes):
            np.add.at(row, vh(keys), int_weights)
        self.total += weights.sum().item()

    def estimate(self, key: int) -> int:
        """Point estimate (never underestimates)."""
        return int(min(row[h(key)] for row, h in zip(self._table, self._hashes)))

    def reset(self) -> None:
        """Zero every counter, keeping the hash functions."""
        self._table.fill(0)
        self.total = 0

    def merge(self, other: Detector) -> None:
        """Elementwise sum (same geometry and family required)."""
        if not isinstance(other, CountMinSketch) or (
            other.width != self.width or other.rows != self.rows
            or other._hashes != self._hashes
        ):
            raise ValueError(
                "can only merge CountMinSketch of equal geometry and hash "
                "functions"
            )
        self._table += other._table
        self.total += other.total

    @property
    def num_counters(self) -> int:
        """Total counters allocated (for resource accounting)."""
        return self.width * self.rows


class CountMinHeavyHitters(Detector):
    """Count-Min plus a candidate map, reporting keys above a threshold.

    ``track_phi`` sets how early a key enters the candidate map as a
    fraction of the stream's running total; anything that could reach a
    final report threshold above that fraction is guaranteed to be tracked.

    The batch path simulates per-packet post-update estimates for a whole
    chunk at once (initial cell values plus within-cell running sums), so
    candidate admission is vectorized.  The lazy candidate prune fires only
    when a *new* key is admitted while the map is over its bound; if a
    chunk triggers a prune, the sketch state is advanced to that packet and
    the remainder of the chunk replays scalar.
    """

    def __init__(
        self,
        width: int = 1024,
        rows: int = 4,
        track_phi: float = 0.001,
        family: HashFamily | None = None,
        conservative: bool = False,
    ) -> None:
        if not 0.0 < track_phi < 1.0:
            raise ValueError(f"track_phi must be in (0, 1), got {track_phi}")
        self.sketch = CountMinSketch(width, rows, family, conservative)
        self.track_phi = track_phi
        self._candidates: dict[int, int] = {}

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Account one packet."""
        self.sketch.update(key, weight)
        estimate = self.sketch.estimate(key)
        if estimate >= self.track_phi * self.sketch.total:
            admitted = key not in self._candidates
            self._candidates[key] = estimate
            # Lazily prune candidates that can no longer qualify, bounding
            # the candidate map at ~1/track_phi live entries plus
            # stragglers.  Only a new admission can grow the map, so only
            # admissions need to check the bound.
            if admitted and len(self._candidates) > 4 / self.track_phi:
                self._prune()

    def _prune(self) -> None:
        """Drop candidates whose estimate fell below the tracking floor."""
        floor = self.track_phi * self.sketch.total
        estimate_fn = self.sketch.estimate
        pruned: dict[int, int] = {}
        for k in self._candidates:
            e = estimate_fn(k)
            if e >= floor:
                pruned[k] = e
        self._candidates = pruned

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update via simulated per-packet estimates."""
        if self.sketch.conservative:
            super().update_batch(keys, weights, ts)
            return
        keys, weights, _ = as_batch(keys, weights, ts)
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights)
            return
        sketch = self.sketch
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights)
        iw = w.astype(np.int64)
        # Post-update estimate of packet i's key at packet i: the row
        # minimum of (initial cell value + running weight scattered into
        # that cell so far), exactly as the scalar path would read it.
        cells_rows = []
        est = None
        for row, vh in zip(sketch._table, sketch._vhashes):
            cells = vh(ku)
            cells_rows.append(cells)
            vals = row[cells] + grouped_cumsum(cells, iw)
            est = vals if est is None else np.minimum(est, vals)
        totals = sketch.total + np.cumsum(w)
        crossing = est >= self.track_phi * totals
        cpos = np.flatnonzero(crossing)
        ck = ku[cpos]
        # Simulate admissions in chunk order to find the first prune, if
        # any: the map only grows on new-key admissions, so the chunk can
        # be applied wholesale up to (and including) that packet.
        prune_at = -1
        if cpos.size:
            uk, first = np.unique(ck, return_index=True)
            bound = 4 / self.track_phi
            count = len(self._candidates)
            for idx in np.argsort(first).tolist():
                k = int(uk[idx])
                if k in self._candidates:
                    continue
                count += 1
                if count > bound:
                    prune_at = int(cpos[first[idx]])
                    break
        stop = n if prune_at < 0 else prune_at + 1
        for row, cells in zip(sketch._table, cells_rows):
            np.add.at(row, cells[:stop], iw[:stop])
        sketch.total += w[:stop].sum().item()
        # Each crossing key's candidate value is its estimate at its last
        # crossing within the applied span.
        applied = cpos[cpos < stop]
        if applied.size:
            ak = ku[applied]
            ruk, ridx = np.unique(ak[::-1], return_index=True)
            last = applied[ak.shape[0] - 1 - ridx]
            for k, v in zip(ruk.tolist(), est[last].tolist()):
                self._candidates[int(k)] = int(v)
        if prune_at >= 0:
            self._prune()
            tail_keys = keys[stop:].tolist()
            tail_weights = w[stop:].tolist()
            for k, wt in zip(tail_keys, tail_weights):
                self.update(k, wt)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Tracked keys whose current estimate reaches ``threshold``."""
        out: dict[int, float] = {}
        for key in self._candidates:
            estimate = self.sketch.estimate(key)
            if estimate >= threshold:
                out[key] = float(estimate)
        return out

    def reset(self) -> None:
        """Zero the sketch and drop all candidates."""
        self.sketch.reset()
        self._candidates.clear()

    def merge(self, other: Detector) -> None:
        """Merge sketches, union candidates, and re-prune."""
        if not isinstance(other, CountMinHeavyHitters):
            raise ValueError("can only merge CountMinHeavyHitters")
        self.sketch.merge(other.sketch)
        floor = self.track_phi * self.sketch.total
        merged: dict[int, int] = {}
        for key in self._candidates.keys() | other._candidates.keys():
            estimate = self.sketch.estimate(key)
            if estimate >= floor:
                merged[key] = estimate
        self._candidates = merged

    @property
    def num_counters(self) -> int:
        """Counters used, including candidate map entries."""
        return self.sketch.num_counters + len(self._candidates)


register_detector(
    "countmin", CountMinSketch, enumerable=False, mergeable=True,
    description="Count-Min sketch (point estimates; vectorized batch path)",
)
register_detector(
    "countmin-hh", CountMinHeavyHitters,
    description="Count-Min with candidate tracking for heavy-hitter reports",
    probe=lambda det, key, now: det.sketch.estimate(key),
    accuracy=AccuracyFloor(recall=0.95, f1=0.95),
)
