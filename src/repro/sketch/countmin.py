"""Count-Min sketch (Cormode & Muthukrishnan 2005).

``rows x width`` counters; each row hashes the key independently and the
estimate is the minimum over rows, giving a one-sided overestimate with
error at most ``e * N / width`` with probability ``1 - e^-rows``.

A plain Count-Min cannot *enumerate* heavy keys, so
:class:`CountMinHeavyHitters` pairs it with a candidate map of keys whose
estimate has ever crossed a tracking threshold — the standard arrangement
used when a Count-Min backs a heavy-hitter report.
"""

from __future__ import annotations

from repro.hashing.families import HashFamily, pairwise_indep_family


class CountMinSketch:
    """The counter array; supports point updates and point queries."""

    def __init__(
        self,
        width: int = 1024,
        rows: int = 4,
        family: HashFamily | None = None,
        conservative: bool = False,
    ) -> None:
        if width < 1 or rows < 1:
            raise ValueError(f"need width, rows >= 1; got {width}x{rows}")
        self.width = width
        self.rows = rows
        self.conservative = conservative
        family = family or pairwise_indep_family()
        self._hashes = [family.function(r, width) for r in range(rows)]
        self._tables = [[0] * width for _ in range(rows)]
        self.total = 0

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` to ``key``'s counters."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        if self.conservative:
            # Conservative update: raise only the minimal counters.
            cells = [(t, h(key)) for t, h in zip(self._tables, self._hashes)]
            new_estimate = min(t[i] for t, i in cells) + weight
            for t, i in cells:
                if t[i] < new_estimate:
                    t[i] = new_estimate
        else:
            for t, h in zip(self._tables, self._hashes):
                t[h(key)] += weight

    def estimate(self, key: int) -> int:
        """Point estimate (never underestimates)."""
        return min(t[h(key)] for t, h in zip(self._tables, self._hashes))

    @property
    def num_counters(self) -> int:
        """Total counters allocated (for resource accounting)."""
        return self.width * self.rows


class CountMinHeavyHitters:
    """Count-Min plus a candidate map, reporting keys above a threshold.

    ``track_phi`` sets how early a key enters the candidate map as a
    fraction of the stream's running total; anything that could reach a
    final report threshold above that fraction is guaranteed to be tracked.
    """

    def __init__(
        self,
        width: int = 1024,
        rows: int = 4,
        track_phi: float = 0.001,
        family: HashFamily | None = None,
        conservative: bool = False,
    ) -> None:
        if not 0.0 < track_phi < 1.0:
            raise ValueError(f"track_phi must be in (0, 1), got {track_phi}")
        self.sketch = CountMinSketch(width, rows, family, conservative)
        self.track_phi = track_phi
        self._candidates: dict[int, int] = {}

    def update(self, key: int, weight: int = 1) -> None:
        """Account one packet."""
        self.sketch.update(key, weight)
        estimate = self.sketch.estimate(key)
        if estimate >= self.track_phi * self.sketch.total:
            self._candidates[key] = estimate
        # Lazily prune candidates that can no longer qualify, bounding the
        # candidate map at ~1/track_phi live entries plus stragglers.
        if len(self._candidates) > 4 / self.track_phi:
            floor = self.track_phi * self.sketch.total
            self._candidates = {
                k: self.sketch.estimate(k)
                for k in self._candidates
                if self.sketch.estimate(k) >= floor
            }

    def query(self, threshold: float) -> dict[int, float]:
        """Tracked keys whose current estimate reaches ``threshold``."""
        out: dict[int, float] = {}
        for key in self._candidates:
            estimate = self.sketch.estimate(key)
            if estimate >= threshold:
                out[key] = float(estimate)
        return out

    @property
    def num_counters(self) -> int:
        """Counters used, including candidate map entries."""
        return self.sketch.num_counters + len(self._candidates)
