"""Streaming sketches: the disjoint-window detectors of prior work.

These are the algorithms the poster positions itself against — the ones
deployed per-window in programmable data planes:

- :class:`SpaceSaving` / :class:`MisraGries` — counter-based top-k;
- :class:`CountMinSketch` / :class:`CountSketch` — linear sketches (with a
  top-k candidate tracker for heavy-hitter reporting);
- :class:`HashPipe` — the SOSR'17 in-switch pipeline of d hash stages
  (reference [5] of the paper);
- :class:`RHHH` — randomized HHH (per-level Space-Saving with one random
  level updated per packet), the representative data-plane HHH scheme;
- :class:`BloomFilter` / :class:`CountingBloomFilter` — the membership
  substrate the time-decaying structures of Section 3 extend.

All detectors subclass :class:`repro.core.Detector` — scalar ``update``
plus columnar ``update_batch`` (vectorized scatter updates for the
array-backed structures, exact scalar replay for the pointer-based ones),
``query``, ``reset``, and registry names for CLI/experiment lookup — so
they can all be driven by :class:`repro.windows.WindowedDetectorDriver`.
"""

from repro.sketch.countmin import CountMinSketch, CountMinHeavyHitters
from repro.sketch.countsketch import CountSketch
from repro.sketch.spacesaving import SpaceSaving
from repro.sketch.misragries import MisraGries
from repro.sketch.bloom import BloomFilter
from repro.sketch.counting_bloom import CountingBloomFilter
from repro.sketch.hashpipe import HashPipe
from repro.sketch.rhhh import RHHH
from repro.sketch.univmon import UnivMon

__all__ = [
    "UnivMon",
    "CountMinSketch",
    "CountMinHeavyHitters",
    "CountSketch",
    "SpaceSaving",
    "MisraGries",
    "BloomFilter",
    "CountingBloomFilter",
    "HashPipe",
    "RHHH",
]
