"""Space-Saving (Metwally, Agrawal, El Abbadi 2005).

Maintains exactly ``capacity`` counters.  A new key evicts the current
minimum counter and inherits its count as error.  Guarantees:

- every key with true count > N/capacity is in the table;
- each tracked estimate overestimates by at most the inherited error,
  itself bounded by N/capacity.

Eviction uses a lazy min-heap: stale heap entries (whose recorded count no
longer matches the live counter) are popped and dropped, keeping updates
amortised O(log capacity) without a linear min scan.
"""

from __future__ import annotations

import heapq

from repro.core.detector import Detector
from repro.core.registry import AccuracyFloor, register_detector


class SpaceSaving(Detector):
    """Fixed-capacity heavy-hitter counter table.

    Pointer-based (dict + lazy heap), so the batch path is the exact scalar
    replay inherited from :class:`repro.core.Detector` — eviction order is
    part of the algorithm and cannot be reordered by a scatter update.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: dict[int, int] = {}
        self._errors: dict[int, int] = {}
        self._heap: list[tuple[int, int]] = []  # (count_at_push, key)
        self.total = 0

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Account ``weight`` for ``key``."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            heapq.heappush(self._heap, (counts[key], key))
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            self._errors[key] = 0
            heapq.heappush(self._heap, (weight, key))
            return
        victim, victim_count = self._pop_min()
        del counts[victim]
        del self._errors[victim]
        counts[key] = victim_count + weight
        self._errors[key] = victim_count
        heapq.heappush(self._heap, (counts[key], key))

    def _pop_min(self) -> tuple[int, int]:
        """Pop the true minimum (skipping stale heap entries)."""
        heap, counts = self._heap, self._counts
        while heap:
            count, key = heapq.heappop(heap)
            if counts.get(key) == count:
                return key, count
        # The heap only runs dry if counts is empty, which cannot happen
        # when called with a full table; guard anyway.
        raise RuntimeError("Space-Saving heap out of sync with counters")

    def estimate(self, key: int) -> int:
        """Overestimate of ``key``'s count (min possible count if untracked)."""
        if key in self._counts:
            return self._counts[key]
        return self._min_count() if len(self._counts) >= self.capacity else 0

    def guaranteed(self, key: int) -> int:
        """Lower bound on ``key``'s true count (estimate minus error)."""
        if key in self._counts:
            return self._counts[key] - self._errors[key]
        return 0

    def _min_count(self) -> int:
        heap, counts = self._heap, self._counts
        while heap and counts.get(heap[0][1]) != heap[0][0]:
            heapq.heappop(heap)
        return heap[0][0] if heap else 0

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Tracked keys whose estimate reaches ``threshold``."""
        return {
            key: float(count)
            for key, count in self._counts.items()
            if count >= threshold
        }

    def items(self) -> dict[int, int]:
        """A copy of the live counter table."""
        return dict(self._counts)

    def reset(self) -> None:
        """Drop all counters."""
        self._counts.clear()
        self._errors.clear()
        self._heap.clear()
        self.total = 0

    def merge(self, other: "Detector") -> None:
        """Standard Space-Saving merge: sum estimates and errors over the
        key union, keep the ``capacity`` largest (overestimates preserved)."""
        if not isinstance(other, SpaceSaving):
            raise ValueError("can only merge SpaceSaving")
        merged: dict[int, tuple[int, int]] = {}
        self_min = self._min_count() if len(self._counts) >= self.capacity else 0
        other_min = (
            other._min_count() if len(other._counts) >= other.capacity else 0
        )
        for key in self._counts.keys() | other._counts.keys():
            # A key untracked on one side may still have up to that side's
            # minimum count there; fold it into the inherited error.
            c1 = self._counts.get(key)
            c2 = other._counts.get(key)
            count = (c1 if c1 is not None else self_min) + (
                c2 if c2 is not None else other_min
            )
            error = (
                self._errors.get(key, self_min if c1 is None else 0)
                + other._errors.get(key, other_min if c2 is None else 0)
            )
            merged[key] = (count, error)
        top = sorted(merged.items(), key=lambda kv: kv[1][0], reverse=True)
        top = top[: self.capacity]
        self._counts = {k: c for k, (c, _) in top}
        self._errors = {k: e for k, (_, e) in top}
        self._heap = [(c, k) for k, (c, _) in top]
        heapq.heapify(self._heap)
        self.total += other.total

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""
        return self.capacity


register_detector(
    "spacesaving", SpaceSaving,
    description="Space-Saving top-k counter table (scalar-replay batch)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.90),
)
