"""Space-Saving (Metwally, Agrawal, El Abbadi 2005).

Maintains exactly ``capacity`` counters.  A new key evicts the current
minimum counter and inherits its count as error.  Guarantees:

- every key with true count > N/capacity is in the table;
- each tracked estimate overestimates by at most the inherited error,
  itself bounded by N/capacity.

Counters live in a :class:`repro.core.flat_table.FlatTable`: float64
``counts``/``errors`` columns over an open-addressing slot array.  The
batch path pre-aggregates each chunk by key and applies the admission-free
prefix (tracked-key hits as one scatter-add, new keys bulk-inserted into
guaranteed-free slots) fully vectorized; only the eviction tail — packets
from the first possible eviction onward — replays through scalar
``update``, so eviction order is exactly the scalar algorithm's.
Evictions pick the minimum ``(count, key)`` pair, which both paths compute
identically regardless of slot layout.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.flat_table import FlatTable, group_sums, plan_batch
from repro.core.registry import AccuracyFloor, register_detector


_MASK64 = (1 << 64) - 1
_SCALAR_CUTOFF = 16


class SpaceSaving(Detector):
    """Fixed-capacity heavy-hitter counter table with batch admission."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._table = FlatTable(capacity, {"counts": np.float64, "errors": np.float64})
        self.total = 0

    def update(self, key: int, weight: float = 1, ts: float = 0.0) -> None:
        """Account ``weight`` for ``key``."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        key = int(key) & _MASK64
        table = self._table
        counts = table.cols["counts"]
        slot = table.slot_of.get(key, -1)
        if slot >= 0:
            counts[slot] += weight
            return
        if len(table) < self.capacity:
            slot = table.insert(key)
            counts[slot] = weight
            return
        victim_slot = self._min_slot()
        victim_count = float(counts[victim_slot])
        table.remove(int(table.key_col[victim_slot]))
        slot = table.insert(key)
        counts[slot] = victim_count + weight
        table.cols["errors"][slot] = victim_count

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update: scatter the admission-free prefix,
        replay the eviction tail."""
        keys, weights, _ = as_batch(keys, weights, ts)
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights).astype(np.float64)
        table = self._table
        # Eviction-free fast path: every key resolves to a slot (new keys
        # claim free ones), then one scatter-add lands the whole chunk.
        resolved = table.upsert_batch(ku, self.capacity - len(table))
        if resolved is not None:
            slots, _ = resolved
            table.cols["counts"] += np.bincount(
                slots, weights=w, minlength=table.size
            )
            self.total += w.sum().item()
            return
        slots, split = plan_batch(table, ku)
        if split:
            prefix_slots = slots[:split]
            prefix_w = w[:split]
            hits = prefix_slots >= 0
            if hits.any():
                table.cols["counts"] += np.bincount(
                    prefix_slots[hits], weights=prefix_w[hits], minlength=table.size
                )
            if not hits.all():
                miss = ~hits
                new_keys, sums = group_sums(ku[:split][miss], prefix_w[miss])
                counts = table.cols["counts"]
                for key, count in zip(new_keys.tolist(), sums.tolist()):
                    slot = table.insert(key)
                    counts[slot] = count
            self.total += prefix_w.sum().item()
        if split < n:
            update = self.update
            for key, weight in zip(ku[split:].tolist(), w[split:].tolist()):
                update(key, weight)

    def _min_slot(self) -> int:
        """Slot of the minimum live counter; ties broken by smallest key."""
        table = self._table
        counts = np.where(table.live_mask, table.cols["counts"], np.inf)
        tied = np.flatnonzero(counts == counts.min())
        if tied.size == 1:
            return int(tied[0])
        return int(tied[np.argmin(table.key_col[tied])])

    def estimate(self, key: int) -> float:
        """Overestimate of ``key``'s count (min possible count if untracked)."""
        key = int(key) & _MASK64
        table = self._table
        slot = table.slot_of.get(key, -1)
        if slot >= 0:
            return float(table.cols["counts"][slot])
        return self._min_count() if len(table) >= self.capacity else 0

    def guaranteed(self, key: int) -> float:
        """Lower bound on ``key``'s true count (estimate minus error)."""
        key = int(key) & _MASK64
        table = self._table
        slot = table.slot_of.get(key, -1)
        if slot >= 0:
            return float(table.cols["counts"][slot] - table.cols["errors"][slot])
        return 0

    def _min_count(self) -> float:
        table = self._table
        if not len(table):
            return 0
        return float(table.cols["counts"][table.live_mask].min())

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Tracked keys whose estimate reaches ``threshold``."""
        counts = self._table.cols["counts"]
        return {
            key: float(counts[slot])
            for key, slot in self._table.slot_of.items()
            if counts[slot] >= threshold
        }

    def items(self) -> dict[int, float]:
        """A copy of the live counter table."""
        counts = self._table.cols["counts"]
        return {
            key: float(counts[slot]) for key, slot in self._table.slot_of.items()
        }

    def _errors_map(self) -> dict[int, float]:
        errors = self._table.cols["errors"]
        return {
            key: float(errors[slot]) for key, slot in self._table.slot_of.items()
        }

    def reset(self) -> None:
        """Drop all counters."""
        self._table.clear()
        self.total = 0

    def merge(self, other: "Detector") -> None:
        """Standard Space-Saving merge: sum estimates and errors over the
        key union, keep the ``capacity`` largest (overestimates preserved)."""
        if not isinstance(other, SpaceSaving):
            raise ValueError("can only merge SpaceSaving")
        self_counts = self.items()
        other_counts = other.items()
        self_errors = self._errors_map()
        other_errors = other._errors_map()
        self_min = self._min_count() if len(self_counts) >= self.capacity else 0
        other_min = (
            other._min_count() if len(other_counts) >= other.capacity else 0
        )
        merged: dict[int, tuple[float, float]] = {}
        for key in self_counts.keys() | other_counts.keys():
            # A key untracked on one side may still have up to that side's
            # minimum count there; fold it into the inherited error.
            c1 = self_counts.get(key)
            c2 = other_counts.get(key)
            count = (c1 if c1 is not None else self_min) + (
                c2 if c2 is not None else other_min
            )
            error = (
                self_errors.get(key, self_min if c1 is None else 0)
                + other_errors.get(key, other_min if c2 is None else 0)
            )
            merged[key] = (count, error)
        top = sorted(merged.items(), key=lambda kv: kv[1][0], reverse=True)
        top = top[: self.capacity]
        table = self._table
        table.clear()
        counts = table.cols["counts"]
        errors = table.cols["errors"]
        for key, (count, error) in top:
            slot = table.insert(key)
            counts[slot] = count
            errors[slot] = error
        self.total += other.total

    def __len__(self) -> int:
        return len(self._table)

    @property
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""
        return self.capacity


register_detector(
    "spacesaving", SpaceSaving,
    description="Space-Saving top-k counter table (vectorized batch admission)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.90),
)
