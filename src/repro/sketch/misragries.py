"""Misra-Gries frequent-items summary (1982).

The decrement-based ancestor of Space-Saving: with ``capacity`` counters the
estimate *underestimates* by at most N/(capacity+1).  Weighted updates
decrement all counters by the smallest amount that frees a slot, which keeps
the classic guarantee for byte-weighted streams.
"""

from __future__ import annotations

from repro.core.detector import Detector
from repro.core.registry import AccuracyFloor, register_detector


class MisraGries(Detector):
    """Fixed-capacity frequent-items summary with one-sided underestimates.

    Decrement cascades make updates order-dependent, so the batch path is
    the exact scalar replay inherited from :class:`repro.core.Detector`.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._counts: dict[int, int] = {}
        self.total = 0
        self.decremented = 0

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Account ``weight`` for ``key``."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        counts = self._counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.capacity:
            counts[key] = weight
            return
        # Table full: decrement everyone by the amount that exhausts either
        # the new key's weight or the smallest existing counter.
        min_count = min(counts.values())
        dec = min(weight, min_count)
        self.decremented += dec
        for k in list(counts):
            counts[k] -= dec
            if counts[k] == 0:
                del counts[k]
        remaining = weight - dec
        if remaining > 0 and len(counts) < self.capacity:
            counts[key] = remaining

    def estimate(self, key: int) -> int:
        """Underestimate of ``key``'s count (0 when untracked)."""
        return self._counts.get(key, 0)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Tracked keys whose (under)estimate reaches ``threshold``."""
        return {
            key: float(count)
            for key, count in self._counts.items()
            if count >= threshold
        }

    def items(self) -> dict[int, int]:
        """A copy of the live counter table."""
        return dict(self._counts)

    def reset(self) -> None:
        """Drop all counters."""
        self._counts.clear()
        self.total = 0
        self.decremented = 0

    def merge(self, other: "Detector") -> None:
        """The classic Misra-Gries merge: add counts over the key union,
        then subtract the (capacity+1)-th largest and drop non-positives —
        keeps the N/(capacity+1) underestimate guarantee."""
        if not isinstance(other, MisraGries):
            raise ValueError("can only merge MisraGries")
        combined: dict[int, int] = dict(self._counts)
        for key, count in other._counts.items():
            combined[key] = combined.get(key, 0) + count
        if len(combined) > self.capacity:
            cut = sorted(combined.values(), reverse=True)[self.capacity]
            combined = {
                k: c - cut for k, c in combined.items() if c - cut > 0
            }
            self.decremented += cut
        self._counts = combined
        self.total += other.total
        self.decremented += other.decremented

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""
        return self.capacity


register_detector(
    "misragries", MisraGries,
    description="Misra-Gries frequent items (scalar-replay batch)",
    accuracy=AccuracyFloor(recall=0.80, f1=0.85),
)
