"""Misra-Gries frequent-items summary (1982).

The decrement-based ancestor of Space-Saving: with ``capacity`` counters the
estimate *underestimates* by at most N/(capacity+1).  Weighted updates
decrement all counters by the smallest amount that frees a slot, which keeps
the classic guarantee for byte-weighted streams.

Counters live in a :class:`repro.core.flat_table.FlatTable` (float64
``counts`` column).  The batch path applies the admission-free prefix of
each chunk — tracked-key hits and inserts into guaranteed-free slots —
fully vectorized, and replays the remainder through scalar ``update`` so
decrement cascades run in exact packet order.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.flat_table import FlatTable, group_sums, plan_batch
from repro.core.registry import AccuracyFloor, register_detector


_MASK64 = (1 << 64) - 1
_SCALAR_CUTOFF = 16


class MisraGries(Detector):
    """Fixed-capacity frequent-items summary with one-sided underestimates."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._table = FlatTable(capacity, {"counts": np.float64})
        self.total = 0
        self.decremented = 0

    def update(self, key: int, weight: float = 1, ts: float = 0.0) -> None:
        """Account ``weight`` for ``key``."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        key = int(key) & _MASK64
        table = self._table
        counts = table.cols["counts"]
        slot = table.slot_of.get(key, -1)
        if slot >= 0:
            counts[slot] += weight
            return
        if len(table) < self.capacity:
            slot = table.insert(key)
            counts[slot] = weight
            return
        # Table full: decrement everyone by the amount that exhausts either
        # the new key's weight or the smallest existing counter.
        live = table.live_mask
        min_count = float(counts[live].min())
        dec = min(weight, min_count)
        self.decremented += dec
        counts[live] -= dec
        zeroed = live & (counts == 0)
        for victim in table.key_col[zeroed].tolist():
            table.remove(victim)
        remaining = weight - dec
        if remaining > 0 and len(table) < self.capacity:
            slot = table.insert(key)
            counts[slot] = remaining

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update: scatter the cascade-free prefix, replay
        the tail through scalar ``update``."""
        keys, weights, _ = as_batch(keys, weights, ts)
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights).astype(np.float64)
        table = self._table
        # Cascade-free fast path: every key resolves to a slot (new keys
        # claim free ones), then one scatter-add lands the whole chunk.
        resolved = table.upsert_batch(ku, self.capacity - len(table))
        if resolved is not None:
            slots, _ = resolved
            table.cols["counts"] += np.bincount(
                slots, weights=w, minlength=table.size
            )
            self.total += w.sum().item()
            return
        slots, split = plan_batch(table, ku)
        if split:
            prefix_slots = slots[:split]
            prefix_w = w[:split]
            hits = prefix_slots >= 0
            if hits.any():
                table.cols["counts"] += np.bincount(
                    prefix_slots[hits], weights=prefix_w[hits], minlength=table.size
                )
            if not hits.all():
                miss = ~hits
                new_keys, sums = group_sums(ku[:split][miss], prefix_w[miss])
                counts = table.cols["counts"]
                for key, count in zip(new_keys.tolist(), sums.tolist()):
                    slot = table.insert(key)
                    counts[slot] = count
            self.total += prefix_w.sum().item()
        if split < n:
            update = self.update
            for key, weight in zip(ku[split:].tolist(), w[split:].tolist()):
                update(key, weight)

    def estimate(self, key: int) -> float:
        """Underestimate of ``key``'s count (0 when untracked)."""
        key = int(key) & _MASK64
        slot = self._table.slot_of.get(key, -1)
        return float(self._table.cols["counts"][slot]) if slot >= 0 else 0

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Tracked keys whose (under)estimate reaches ``threshold``."""
        counts = self._table.cols["counts"]
        return {
            key: float(counts[slot])
            for key, slot in self._table.slot_of.items()
            if counts[slot] >= threshold
        }

    def items(self) -> dict[int, float]:
        """A copy of the live counter table."""
        counts = self._table.cols["counts"]
        return {
            key: float(counts[slot]) for key, slot in self._table.slot_of.items()
        }

    def reset(self) -> None:
        """Drop all counters."""
        self._table.clear()
        self.total = 0
        self.decremented = 0

    def merge(self, other: "Detector") -> None:
        """The classic Misra-Gries merge: add counts over the key union,
        then subtract the (capacity+1)-th largest and drop non-positives —
        keeps the N/(capacity+1) underestimate guarantee."""
        if not isinstance(other, MisraGries):
            raise ValueError("can only merge MisraGries")
        combined: dict[int, float] = self.items()
        for key, count in other.items().items():
            combined[key] = combined.get(key, 0) + count
        if len(combined) > self.capacity:
            cut = sorted(combined.values(), reverse=True)[self.capacity]
            combined = {
                k: c - cut for k, c in combined.items() if c - cut > 0
            }
            self.decremented += cut
        table = self._table
        table.clear()
        counts = table.cols["counts"]
        for key, count in combined.items():
            slot = table.insert(key)
            counts[slot] = count
        self.total += other.total
        self.decremented += other.decremented

    def __len__(self) -> int:
        return len(self._table)

    @property
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""
        return self.capacity


register_detector(
    "misragries", MisraGries,
    description="Misra-Gries frequent items (vectorized batch admission)",
    accuracy=AccuracyFloor(recall=0.80, f1=0.85),
)
