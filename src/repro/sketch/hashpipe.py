"""HashPipe (Sivaraman et al., SOSR 2017) — reference [5] of the paper.

Heavy-hitter detection entirely in the data plane: ``d`` pipeline stages,
each a hash-indexed table of (key, count) slots.  Per packet:

- stage 1 *always* inserts the incoming key; if the slot held a different
  key, that (key, count) pair is evicted and carried down the pipeline;
- at later stages the carried key merges on match, takes an empty slot, or
  swaps with the slot's occupant when the occupant's count is smaller (the
  carried minimum continues onward);
- whatever is still carried after the last stage is dropped.

This matches the match-action constraint of one memory access per stage and
is the canonical "disjoint window, reset every interval" detector the
poster critiques.

Stages are numpy columns (uint64 keys, float64 counts, occupancy mask).
The batch path vectorizes stage 0 by run-length analysis: slots hit by a
single distinct key collapse to one bincount (no sorting), the rest are
stably grouped per slot, maximal same-key runs are summed in one pass, the
last run per slot becomes the new slot state, and every earlier run (plus
any displaced pre-chunk occupant) is an eviction replayed — in exact
packet order — through the stage >= 1 cascade.  Since a slot's
stage-0 evolution depends only on its own packets and cascades depend only
on earlier cascades, this reproduces the scalar pipeline exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import (
    Detector,
    as_batch,
    as_uint64_keys,
    ensure_nonnegative_weights,
)
from repro.core.registry import AccuracyFloor, register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family

_MASK64 = (1 << 64) - 1
_SCALAR_CUTOFF = 16


class HashPipe(Detector):
    """d-stage pipeline of hash tables with smallest-carried eviction."""

    def __init__(
        self,
        stage_slots: int = 256,
        stages: int = 4,
        family: HashFamily | None = None,
    ) -> None:
        if stage_slots < 1 or stages < 1:
            raise ValueError(
                f"need stage_slots, stages >= 1; got {stage_slots}, {stages}"
            )
        self.stage_slots = stage_slots
        self.stages = stages
        family = family or pairwise_indep_family()
        self._hashes = [family.function(s, stage_slots) for s in range(stages)]
        self._vhash0 = family.function_array(0, stage_slots)
        self._vhash1 = (
            family.function_array(1, stage_slots) if stages > 1 else None
        )
        self._keys = [
            np.zeros(stage_slots, dtype=np.uint64) for _ in range(stages)
        ]
        self._counts = [
            np.zeros(stage_slots, dtype=np.float64) for _ in range(stages)
        ]
        self._occ = [
            np.zeros(stage_slots, dtype=bool) for _ in range(stages)
        ]
        self.total = 0

    def update(self, key: int, weight: float = 1, ts: float = 0.0) -> None:
        """Process one packet through the pipeline."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        key = int(key) & _MASK64
        # Stage 0: always insert.
        slot = self._hashes[0](key)
        keys0, counts0, occ0 = self._keys[0], self._counts[0], self._occ[0]
        if occ0[slot] and keys0[slot] == key:
            counts0[slot] += weight
            return
        carried = occ0[slot]
        carried_key, carried_count = int(keys0[slot]), float(counts0[slot])
        keys0[slot] = key
        counts0[slot] = weight
        occ0[slot] = True
        if carried:
            self._cascade(carried_key, carried_count)

    def _cascade(self, carried_key: int, carried_count: float) -> None:
        """Carry an evicted (key, count) pair through stages >= 1."""
        for stage in range(1, self.stages):
            slot = self._hashes[stage](carried_key)
            keys, counts, occ = (
                self._keys[stage], self._counts[stage], self._occ[stage]
            )
            if occ[slot]:
                if keys[slot] == carried_key:
                    counts[slot] += carried_count
                    return
                if counts[slot] < carried_count:
                    evicted_key = int(keys[slot])
                    evicted_count = float(counts[slot])
                    keys[slot] = carried_key
                    counts[slot] = carried_count
                    carried_key, carried_count = evicted_key, evicted_count
            else:
                keys[slot] = carried_key
                counts[slot] = carried_count
                occ[slot] = True
                return
        # Carried minimum falls off the end of the pipeline.

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized chunk update via stage-0 run-length analysis."""
        keys, weights, _ = as_batch(keys, weights, ts)
        n = keys.shape[0]
        if n == 0:
            return
        if n < _SCALAR_CUTOFF:
            super().update_batch(keys, weights)
            return
        ku = as_uint64_keys(keys)
        w = ensure_nonnegative_weights(weights).astype(np.float64)
        self.total += w.sum().item()
        h0 = self._vhash0(ku)
        keys0, counts0, occ0 = self._keys[0], self._counts[0], self._occ[0]
        # Partition stage-0 slots by how many distinct keys land on them in
        # this chunk.  Single-key slots — the common case at low load — need
        # no ordering at all: their packets form one run whose sum lands in
        # one bincount.  Only multi-key slots go through the (sorted)
        # run-length machinery, on their small packet subset.  The two slot
        # sets are disjoint, so the passes commute.
        rep = np.zeros(self.stage_slots, dtype=np.uint64)
        rep[h0] = ku  # last writer; any packet disagreeing => multi-key slot
        multi_slot = np.zeros(self.stage_slots, dtype=bool)
        disagree = rep[h0] != ku
        multi_slot[h0[disagree]] = True
        multi_pp = multi_slot[h0]  # packet lands on a multi-key slot
        evict_keys: list[np.ndarray] = []
        evict_counts: list[np.ndarray] = []
        evict_pos: list[np.ndarray] = []
        # One bincount over the whole chunk; multi-key slots are simply
        # never read from it (they are excluded from s_slots).
        ssum = np.bincount(h0, weights=w, minlength=self.stage_slots)
        touched = np.zeros(self.stage_slots, dtype=bool)
        touched[h0] = True
        s_slots = np.flatnonzero(touched & ~multi_slot)
        if s_slots.size:
            skey = rep[s_slots]
            occ = occ0[s_slots]
            held_key = keys0[s_slots]
            held_count = counts0[s_slots]
            merged = occ & (held_key == skey)
            displaced = occ & ~merged
            if displaced.any():
                # First packet position per slot, computed only when a
                # pre-chunk occupant is displaced (reversed write => first
                # packet wins).
                single = ~multi_pp
                sh = h0[single]
                pos = np.flatnonzero(single)
                first_pos = np.zeros(self.stage_slots, dtype=np.int64)
                first_pos[sh[::-1]] = pos[::-1]
                evict_keys.append(held_key[displaced])
                evict_counts.append(held_count[displaced])
                evict_pos.append(first_pos[s_slots[displaced]])
            new_counts = ssum[s_slots]
            new_counts[merged] += held_count[merged]
            keys0[s_slots] = skey
            counts0[s_slots] = new_counts
            occ0[s_slots] = True
        mp = np.flatnonzero(multi_pp)
        if mp.size:
            mh = h0[mp]
            mk = ku[mp]
            order = np.argsort(mh, kind="stable")
            oslot = mh[order]
            okey = mk[order]
            # Runs: maximal consecutive same-key stretches within each
            # slot's packet-ordered subsequence.
            run_start = np.r_[
                True, (oslot[1:] != oslot[:-1]) | (okey[1:] != okey[:-1])
            ]
            run_id = np.cumsum(run_start) - 1
            run_sum = np.bincount(run_id, weights=w[mp][order])
            start_idx = np.flatnonzero(run_start)
            run_slot = oslot[start_idx]
            run_key = okey[start_idx]
            run_pos = mp[order[start_idx]]  # original position of run head
            slot_first = np.r_[True, run_slot[1:] != run_slot[:-1]]
            slot_last = np.r_[slot_first[1:], True]
            # Pre-chunk occupants: merge into a matching first run, else
            # they are displaced by it (eviction at the run head's packet).
            first_idx = np.flatnonzero(slot_first)
            touched_m = run_slot[first_idx]
            occm = occ0[touched_m]
            held_key = keys0[touched_m]
            held_count = counts0[touched_m]
            mergedm = occm & (held_key == run_key[first_idx])
            run_sum[first_idx[mergedm]] += held_count[mergedm]
            displacedm = occm & ~mergedm
            evict_keys.append(held_key[displacedm])
            evict_counts.append(held_count[displacedm])
            evict_pos.append(run_pos[first_idx[displacedm]])
            # Every non-last run is evicted by the next run's head packet.
            not_last = np.flatnonzero(~slot_last)
            evict_keys.append(run_key[not_last])
            evict_counts.append(run_sum[not_last])
            evict_pos.append(run_pos[not_last + 1])
            # Last run per slot becomes the new stage-0 state.
            last_idx = np.flatnonzero(slot_last)
            keys0[run_slot[last_idx]] = run_key[last_idx]
            counts0[run_slot[last_idx]] = run_sum[last_idx]
            occ0[run_slot[last_idx]] = True
        if evict_keys:
            ek = np.concatenate(evict_keys)
            if ek.size:
                ec = np.concatenate(evict_counts)
                ep = np.concatenate(evict_pos)
                cascade_order = np.argsort(ep)
                ek = ek[cascade_order]
                ec = ec[cascade_order]
                if self.stages == 1:
                    return  # no later stage; every carried pair is dropped
                # Bulk-place carried pairs whose stage-1 slot is empty and
                # not contested by an earlier pair: in the scalar pipeline
                # they insert there and stop, touching nothing downstream,
                # so applying them out of order is safe.  Later pairs for
                # the same slot (and pairs hitting occupied slots) replay
                # through the scalar cascade in packet order and see the
                # placed entries exactly as the scalar path would.
                h1 = self._vhash1(ek)
                keys1, counts1, occ1 = (
                    self._keys[1], self._counts[1], self._occ[1]
                )
                first_of_slot = np.zeros(self.stage_slots, dtype=np.int64)
                idx = np.arange(ek.size)
                first_of_slot[h1[::-1]] = idx[::-1]  # reversed: first wins
                placeable = (first_of_slot[h1] == idx) & ~occ1[h1]
                pslots = h1[placeable]
                keys1[pslots] = ek[placeable]
                counts1[pslots] = ec[placeable]
                occ1[pslots] = True
                rest = ~placeable
                if rest.any():
                    cascade = self._cascade
                    for key, count in zip(
                        ek[rest].tolist(), ec[rest].tolist()
                    ):
                        cascade(key, count)

    def estimate(self, key: int) -> float:
        """Sum of the key's counts across stages (it may be split)."""
        key = int(key) & _MASK64
        total = 0.0
        for stage in range(self.stages):
            slot = self._hashes[stage](key)
            if self._occ[stage][slot] and self._keys[stage][slot] == key:
                total += float(self._counts[stage][slot])
        return total

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """All keys whose summed estimate reaches ``threshold``."""
        totals: dict[int, float] = {}
        for stage in range(self.stages):
            filled = np.flatnonzero(self._occ[stage])
            for key, count in zip(
                self._keys[stage][filled].tolist(),
                self._counts[stage][filled].tolist(),
            ):
                totals[key] = totals.get(key, 0.0) + count
        return {k: float(c) for k, c in totals.items() if c >= threshold}

    def reset(self) -> None:
        """Empty every stage, keeping the hash functions."""
        for stage in range(self.stages):
            self._keys[stage][:] = 0
            self._counts[stage][:] = 0
            self._occ[stage][:] = False
        self.total = 0

    @property
    def num_counters(self) -> int:
        """(key, count) slots allocated (for resource accounting)."""
        return self.stage_slots * self.stages


register_detector(
    "hashpipe", HashPipe,
    description="HashPipe d-stage in-switch pipeline (vectorized stage-0 batch)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.95),
)
