"""HashPipe (Sivaraman et al., SOSR 2017) — reference [5] of the paper.

Heavy-hitter detection entirely in the data plane: ``d`` pipeline stages,
each a hash-indexed table of (key, count) slots.  Per packet:

- stage 1 *always* inserts the incoming key; if the slot held a different
  key, that (key, count) pair is evicted and carried down the pipeline;
- at later stages the carried key merges on match, takes an empty slot, or
  swaps with the slot's occupant when the occupant's count is smaller (the
  carried minimum continues onward);
- whatever is still carried after the last stage is dropped.

This matches the match-action constraint of one memory access per stage and
is the canonical "disjoint window, reset every interval" detector the
poster critiques.
"""

from __future__ import annotations

from repro.core.detector import Detector
from repro.core.registry import AccuracyFloor, register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family

_EMPTY = -1


class HashPipe(Detector):
    """d-stage pipeline of hash tables with smallest-carried eviction.

    Evictions cascade stage to stage per packet, so the batch path is the
    exact scalar replay inherited from :class:`repro.core.Detector` (lists,
    not numpy — scalar indexing into Python lists is faster in CPython).
    """

    def __init__(
        self,
        stage_slots: int = 256,
        stages: int = 4,
        family: HashFamily | None = None,
    ) -> None:
        if stage_slots < 1 or stages < 1:
            raise ValueError(
                f"need stage_slots, stages >= 1; got {stage_slots}, {stages}"
            )
        self.stage_slots = stage_slots
        self.stages = stages
        family = family or pairwise_indep_family()
        self._hashes = [family.function(s, stage_slots) for s in range(stages)]
        self._keys = [[_EMPTY] * stage_slots for _ in range(stages)]
        self._counts = [[0] * stage_slots for _ in range(stages)]
        self.total = 0

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Process one packet through the pipeline."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self.total += weight
        # Stage 0: always insert.
        slot = self._hashes[0](key)
        keys0, counts0 = self._keys[0], self._counts[0]
        if keys0[slot] == key:
            counts0[slot] += weight
            return
        carried_key, carried_count = keys0[slot], counts0[slot]
        keys0[slot] = key
        counts0[slot] = weight
        if carried_key == _EMPTY:
            return
        # Later stages: merge / fill / swap-with-smaller.
        for stage in range(1, self.stages):
            slot = self._hashes[stage](carried_key)
            keys, counts = self._keys[stage], self._counts[stage]
            if keys[slot] == carried_key:
                counts[slot] += carried_count
                return
            if keys[slot] == _EMPTY:
                keys[slot] = carried_key
                counts[slot] = carried_count
                return
            if counts[slot] < carried_count:
                keys[slot], carried_key = carried_key, keys[slot]
                counts[slot], carried_count = carried_count, counts[slot]
        # Carried minimum falls off the end of the pipeline.

    def estimate(self, key: int) -> int:
        """Sum of the key's counts across stages (it may be split)."""
        total = 0
        for stage in range(self.stages):
            slot = self._hashes[stage](key)
            if self._keys[stage][slot] == key:
                total += self._counts[stage][slot]
        return total

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """All keys whose summed estimate reaches ``threshold``."""
        totals: dict[int, int] = {}
        for stage in range(self.stages):
            for key, count in zip(self._keys[stage], self._counts[stage]):
                if key != _EMPTY:
                    totals[key] = totals.get(key, 0) + count
        return {k: float(c) for k, c in totals.items() if c >= threshold}

    def reset(self) -> None:
        """Empty every stage, keeping the hash functions."""
        for stage in range(self.stages):
            self._keys[stage] = [_EMPTY] * self.stage_slots
            self._counts[stage] = [0] * self.stage_slots
        self.total = 0

    @property
    def num_counters(self) -> int:
        """(key, count) slots allocated (for resource accounting)."""
        return self.stage_slots * self.stages


register_detector(
    "hashpipe", HashPipe,
    description="HashPipe d-stage in-switch pipeline (scalar-replay batch)",
    accuracy=AccuracyFloor(recall=0.95, f1=0.95),
)
