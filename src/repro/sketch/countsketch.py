"""Count-Sketch (Charikar, Chen, Farach-Colton 2002).

Like Count-Min but each row also applies a +/-1 sign hash and the point
estimate is the *median* across rows, giving an unbiased two-sided estimate
with error proportional to the stream's L2 norm — tighter than Count-Min on
skewed streams, at the cost of a weaker one-sided guarantee.
"""

from __future__ import annotations

import statistics

from repro.hashing.families import HashFamily, pairwise_indep_family


class CountSketch:
    """``rows x width`` signed counters with median estimation."""

    def __init__(
        self,
        width: int = 1024,
        rows: int = 5,
        family: HashFamily | None = None,
    ) -> None:
        if width < 1 or rows < 1:
            raise ValueError(f"need width, rows >= 1; got {width}x{rows}")
        if rows % 2 == 0:
            raise ValueError("rows must be odd so the median is a cell value")
        self.width = width
        self.rows = rows
        family = family or pairwise_indep_family()
        self._hashes = [family.function(r, width) for r in range(rows)]
        self._signs = [family.sign_function(r) for r in range(rows)]
        self._tables = [[0] * width for _ in range(rows)]
        self.total = 0

    def update(self, key: int, weight: int = 1) -> None:
        """Add ``weight`` to ``key`` (signed per row)."""
        self.total += weight
        for table, h, s in zip(self._tables, self._hashes, self._signs):
            table[h(key)] += s(key) * weight

    def estimate(self, key: int) -> float:
        """Median-of-rows unbiased point estimate."""
        values = [
            s(key) * table[h(key)]
            for table, h, s in zip(self._tables, self._hashes, self._signs)
        ]
        return float(statistics.median(values))

    @property
    def num_counters(self) -> int:
        """Total counters allocated (for resource accounting)."""
        return self.width * self.rows
