"""Count-Sketch (Charikar, Chen, Farach-Colton 2002).

Like Count-Min but each row also applies a +/-1 sign hash and the point
estimate is the *median* across rows, giving an unbiased two-sided estimate
with error proportional to the stream's L2 norm — tighter than Count-Min on
skewed streams, at the cost of a weaker one-sided guarantee.

Counters live in a numpy ``(rows, width)`` int64 array; ``update_batch``
scatter-adds ``sign * weight`` per row in one vectorized pass.
"""

from __future__ import annotations

import statistics

import numpy as np

from repro.core.detector import Detector, as_batch, as_uint64_keys
from repro.core.registry import register_detector
from repro.hashing.families import HashFamily, pairwise_indep_family


class CountSketch(Detector):
    """``rows x width`` signed counters with median estimation."""

    def __init__(
        self,
        width: int = 1024,
        rows: int = 5,
        family: HashFamily | None = None,
    ) -> None:
        if width < 1 or rows < 1:
            raise ValueError(f"need width, rows >= 1; got {width}x{rows}")
        if rows % 2 == 0:
            raise ValueError("rows must be odd so the median is a cell value")
        self.width = width
        self.rows = rows
        family = family or pairwise_indep_family()
        self._hashes = [family.function(r, width) for r in range(rows)]
        self._signs = [family.sign_function(r) for r in range(rows)]
        self._vhashes = [family.function_array(r, width) for r in range(rows)]
        self._vsigns = [family.sign_array(r) for r in range(rows)]
        self._table = np.zeros((rows, width), dtype=np.int64)
        self.total = 0

    def update(self, key: int, weight: int = 1, ts: float = 0.0) -> None:
        """Add ``weight`` to ``key`` (signed per row).

        Counters are int64; a fractional weight is truncated once, before
        the sign is applied, so scalar and batch updates stay identical.
        """
        self.total += weight
        weight = int(weight)
        for row, h, s in zip(self._table, self._hashes, self._signs):
            row[h(key)] += s(key) * weight

    def update_batch(self, keys, weights=None, ts=None) -> None:
        """Vectorized signed scatter update."""
        keys, weights, _ = as_batch(keys, weights, ts)
        keys = as_uint64_keys(keys)
        weights = np.asarray(weights)
        int_weights = weights.astype(np.int64)
        for row, vh, vs in zip(self._table, self._vhashes, self._vsigns):
            np.add.at(row, vh(keys), vs(keys) * int_weights)
        self.total += weights.sum().item()

    def estimate(self, key: int) -> float:
        """Median-of-rows unbiased point estimate."""
        values = [
            s(key) * int(row[h(key)])
            for row, h, s in zip(self._table, self._hashes, self._signs)
        ]
        return float(statistics.median(values))

    def reset(self) -> None:
        """Zero every counter, keeping the hash functions."""
        self._table.fill(0)
        self.total = 0

    def merge(self, other: Detector) -> None:
        """Elementwise sum (same geometry and family required)."""
        if not isinstance(other, CountSketch) or (
            other.width != self.width or other.rows != self.rows
            or other._hashes != self._hashes or other._signs != self._signs
        ):
            raise ValueError(
                "can only merge CountSketch of equal geometry and hash "
                "functions"
            )
        self._table += other._table
        self.total += other.total

    @property
    def num_counters(self) -> int:
        """Total counters allocated (for resource accounting)."""
        return self.width * self.rows


register_detector(
    "countsketch", CountSketch, enumerable=False, mergeable=True,
    description="Count-Sketch (unbiased point estimates; vectorized batch)",
)
