"""Configuration dataclasses for the synthetic trace generator.

Each knob maps to one of the traffic properties the paper's effect depends
on; see the package docstring of :mod:`repro.trace`.  All fields have
defaults tuned to produce CAIDA-like behaviour at laptop scale (hundreds of
thousands of packets per experiment rather than the paper's billions).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RateConfig:
    """Aggregate packet arrival process.

    A two-state Markov-modulated Poisson process (MMPP): the trace
    alternates between a *calm* state at ``base_rate`` packets/second and a
    *busy* state at ``base_rate * busy_factor``.  State holding times are
    exponential with the given means.  ``busy_factor=1`` degenerates to a
    plain Poisson process.
    """

    base_rate: float = 800.0
    busy_factor: float = 2.5
    mean_calm_s: float = 8.0
    mean_busy_s: float = 3.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if self.busy_factor < 1.0:
            raise ValueError("busy_factor must be >= 1")
        if self.mean_calm_s <= 0 or self.mean_busy_s <= 0:
            raise ValueError("state holding times must be positive")


@dataclass(frozen=True)
class ChurnConfig:
    """Source population churn.

    Every ``epoch_s`` the generator re-samples which sources are active:
    an active source deactivates with probability ``deactivate_prob`` and an
    inactive one activates with probability ``activate_prob``.  Churn makes
    the heavy-hitter set drift over the trace, as it does in real traffic.
    """

    epoch_s: float = 1.0
    deactivate_prob: float = 0.02
    activate_prob: float = 0.04
    initially_active_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        for name in ("deactivate_prob", "activate_prob",
                     "initially_active_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class BurstConfig:
    """Per-source sub-second burst trains.

    Independently of the smooth Zipf volume, each epoch a few sources emit a
    clustered burst of packets inside a ``burst_span_s`` interval.  Bursts
    are the sub-window-scale variability behind the paper's Figure 3
    (shaving 100 ms off a window changes the reported set).
    """

    bursts_per_epoch: float = 1.0
    burst_packets: int = 60
    burst_span_s: float = 0.25
    burst_size_bytes: int = 1400
    #: Packet-train clumping of ordinary traffic: each source's packets
    #: within an epoch are emitted in trains of ~``train_packets`` packets
    #: spread over ``train_span_s`` (TCP-like micro-burstiness), instead of
    #: uniformly.  0 disables clumping (smooth Poisson field).
    train_packets: int = 0
    train_span_s: float = 0.05
    #: Per-source duty cycling: each source pauses for ``gap_s`` seconds at
    #: a random position within every epoch (RTT-scale OFF periods, the
    #: ~100 ms periodicity documented in backbone traces).  This is what
    #: makes the composition of a window's last ~100 ms differ from the
    #: window average.  0 disables gaps.
    gap_s: float = 0.0
    #: Multifractal slot modulation: each source's packets within an epoch
    #: are distributed over ``slot_s``-second slots with i.i.d. lognormal
    #: weights of log-std ``slot_sigma``.  Heavy-tailed slot weights are
    #: the small-scale burstiness signature of measured backbone traffic
    #: (high variance at 100 ms relative to 10 s means) that independent-
    #: increment models cannot produce.  0 disables modulation.
    slot_sigma: float = 0.0
    slot_s: float = 0.1

    def __post_init__(self) -> None:
        if self.bursts_per_epoch < 0:
            raise ValueError("bursts_per_epoch must be >= 0")
        if self.burst_packets < 0 or self.burst_size_bytes <= 0:
            raise ValueError("burst shape parameters must be positive")
        if self.burst_span_s <= 0:
            raise ValueError("burst_span_s must be positive")
        if self.train_packets < 0:
            raise ValueError("train_packets must be >= 0")
        if self.train_span_s <= 0:
            raise ValueError("train_span_s must be positive")
        if self.gap_s < 0:
            raise ValueError("gap_s must be >= 0")
        if self.slot_sigma < 0:
            raise ValueError("slot_sigma must be >= 0")
        if self.slot_s <= 0:
            raise ValueError("slot_s must be positive")


@dataclass(frozen=True)
class HeavyEpisodeConfig:
    """Transient heavy-hitter episodes.

    A random source (or subnet) is boosted so that it transiently carries a
    *target share* of the aggregate traffic, drawn log-uniformly from
    ``[min_share, max_share]``, for a duration drawn uniformly from
    ``[min_duration_s, max_duration_s]``, starting at a random instant —
    deliberately *not* aligned to any window grid.

    Episodes whose span straddles a disjoint-window boundary are the
    canonical "hidden HHH": each half may fall below the per-window
    threshold while some sliding window sees the whole episode.  The
    log-uniform share law makes transients most common just above the
    smallest detection threshold (matching the paper's finding that the
    1 % threshold hides the most), with rarer violent spikes up to
    ``max_share``.
    """

    episodes_per_minute: float = 40.0
    min_share: float = 0.012
    max_share: float = 0.10
    min_duration_s: float = 2.0
    max_duration_s: float = 16.0
    subnet_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.episodes_per_minute < 0:
            raise ValueError("episodes_per_minute must be >= 0")
        if not 0.0 < self.min_share <= self.max_share < 1.0:
            raise ValueError(
                "need 0 < min_share <= max_share < 1, got "
                f"[{self.min_share}, {self.max_share}]"
            )
        if not 0 < self.min_duration_s <= self.max_duration_s:
            raise ValueError("need 0 < min_duration_s <= max_duration_s")
        if not 0.0 <= self.subnet_fraction <= 1.0:
            raise ValueError("subnet_fraction must be in [0, 1]")


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Full generator configuration.

    Attributes
    ----------
    duration_s:
        Trace length in seconds.
    num_sources:
        Size of the source population drawn from the structured address
        space.
    zipf_alpha:
        Skew of the per-source popularity distribution (~1.0–1.2 matches
        reported ISP source-volume skew).
    num_networks / subnets_per_network:
        Address-space structure (see
        :class:`repro.net.RandomAddressSpace`); controls how much volume
        aggregates at /8 and /24 levels.
    mean_packet_bytes / mtu_fraction:
        Packet sizes are a two-point mixture of 40-byte and 1500-byte
        packets with the given mean achieved by mixing weight; matches the
        bimodal size distribution of backbone traces.
    seed:
        Master seed; every stream of randomness below derives from it.
    """

    duration_s: float = 120.0
    num_sources: int = 4000
    zipf_alpha: float = 1.05
    num_networks: int = 16
    subnets_per_network: int = 16
    mean_packet_bytes: float = 700.0
    #: Optional explicit traffic shares for the heaviest sources (a "head
    #: band").  Useful to populate the neighbourhood of a detection
    #: threshold with borderline sources, e.g. ``(0.065, 0.058, 0.052,
    #: 0.047, 0.043)`` around a 5 % threshold.  Empty = pure Zipf.
    head_shares: tuple[float, ...] = ()
    #: Optional subnet-level bands: for each share, a dedicated /24 of
    #: ``band_subnet_hosts`` equal small sources whose *aggregate* carries
    #: that share.  These populate the /24 (and /8) levels of the hierarchy
    #: with borderline aggregates the same way ``head_shares`` populates
    #: the leaf level.  Band members are exempt from churn so the band
    #: stays at its designed share.
    band_subnets: tuple[float, ...] = ()
    band_subnet_hosts: int = 16
    rate: RateConfig = field(default_factory=RateConfig)
    churn: ChurnConfig = field(default_factory=ChurnConfig)
    bursts: BurstConfig = field(default_factory=BurstConfig)
    episodes: HeavyEpisodeConfig = field(default_factory=HeavyEpisodeConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.num_sources < 1:
            raise ValueError("need at least one source")
        if self.zipf_alpha <= 0:
            raise ValueError("zipf_alpha must be positive")
        if not 40.0 <= self.mean_packet_bytes <= 1500.0:
            raise ValueError(
                "mean_packet_bytes must lie between the 40B and 1500B modes"
            )
        pinned = sum(self.head_shares) + sum(self.band_subnets)
        if pinned >= 0.95:
            raise ValueError(
                f"head_shares + band_subnets pin {pinned:.2f} of the traffic; "
                "leave at least 5% for the background tail"
            )
        if any(s <= 0 for s in self.head_shares + self.band_subnets):
            raise ValueError("pinned shares must be positive")
        if self.band_subnet_hosts < 1:
            raise ValueError("band_subnet_hosts must be >= 1")
