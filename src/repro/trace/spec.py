"""String-addressable trace specifications.

Every workload the experiments consume is addressable as a short string —
a *scenario* name plus ``key=value`` parameters::

    caida:day=0,duration=120      # synthetic CAIDA-like day
    zipf:skew=1.2,duration=60     # plain Zipf population, no dynamics
    ddos-burst:duration=60        # violent short subnet attacks
    pcap:/path/to/trace.pcap      # a recorded pcap file

:class:`TraceSpec` parses these strings into (scenario, typed params),
round-trips them back through :meth:`TraceSpec.format`, and materialises
the actual :class:`repro.trace.Trace` via :meth:`TraceSpec.build`.

Scenarios are registry entries, exactly like detectors in
:mod:`repro.core` and experiments in :mod:`repro.experiments`: a builder
callable registered under a stable name with
:func:`register_scenario`.  The CLI's ``repro-hhh scenarios`` listing,
the generic ``repro-hhh run --trace SPEC`` path, and the experiment
result provenance all speak this one vocabulary, so adding a workload is
one registration instead of a new subcommand.
"""

from __future__ import annotations

import inspect
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from repro.core.suggest import closest_hint
from repro.trace.container import Trace


class TraceSpecError(ValueError):
    """A malformed or unbuildable trace specification."""


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered scenario: trace builder plus listing metadata."""

    name: str
    builder: Callable[..., Trace]
    description: str = ""
    example: str = ""

    def param_names(self) -> tuple[str, ...]:
        """The keyword parameters the builder accepts."""
        return tuple(inspect.signature(self.builder).parameters)

    def defaults(self) -> dict[str, object]:
        """The builder's default parameter values (for listings)."""
        out: dict[str, object] = {}
        for name, param in inspect.signature(self.builder).parameters.items():
            if param.default is not inspect.Parameter.empty:
                out[name] = param.default
        return out


_SCENARIOS: dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    builder: Callable[..., Trace],
    *,
    description: str = "",
    example: str = "",
) -> Callable[..., Trace]:
    """Register ``builder`` under ``name``; returns the builder unchanged."""
    if name in _SCENARIOS:
        raise ValueError(f"scenario {name!r} is already registered")
    _SCENARIOS[name] = ScenarioSpec(
        name=name, builder=builder, description=description, example=example
    )
    return builder


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    _ensure_populated()
    return tuple(sorted(_SCENARIOS))


def get_scenario(name: str) -> ScenarioSpec:
    """The :class:`ScenarioSpec` registered under ``name``."""
    _ensure_populated()
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise TraceSpecError(
            f"unknown scenario {name!r};{closest_hint(name, _SCENARIOS)} "
            f"registered scenarios: {known}"
        ) from None


def _ensure_populated() -> None:
    # Importing the presets module runs its register_scenario calls.
    import repro.trace.presets  # noqa: F401


def _parse_value(text: str) -> object:
    """``key=value`` values: int, then float, then bool, else string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


# -- the trace cache ---------------------------------------------------------
#
# Scenario builders are deterministic (seeded presets), so the canonical
# spec string fully determines the trace.  Sweeps that re-run experiments
# over the same spec (shard-scaling at every shard count, CI smoke loops)
# therefore memoize builds here instead of regenerating identical traces.
# ``pcap`` specs are never cached: the file behind the path can change.

_CACHE_MAX = 8
_TRACE_CACHE: "OrderedDict[str, Trace]" = OrderedDict()
_CACHE_HITS = 0
_CACHE_MISSES = 0


class CacheInfo(NamedTuple):
    """Trace-cache counters, in the spirit of ``functools.lru_cache``."""

    hits: int
    misses: int
    size: int
    maxsize: int


def cache_info() -> CacheInfo:
    """Hits/misses of the memoized ``TraceSpec.build`` path.

    Only cacheable builds count (``pcap`` and ``cache=False`` builds are
    outside the memo and tally as neither); counters reset together with
    the entries in :func:`clear_trace_cache`.  Surfaced by the
    ``trace-stats`` experiment so sweep memoization is observable.
    """
    return CacheInfo(
        hits=_CACHE_HITS,
        misses=_CACHE_MISSES,
        size=len(_TRACE_CACHE),
        maxsize=_CACHE_MAX,
    )


def _freeze_trace(trace: Trace) -> None:
    """Make a cached trace's columns read-only.

    Cache hits share one object across callers, so an in-place edit would
    silently corrupt every later build of the same spec; freezing turns
    that hazard into an immediate ``ValueError``.  Derivation helpers
    (`trace/ops`, `slice_time`) return new traces, so read-only columns
    cost nothing legitimate.
    """
    for name in Trace.__slots__:
        getattr(trace, name).setflags(write=False)


def clear_trace_cache() -> None:
    """Drop every memoized trace and reset the hit/miss counters."""
    global _CACHE_HITS, _CACHE_MISSES
    _TRACE_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0


def trace_cache_keys() -> tuple[str, ...]:
    """Canonical spec strings currently cached (LRU order, oldest first)."""
    return tuple(_TRACE_CACHE)


@dataclass(frozen=True)
class TraceSpec:
    """A parsed trace specification: scenario name plus typed parameters."""

    scenario: str
    params: dict[str, object] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "TraceSpec":
        """Parse ``"scenario:key=value,..."`` (or ``"pcap:path"``)."""
        text = text.strip()
        if not text:
            raise TraceSpecError("empty trace spec")
        scenario, _, remainder = text.partition(":")
        scenario = scenario.strip()
        if not scenario:
            raise TraceSpecError(f"trace spec {text!r} has no scenario name")
        if scenario == "pcap":
            # The remainder is the path verbatim (it may contain '=' or
            # ','); an explicit 'path=' prefix is tolerated.
            path = remainder.removeprefix("path=")
            if not path:
                raise TraceSpecError("pcap spec needs a path: 'pcap:FILE'")
            return cls("pcap", {"path": path})
        params: dict[str, object] = {}
        if remainder:
            for pair in remainder.split(","):
                key, eq, value = pair.partition("=")
                key = key.strip()
                if not eq or not key or not value.strip():
                    raise TraceSpecError(
                        f"bad parameter {pair!r} in trace spec {text!r}; "
                        "expected key=value"
                    )
                if key in params:
                    raise TraceSpecError(
                        f"duplicate parameter {key!r} in trace spec {text!r}"
                    )
                params[key] = _parse_value(value.strip())
        return cls(scenario, params)

    def format(self) -> str:
        """The canonical string form; ``parse(format()) == self``."""
        if self.scenario == "pcap" and set(self.params) == {"path"}:
            return f"pcap:{self.params['path']}"
        if not self.params:
            return self.scenario
        pairs = ",".join(
            f"{key}={_format_value(self.params[key])}"
            for key in sorted(self.params)
        )
        return f"{self.scenario}:{pairs}"

    def __str__(self) -> str:
        return self.format()

    def build(self, cache: bool = True) -> Trace:
        """Materialise the trace this spec describes.

        Builds are memoized by canonical spec string (scenario builders
        are deterministic), so repeated runs over the same spec — e.g. a
        shard-scaling sweep — construct the trace once.  Pass
        ``cache=False`` to force a rebuild; ``pcap`` specs are never
        cached since the file behind the path can change.
        """
        global _CACHE_HITS, _CACHE_MISSES
        cacheable = cache and self.scenario != "pcap"
        if cacheable:
            key = self.format()
            cached = _TRACE_CACHE.get(key)
            if cached is not None:
                _CACHE_HITS += 1
                _TRACE_CACHE.move_to_end(key)
                return cached
        trace = self._build_uncached()
        if cacheable:
            _CACHE_MISSES += 1
            _freeze_trace(trace)
            _TRACE_CACHE[key] = trace
            while len(_TRACE_CACHE) > _CACHE_MAX:
                _TRACE_CACHE.popitem(last=False)
        return trace

    def _build_uncached(self) -> Trace:
        spec = get_scenario(self.scenario)
        try:
            bound = inspect.signature(spec.builder).bind(**self.params)
        except TypeError as exc:
            accepted = ", ".join(spec.param_names()) or "(none)"
            raise TraceSpecError(
                f"scenario {self.scenario!r} rejected parameters "
                f"{self.params!r}: {exc}; accepted parameters: {accepted}"
            ) from None
        try:
            return spec.builder(*bound.args, **bound.kwargs)
        except (TypeError, ValueError) as exc:
            raise TraceSpecError(
                f"scenario {self.scenario!r} rejected {self.format()!r}: {exc}"
            ) from None


def build_trace(text: str) -> Trace:
    """Parse-and-build convenience: ``build_trace("zipf:skew=1.2")``."""
    return TraceSpec.parse(text).build()
