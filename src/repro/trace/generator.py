"""The synthetic trace generator.

The generator works epoch by epoch (default 1 s):

1. an MMPP state machine sets the epoch's aggregate packet rate;
2. a churn process updates which sources are active;
3. heavy-hitter *episodes* (transient boosts of one host or one subnet,
   unaligned to any window grid) multiply the affected sources' weights;
4. packet timestamps are drawn uniformly inside the epoch (a Poisson field),
   sources are drawn from the boosted/censored Zipf law, sizes from a
   40 B / 1500 B mixture;
5. burst trains add sub-second clumps from single sources.

Every random draw flows through one ``numpy`` generator seeded from the
config, so traces are bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.random_net import RandomAddressSpace
from repro.trace.config import SyntheticTraceConfig
from repro.trace.container import Trace
from repro.trace.zipf import ZipfSampler

import random as _random

_WELL_KNOWN_PORTS = np.array([80, 443, 53, 22, 123, 8080], dtype=np.uint16)
_WELL_KNOWN_WEIGHTS = np.array([0.35, 0.35, 0.12, 0.05, 0.05, 0.08])


@dataclass(frozen=True)
class HeavyEpisode:
    """One transient heavy-hitter episode injected into the trace.

    ``source_ranks`` are the Zipf ranks whose weight is boosted; for subnet
    episodes this covers every population member inside one /24.
    ``target_share`` is the fraction of aggregate traffic the episode aims
    to push through those sources while fully active; ``boost`` is the
    weight multiplier derived from it at scheduling time.
    """

    start: float
    duration: float
    target_share: float
    boost: float
    source_ranks: tuple[int, ...]
    is_subnet: bool

    @property
    def end(self) -> float:
        """Episode end time."""
        return self.start + self.duration

    def overlap(self, t0: float, t1: float) -> float:
        """Seconds of overlap between the episode and [t0, t1)."""
        return max(0.0, min(self.end, t1) - max(self.start, t0))


class SyntheticTraceGenerator:
    """Generate reproducible CAIDA-like traces from a config.

    After :meth:`generate` the injected :attr:`episodes` schedule is
    available for ground-truth checks (e.g. the DDoS example verifies the
    detector fires inside each episode's span).
    """

    def __init__(self, config: SyntheticTraceConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        address_rng = _random.Random(config.seed ^ 0xA5A5_5A5A)
        self.space = RandomAddressSpace(
            num_networks=config.num_networks,
            network_length=8,
            subnets_per_network=config.subnets_per_network,
            subnet_length=24,
            rng=address_rng,
        )
        # Source population: hosts clustered under the structured space.
        self.sources = np.array(
            self.space.draw_hosts(config.num_sources), dtype=np.uint32
        )
        dest_rng = _random.Random(config.seed ^ 0x0F0F_F0F0)
        dest_space = RandomAddressSpace(
            num_networks=max(4, config.num_networks // 2),
            subnets_per_network=8,
            rng=dest_rng,
        )
        self.destinations = np.array(
            dest_space.draw_hosts(max(64, config.num_sources // 4)),
            dtype=np.uint32,
        )
        self.zipf = ZipfSampler(config.num_sources, config.zipf_alpha, self._rng)
        if config.head_shares:
            self.zipf.reweight_head(list(config.head_shares))
        self.churn_exempt = np.zeros(config.num_sources, dtype=bool)
        self.churn_exempt[: len(config.head_shares)] = True
        if config.band_subnets:
            self._append_band_subnets(address_rng)
        self.population = len(self.sources)
        self.episodes: list[HeavyEpisode] = []

    def _append_band_subnets(self, address_rng: _random.Random) -> None:
        """Extend the population with dedicated borderline /24 bands.

        Each band is a fresh /24 holding ``band_subnet_hosts`` equal
        sources whose aggregate share is pinned; the remaining population's
        probabilities shrink proportionally.
        """
        cfg = self.config
        band_total = sum(cfg.band_subnets)
        # Head-share pins stay absolute; only the unpinned tail shrinks to
        # make room for the band subnets.
        base = self.zipf.probabilities.copy()
        num_heads = len(cfg.head_shares)
        head_mass = float(base[:num_heads].sum())
        tail_mass = float(base[num_heads:].sum())
        target_tail = 1.0 - head_mass - band_total
        if target_tail <= 0:
            raise ValueError(
                "head_shares + band_subnets leave no room for tail traffic"
            )
        base[num_heads:] *= target_tail / tail_mass
        probs = [base]
        new_sources: list[int] = []
        used = {int(s) >> 8 for s in self.sources}
        for share in cfg.band_subnets:
            subnet = address_rng.getrandbits(24)
            while subnet in used:
                subnet = address_rng.getrandbits(24)
            used.add(subnet)
            hosts = address_rng.sample(range(256), cfg.band_subnet_hosts)
            new_sources.extend((subnet << 8) | h for h in hosts)
            probs.append(
                np.full(
                    cfg.band_subnet_hosts,
                    share / cfg.band_subnet_hosts,
                    dtype=np.float64,
                )
            )
        self.sources = np.concatenate(
            [self.sources, np.array(new_sources, dtype=np.uint32)]
        )
        self.zipf = ZipfSampler.from_probabilities(
            np.concatenate(probs), self._rng
        )
        self.churn_exempt = np.concatenate(
            [self.churn_exempt, np.ones(len(new_sources), dtype=bool)]
        )

    # -- the component processes ------------------------------------------

    def _epoch_rates(self, num_epochs: int) -> np.ndarray:
        """MMPP: aggregate packets/second for each epoch."""
        cfg = self.config.rate
        rates = np.empty(num_epochs, dtype=np.float64)
        busy = False
        remaining = float(
            self._rng.exponential(cfg.mean_calm_s)
        )
        epoch_len = self.config.churn.epoch_s
        for e in range(num_epochs):
            rates[e] = cfg.base_rate * (cfg.busy_factor if busy else 1.0)
            remaining -= epoch_len
            while remaining <= 0:
                busy = not busy
                mean = cfg.mean_busy_s if busy else cfg.mean_calm_s
                remaining += float(self._rng.exponential(mean))
        return rates

    def _initial_active(self) -> np.ndarray:
        """Initial active-source mask (churn-exempt sources always active)."""
        frac = self.config.churn.initially_active_fraction
        active = self._rng.random(self.population) < frac
        return active | self.churn_exempt

    def _churn_step(self, active: np.ndarray) -> np.ndarray:
        """One epoch of activate/deactivate churn."""
        cfg = self.config.churn
        u = self._rng.random(len(active))
        flip_off = active & (u < cfg.deactivate_prob)
        flip_on = ~active & (u < cfg.activate_prob)
        return ((active & ~flip_off) | flip_on) | self.churn_exempt

    def _schedule_episodes(self) -> list[HeavyEpisode]:
        """Draw the heavy-episode schedule for the whole trace."""
        cfg = self.config.episodes
        expected = cfg.episodes_per_minute * self.config.duration_s / 60.0
        count = int(self._rng.poisson(expected)) if expected > 0 else 0
        episodes: list[HeavyEpisode] = []
        src_by_subnet: dict[int, list[int]] = {}
        subnet_shift = 8  # /24 grouping of the uint32 address
        for rank, addr in enumerate(self.sources):
            src_by_subnet.setdefault(int(addr) >> subnet_shift, []).append(rank)
        subnet_keys = list(src_by_subnet)
        probabilities = self.zipf.probabilities
        for _ in range(count):
            start = float(self._rng.uniform(0.0, self.config.duration_s))
            # Log-uniform durations: most episodes are short relative to the
            # analysis windows.  A short episode straddling a window boundary
            # has its mass split across two disjoint windows — exactly the
            # aggregate a sliding window reveals and a disjoint one hides.
            duration = float(
                np.exp(
                    self._rng.uniform(
                        np.log(cfg.min_duration_s), np.log(cfg.max_duration_s)
                    )
                )
            )
            if self._rng.random() < cfg.subnet_fraction and subnet_keys:
                subnet = subnet_keys[int(self._rng.integers(len(subnet_keys)))]
                ranks = tuple(src_by_subnet[subnet])
                is_subnet = True
            else:
                ranks = (int(self._rng.integers(self.population)),)
                is_subnet = False
            # Inverse-square share law (p(s) ~ 1/s^2): the count of episodes
            # above share s falls off like 1/s, mirroring the heavy-tailed
            # aggregate-size distribution of backbone traffic — many
            # borderline transients near the smallest detection threshold,
            # rare violent spikes near max_share.
            u = float(self._rng.random())
            inv_lo, inv_hi = 1.0 / cfg.min_share, 1.0 / cfg.max_share
            share = 1.0 / (inv_lo - u * (inv_lo - inv_hi))
            base_mass = float(sum(probabilities[r] for r in ranks))
            # Weight multiplier w so that w*m / (1 - m + w*m) ~= share,
            # where m is the targets' base probability mass.
            if base_mass > 0 and share < 1.0:
                boost = max(
                    1.0, share * (1.0 - base_mass) / (base_mass * (1.0 - share))
                )
            else:
                boost = 1.0
            episodes.append(
                HeavyEpisode(start, duration, share, boost, ranks, is_subnet)
            )
        episodes.sort(key=lambda ep: ep.start)
        return episodes

    def _episode_weights(
        self, episodes: list[HeavyEpisode], t0: float, t1: float
    ) -> np.ndarray:
        """Multiplicative weight vector from episodes overlapping [t0, t1)."""
        weights = np.ones(self.population, dtype=np.float64)
        span = t1 - t0
        for ep in episodes:
            frac = ep.overlap(t0, t1) / span
            if frac > 0.0:
                boost = 1.0 + (ep.boost - 1.0) * frac
                weights[list(ep.source_ranks)] *= boost
        return weights

    def _packet_sizes(self, count: int) -> np.ndarray:
        """Two-point 40 B / 1500 B size mixture hitting the configured mean."""
        mtu_prob = (self.config.mean_packet_bytes - 40.0) / (1500.0 - 40.0)
        big = self._rng.random(count) < mtu_prob
        return np.where(big, 1500, 40).astype(np.int64)

    # -- main loop ----------------------------------------------------------

    def generate(self) -> Trace:
        """Generate the trace; also populates :attr:`episodes`."""
        cfg = self.config
        epoch_len = cfg.churn.epoch_s
        num_epochs = int(np.ceil(cfg.duration_s / epoch_len))
        rates = self._epoch_rates(num_epochs)
        active = self._initial_active()
        self.episodes = self._schedule_episodes()

        ts_parts: list[np.ndarray] = []
        rank_parts: list[np.ndarray] = []
        size_parts: list[np.ndarray] = []

        for e in range(num_epochs):
            t0 = e * epoch_len
            t1 = min((e + 1) * epoch_len, cfg.duration_s)
            span = t1 - t0
            if span <= 0:
                break
            if not active.any():
                active = self._initial_active()

            weights = self._episode_weights(self.episodes, t0, t1)
            weights *= active.astype(np.float64)
            if weights.sum() <= 0:
                weights = np.ones(self.population)

            n = int(self._rng.poisson(rates[e] * span))
            if n:
                ranks = self.zipf.sample_weighted(n, weights)
                ts = self._epoch_timestamps(ranks, t0, t1)
                ts_parts.append(ts)
                rank_parts.append(ranks)
                size_parts.append(self._packet_sizes(n))

            n_bursts = int(self._rng.poisson(cfg.bursts.bursts_per_epoch))
            for _ in range(n_bursts):
                b = self._burst(t0, t1, weights)
                if b is not None:
                    ts_parts.append(b[0])
                    rank_parts.append(b[1])
                    size_parts.append(b[2])

            active = self._churn_step(active)

        if not ts_parts:
            return Trace.empty()
        return self._assemble(
            np.concatenate(ts_parts),
            np.concatenate(rank_parts),
            np.concatenate(size_parts),
        )

    def _epoch_timestamps(
        self, ranks: np.ndarray, t0: float, t1: float
    ) -> np.ndarray:
        """Timestamps for one epoch's packets, aligned with ``ranks``.

        Without clumping this is a uniform (Poisson) field.  With
        ``train_packets > 0`` each source's packets are grouped into trains
        of roughly that many packets, each train occupying a short
        ``train_span_s`` interval at a random position — the TCP-like
        micro-burstiness that makes the composition of any 100 ms of
        traffic differ from the window average (the paper's Figure 3
        effect).
        """
        n = len(ranks)
        cfg = self.config.bursts
        if cfg.train_packets <= 0 and cfg.gap_s <= 0 and cfg.slot_sigma <= 0:
            return np.sort(self._rng.uniform(t0, t1, n))
        if cfg.slot_sigma > 0:
            return self._slot_modulated_timestamps(ranks, t0, t1)
        ts = np.empty(n, dtype=np.float64)
        span = cfg.train_span_s
        epoch_len = t1 - t0
        gap = min(cfg.gap_s, 0.9 * epoch_len)
        order = np.argsort(ranks, kind="stable")
        sorted_ranks = ranks[order]
        boundaries = np.flatnonzero(np.diff(sorted_ranks)) + 1
        groups = np.split(order, boundaries)
        for group in groups:
            k = len(group)
            if cfg.train_packets > 0:
                num_trains = max(1, int(np.ceil(k / cfg.train_packets)))
                starts = self._rng.uniform(t0, max(t0, t1 - span), num_trains)
                which = self._rng.integers(num_trains, size=k)
                group_ts = starts[which] + self._rng.uniform(0.0, span, k)
            else:
                group_ts = self._rng.uniform(t0, t1, k)
            if gap > 0:
                # One silent interval per source per epoch: packets are
                # placed in the epoch minus the gap, then shifted across it.
                gap_start = float(self._rng.uniform(t0, t1 - gap))
                squeezed = t0 + (group_ts - t0) * (1.0 - gap / epoch_len)
                group_ts = np.where(
                    squeezed >= gap_start, squeezed + gap, squeezed
                )
            ts[group] = group_ts
        np.clip(ts, t0, t1 - 1e-9, out=ts)
        # The caller sorts globally after concatenation; keep this epoch
        # internally unsorted but time-bounded.
        return ts

    def _slot_modulated_timestamps(
        self, ranks: np.ndarray, t0: float, t1: float
    ) -> np.ndarray:
        """Multifractal slot placement of one epoch's packets.

        Each source's packets are spread over ``slot_s`` slots with i.i.d.
        lognormal weights, so any given 100 ms holds anywhere between ~zero
        and several times a source's average — the heavy small-timescale
        variance of real backbone traffic.
        """
        cfg = self.config.bursts
        n = len(ranks)
        ts = np.empty(n, dtype=np.float64)
        num_slots = max(1, int(round((t1 - t0) / cfg.slot_s)))
        slot_edges = np.linspace(t0, t1, num_slots + 1)
        order = np.argsort(ranks, kind="stable")
        sorted_ranks = ranks[order]
        boundaries = np.flatnonzero(np.diff(sorted_ranks)) + 1
        for group in np.split(order, boundaries):
            k = len(group)
            weights = self._rng.lognormal(0.0, cfg.slot_sigma, num_slots)
            weights /= weights.sum()
            slots = self._rng.choice(num_slots, size=k, p=weights)
            ts[group] = slot_edges[slots] + self._rng.uniform(
                0.0, 1.0, k
            ) * (slot_edges[slots + 1] - slot_edges[slots])
        np.clip(ts, t0, t1 - 1e-9, out=ts)
        return ts

    def _burst(
        self, t0: float, t1: float, weights: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """One burst train from a single (weighted-random) source."""
        cfg = self.config.bursts
        if cfg.burst_packets == 0:
            return None
        rank = int(self.zipf.sample_weighted(1, weights)[0])
        start = float(self._rng.uniform(t0, max(t0, t1 - cfg.burst_span_s)))
        ts = np.sort(
            self._rng.uniform(start, start + cfg.burst_span_s, cfg.burst_packets)
        )
        ranks = np.full(cfg.burst_packets, rank, dtype=np.int64)
        sizes = np.full(cfg.burst_packets, cfg.burst_size_bytes, dtype=np.int64)
        return ts, ranks, sizes

    def _assemble(
        self, ts: np.ndarray, ranks: np.ndarray, sizes: np.ndarray
    ) -> Trace:
        """Sort by time, map ranks to addresses, and fill headers."""
        order = np.argsort(ts, kind="stable")
        ts = ts[order]
        src = self.sources[ranks[order]]
        sizes = sizes[order]
        n = len(ts)
        dst = self.destinations[self._rng.integers(len(self.destinations), size=n)]
        sport = self._rng.integers(1024, 65536, size=n, dtype=np.uint32)
        dport = self._rng.choice(_WELL_KNOWN_PORTS, size=n, p=_WELL_KNOWN_WEIGHTS)
        proto = np.where(self._rng.random(n) < 0.8, 6, 17).astype(np.uint8)
        return Trace(
            ts, src, dst, sizes,
            sport.astype(np.uint16), dport.astype(np.uint16), proto,
        )


def generate_trace(config: SyntheticTraceConfig) -> Trace:
    """One-call convenience wrapper over :class:`SyntheticTraceGenerator`."""
    return SyntheticTraceGenerator(config).generate()
