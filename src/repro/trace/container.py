"""Column-oriented packet trace container.

Experiments repeatedly aggregate byte counts by source over thousands of
overlapping windows; doing that over Python objects would dominate runtime.
:class:`Trace` therefore keeps the packet fields in parallel numpy arrays
sorted by timestamp, and offers exactly the primitives the window engines
need: time slicing by binary search and grouped byte aggregation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.packet.model import Packet


class Trace:
    """An immutable, time-sorted packet trace backed by numpy columns."""

    __slots__ = ("ts", "src", "dst", "length", "sport", "dport", "proto")

    def __init__(
        self,
        ts: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        length: np.ndarray,
        sport: np.ndarray | None = None,
        dport: np.ndarray | None = None,
        proto: np.ndarray | None = None,
    ) -> None:
        n = len(ts)
        for name, col in (("src", src), ("dst", dst), ("length", length)):
            if len(col) != n:
                raise ValueError(f"column {name} has length {len(col)} != {n}")
        if n and np.any(np.diff(ts) < 0):
            raise ValueError("timestamps must be sorted non-decreasing")
        self.ts = np.asarray(ts, dtype=np.float64)
        self.src = np.asarray(src, dtype=np.uint32)
        self.dst = np.asarray(dst, dtype=np.uint32)
        self.length = np.asarray(length, dtype=np.int64)
        self.sport = (
            np.zeros(n, dtype=np.uint16) if sport is None
            else np.asarray(sport, dtype=np.uint16)
        )
        self.dport = (
            np.zeros(n, dtype=np.uint16) if dport is None
            else np.asarray(dport, dtype=np.uint16)
        )
        self.proto = (
            np.full(n, 6, dtype=np.uint8) if proto is None
            else np.asarray(proto, dtype=np.uint8)
        )

    # -- construction ----------------------------------------------------

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "Trace":
        """Build a trace from packet records (sorting by timestamp)."""
        pkts = sorted(packets, key=lambda p: p.ts)
        n = len(pkts)
        ts = np.fromiter((p.ts for p in pkts), dtype=np.float64, count=n)
        src = np.fromiter((p.src for p in pkts), dtype=np.uint32, count=n)
        dst = np.fromiter((p.dst for p in pkts), dtype=np.uint32, count=n)
        length = np.fromiter((p.length for p in pkts), dtype=np.int64, count=n)
        sport = np.fromiter((p.sport for p in pkts), dtype=np.uint16, count=n)
        dport = np.fromiter((p.dport for p in pkts), dtype=np.uint16, count=n)
        proto = np.fromiter((p.proto for p in pkts), dtype=np.uint8, count=n)
        return cls(ts, src, dst, length, sport, dport, proto)

    @classmethod
    def empty(cls) -> "Trace":
        """A trace with no packets."""
        return cls(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.int64),
        )

    # -- basic properties -------------------------------------------------

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def start_time(self) -> float:
        """Timestamp of the first packet (0.0 for an empty trace)."""
        return float(self.ts[0]) if len(self) else 0.0

    @property
    def end_time(self) -> float:
        """Timestamp of the last packet (0.0 for an empty trace)."""
        return float(self.ts[-1]) if len(self) else 0.0

    @property
    def duration(self) -> float:
        """end_time - start_time."""
        return self.end_time - self.start_time

    @property
    def total_bytes(self) -> int:
        """Sum of packet lengths."""
        return int(self.length.sum())

    # -- slicing & aggregation -------------------------------------------

    def index_range(self, t0: float, t1: float) -> tuple[int, int]:
        """Packet index range [i, j) covering timestamps in [t0, t1)."""
        i = int(np.searchsorted(self.ts, t0, side="left"))
        j = int(np.searchsorted(self.ts, t1, side="left"))
        return i, j

    def slice_time(self, t0: float, t1: float) -> "Trace":
        """The sub-trace with timestamps in [t0, t1)."""
        i, j = self.index_range(t0, t1)
        return self.slice_index(i, j)

    def slice_index(self, i: int, j: int) -> "Trace":
        """The sub-trace of packets [i, j) (columns are shared views)."""
        return Trace(
            self.ts[i:j], self.src[i:j], self.dst[i:j], self.length[i:j],
            self.sport[i:j], self.dport[i:j], self.proto[i:j],
        )

    def bytes_by_key(
        self, t0: float, t1: float, key: str = "src"
    ) -> dict[int, int]:
        """Byte volume per key over the time range [t0, t1).

        ``key`` selects the column: ``"src"`` (the paper's setting) or
        ``"dst"``.  Returns ``{key_value: bytes}``.
        """
        i, j = self.index_range(t0, t1)
        return self.bytes_by_key_index(i, j, key)

    def key_column(self, key: str) -> np.ndarray:
        """The column addressed by a key name (``"src"`` or ``"dst"``)."""
        if key == "src":
            return self.src
        if key == "dst":
            return self.dst
        raise ValueError(f"unknown key column {key!r}")

    def bytes_by_key_index(
        self, i: int, j: int, key: str = "src"
    ) -> dict[int, int]:
        """Like :meth:`bytes_by_key` but over a packet index range [i, j)."""
        col = self.key_column(key)
        keys, inverse = np.unique(col[i:j], return_inverse=True)
        sums = np.bincount(inverse, weights=self.length[i:j].astype(np.float64))
        return {int(k): int(s) for k, s in zip(keys, sums)}

    def bytes_in_range(self, t0: float, t1: float) -> int:
        """Total bytes with timestamps in [t0, t1)."""
        i, j = self.index_range(t0, t1)
        return int(self.length[i:j].sum())

    # -- iteration ---------------------------------------------------------

    def packet_at(self, index: int) -> Packet:
        """Materialise packet ``index`` as a :class:`Packet` record."""
        return Packet(
            ts=float(self.ts[index]),
            src=int(self.src[index]),
            dst=int(self.dst[index]),
            length=int(self.length[index]),
            sport=int(self.sport[index]),
            dport=int(self.dport[index]),
            proto=int(self.proto[index]),
        )

    def packets(self) -> Iterator[Packet]:
        """Iterate the trace as :class:`Packet` records."""
        for i in range(len(self)):
            yield self.packet_at(i)

    def __iter__(self) -> Iterator[Packet]:
        return self.packets()

    def __repr__(self) -> str:
        return (
            f"Trace(n={len(self)}, span=[{self.start_time:.3f}, "
            f"{self.end_time:.3f}], bytes={self.total_bytes})"
        )
