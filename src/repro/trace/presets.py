"""Preset trace configurations mirroring the paper's datasets.

The paper analyses one-hour CAIDA equinix-chicago traces from **four
different days** (Figure 2) and a **20-minute** trace (Figure 3).  The four
"days" below differ in seed, skew, burstiness and episode rate the way
weekday/weekend backbone snapshots do, so cross-day variation shows up in
the reproduced figures just as it does in the paper's.

Besides the paper's datasets, this module defines adversarial scenarios
(DDoS bursts, flash crowds, hierarchical portscans) that stress the
detectors in ways smooth backbone traffic does not.

Every preset is registered as a :mod:`repro.trace.spec` scenario at the
bottom of the module, so all of them are addressable as strings
(``"caida:day=2,duration=60"``, ``"flash-crowd:duration=90"``) from the
CLI and the experiment runner.

Durations default to laptop scale; pass ``duration`` explicitly to go
longer (the generator is O(packets)).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.trace.config import (
    BurstConfig,
    ChurnConfig,
    HeavyEpisodeConfig,
    RateConfig,
    SyntheticTraceConfig,
)
from repro.trace.container import Trace
from repro.trace.generator import generate_trace
from repro.trace.spec import register_scenario

#: Per-day flavour: (seed, zipf_alpha, busy_factor, episodes_per_minute).
_DAY_FLAVOURS = (
    (101, 1.02, 2.2, 40.0),
    (202, 1.08, 2.8, 50.0),
    (303, 1.00, 2.0, 32.0),
    (404, 1.12, 3.2, 45.0),
)


def caida_like_config(day: int = 0, duration: float = 120.0) -> SyntheticTraceConfig:
    """Config for one synthetic "CAIDA day" (day in 0..3)."""
    if not 0 <= day < len(_DAY_FLAVOURS):
        raise ValueError(f"day must be 0..{len(_DAY_FLAVOURS) - 1}, got {day}")
    seed, alpha, busy, episodes = _DAY_FLAVOURS[day]
    return SyntheticTraceConfig(
        duration_s=duration,
        zipf_alpha=alpha,
        seed=seed,
        rate=RateConfig(busy_factor=busy),
        churn=ChurnConfig(deactivate_prob=0.03, activate_prob=0.02),
        bursts=BurstConfig(slot_sigma=1.0),
        episodes=HeavyEpisodeConfig(episodes_per_minute=episodes),
    )


def caida_like_day(day: int = 0, duration: float = 120.0) -> Trace:
    """One synthetic "CAIDA day" trace (day in 0..3)."""
    return generate_trace(caida_like_config(day, duration))


def all_days(duration: float = 120.0) -> list[Trace]:
    """The four synthetic days, as used for Figure 2."""
    return [caida_like_day(day, duration) for day in range(len(_DAY_FLAVOURS))]


def sensitivity_config(
    duration: float = 240.0, seed: int = 777
) -> SyntheticTraceConfig:
    """Config of the Figure 3 trace (see :func:`sensitivity_trace`)."""
    return SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        num_sources=4000,
        zipf_alpha=0.7,
        num_networks=22,
        subnets_per_network=16,
        # A dense band of borderline aggregates straddling the 5 %
        # threshold, at both the leaf and the /24 level — the population
        # whose members flip in and out of the HHH set when the window is
        # micro-shrunk.
        head_shares=tuple(np.linspace(0.056, 0.046, 8)),
        band_subnets=tuple(np.linspace(0.0555, 0.0465, 8)),
        rate=RateConfig(base_rate=1200.0, busy_factor=1.0),
        churn=ChurnConfig(deactivate_prob=0.002, activate_prob=0.0015),
        # Multifractal 100 ms slots: the heavy small-timescale variance
        # that makes the last 10-100 ms of a window compositionally
        # different from the window average.
        bursts=BurstConfig(
            bursts_per_epoch=0.0, burst_packets=0, slot_sigma=1.8
        ),
        episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
    )


def sensitivity_trace(duration: float = 240.0, seed: int = 777) -> Trace:
    """The Figure 3 trace: a dense borderline band + multifractal slots.

    The paper uses 20 minutes; the default here is 4 minutes, which already
    yields enough 10 s windows for a stable CDF.  Pass ``duration=1200`` for
    the full-length version.
    """
    return generate_trace(sensitivity_config(duration, seed))


def calm_trace(duration: float = 60.0, seed: int = 42) -> Trace:
    """A deliberately calm trace: no bursts, no episodes, Poisson arrivals.

    Used by tests and ablations as the negative control — with the
    burstiness knobs off, hidden HHHs (and Figure 3 dissimilarity) should
    mostly vanish.
    """
    config = SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        rate=RateConfig(busy_factor=1.0),
        bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0),
        episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
        churn=ChurnConfig(deactivate_prob=0.0, activate_prob=0.0),
    )
    return generate_trace(config)


def ddos_trace(
    duration: float = 120.0,
    seed: int = 909,
    attack_share: float = 0.5,
) -> Trace:
    """A trace with violent subnet-level episodes, for the DDoS example.

    ``attack_share`` is the upper bound on the traffic fraction an attack
    episode carries while active (0.5 = half the link).
    """
    config = SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        episodes=HeavyEpisodeConfig(
            episodes_per_minute=3.0,
            min_share=0.15,
            max_share=attack_share,
            min_duration_s=5.0,
            max_duration_s=20.0,
            subnet_fraction=0.8,
        ),
    )
    return generate_trace(config)


def zipf_config(
    skew: float = 1.1,
    duration: float = 60.0,
    sources: int = 4000,
    seed: int = 7,
) -> SyntheticTraceConfig:
    """A plain Zipf population with no dynamics: skew is the only knob."""
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    return SyntheticTraceConfig(
        duration_s=duration,
        num_sources=sources,
        zipf_alpha=skew,
        seed=seed,
        rate=RateConfig(busy_factor=1.0),
        bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0),
        episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
        churn=ChurnConfig(deactivate_prob=0.0, activate_prob=0.0),
    )


def zipf_trace(
    skew: float = 1.1,
    duration: float = 60.0,
    sources: int = 4000,
    seed: int = 7,
) -> Trace:
    """A static Zipf-skewed trace (Poisson arrivals, no churn/episodes)."""
    return generate_trace(zipf_config(skew, duration, sources, seed))


def ddos_burst_config(
    duration: float = 60.0,
    seed: int = 1313,
    attack_share: float = 0.6,
    burst_s: float = 6.0,
) -> SyntheticTraceConfig:
    """Short violent subnet-level attack bursts.

    Unlike :func:`ddos_trace`'s sustained episodes, every attack here is a
    whole-subnet spike of at most ``burst_s`` seconds carrying up to
    ``attack_share`` of the link — the flash DDoS that lives *inside* a
    window and disappears into the window average.
    """
    if not 0.0 < attack_share < 1.0:
        raise ValueError(f"attack_share must be in (0, 1), got {attack_share}")
    if burst_s <= 1.0:
        raise ValueError(f"burst_s must exceed 1 second, got {burst_s}")
    return SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        rate=RateConfig(busy_factor=4.0, mean_calm_s=10.0, mean_busy_s=2.0),
        episodes=HeavyEpisodeConfig(
            episodes_per_minute=8.0,
            min_share=0.25,
            max_share=attack_share,
            min_duration_s=1.0,
            max_duration_s=burst_s,
            subnet_fraction=1.0,
        ),
    )


def ddos_burst_trace(
    duration: float = 60.0,
    seed: int = 1313,
    attack_share: float = 0.6,
    burst_s: float = 6.0,
) -> Trace:
    """Short violent subnet attack bursts (see :func:`ddos_burst_config`)."""
    return generate_trace(ddos_burst_config(duration, seed, attack_share, burst_s))


def flash_crowd_config(
    duration: float = 90.0,
    seed: int = 2121,
    dormant_fraction: float = 0.9,
) -> SyntheticTraceConfig:
    """A flash crowd: a mostly dormant population stampedes in.

    Only ``1 - dormant_fraction`` of sources are active at t=0; every epoch
    a large fraction of the dormant ones wake up and almost none leave, so
    the active set — and with it the heavy-hitter aggregates at every
    prefix level — grows explosively over the trace.  The volume ramp is
    reinforced by a busy-heavy arrival process.
    """
    if not 0.0 <= dormant_fraction < 1.0:
        raise ValueError(
            f"dormant_fraction must be in [0, 1), got {dormant_fraction}"
        )
    return SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        rate=RateConfig(
            base_rate=900.0, busy_factor=3.0, mean_calm_s=20.0, mean_busy_s=12.0
        ),
        churn=ChurnConfig(
            initially_active_fraction=1.0 - dormant_fraction,
            activate_prob=0.06,
            deactivate_prob=0.004,
        ),
        episodes=HeavyEpisodeConfig(episodes_per_minute=10.0),
    )


def flash_crowd_trace(
    duration: float = 90.0,
    seed: int = 2121,
    dormant_fraction: float = 0.9,
) -> Trace:
    """A flash-crowd stampede (see :func:`flash_crowd_config`)."""
    return generate_trace(flash_crowd_config(duration, seed, dormant_fraction))


def portscan_config(
    duration: float = 90.0,
    seed: int = 3434,
    scan_share: float = 0.25,
    scanners: int = 64,
) -> SyntheticTraceConfig:
    """A hierarchical portscan: heavy at /24, invisible at the leaves.

    A dedicated /24 of ``scanners`` equal small sources jointly carries
    ``scan_share`` of the traffic.  Each individual scanner stays far below
    any leaf-level threshold, so only detectors that aggregate up the
    prefix hierarchy see the scan — the canonical case for HHH over plain
    heavy hitters.
    """
    if scanners < 8:
        raise ValueError(f"need at least 8 scanners, got {scanners}")
    if not 0.0 < scan_share < 0.9:
        raise ValueError(f"scan_share must be in (0, 0.9), got {scan_share}")
    return SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        zipf_alpha=1.05,
        band_subnets=(scan_share,),
        band_subnet_hosts=scanners,
        episodes=HeavyEpisodeConfig(episodes_per_minute=10.0),
    )


def portscan_trace(
    duration: float = 90.0,
    seed: int = 3434,
    scan_share: float = 0.25,
    scanners: int = 64,
) -> Trace:
    """A hierarchical portscan /24 (see :func:`portscan_config`)."""
    return generate_trace(portscan_config(duration, seed, scan_share, scanners))


def drift_trace(
    duration: float = 60.0,
    seed: int = 4242,
    attack_share: float = 0.6,
) -> Trace:
    """A drift splice: calm → ddos-burst → calm, thirds of ``duration``.

    The canonical streaming scenario: the heavy-hitter population is
    stable, then a violent burst regime rewrites it, then it reverts.
    Online emissions should show churn flipping on at the first seam and
    off again after the second — the signature the ``stream-replay``
    experiment asserts on.  Built with the splice ops of
    :mod:`repro.trace.ops`, so the timeline is continuous.
    """
    from repro.trace.ops import concat_traces, shift_trace

    third = duration / 3.0
    phases = [
        calm_trace(third, seed),
        ddos_burst_trace(third, seed + 1, attack_share),
        calm_trace(third, seed + 2),
    ]
    spliced: list[Trace] = []
    clock = 0.0
    for phase in phases:
        gap = phase.duration / max(len(phase) - 1, 1)
        spliced.append(shift_trace(phase, clock - phase.start_time))
        clock = spliced[-1].end_time + gap
    return concat_traces(spliced)


def scaled_config(
    base: SyntheticTraceConfig, rate_scale: float
) -> SyntheticTraceConfig:
    """``base`` with the aggregate packet rate scaled by ``rate_scale``."""
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    new_rate = replace(base.rate, base_rate=base.rate.base_rate * rate_scale)
    return replace(base, rate=new_rate)


def _pcap_trace(path: str) -> Trace:
    """Load a recorded pcap file as a columnar trace."""
    from repro.packet.pcap import read_pcap

    return Trace.from_packets(read_pcap(path))


# -- scenario registrations (string-addressable via repro.trace.spec) --------

register_scenario(
    "caida", caida_like_day,
    description="synthetic CAIDA-like backbone day (day in 0..3)",
    example="caida:day=0,duration=120",
)
register_scenario(
    "sensitivity", sensitivity_trace,
    description="Figure 3 trace: borderline band + multifractal slots",
    example="sensitivity:duration=240",
)
register_scenario(
    "calm", calm_trace,
    description="negative control: Poisson arrivals, no bursts/episodes",
    example="calm:duration=60",
)
register_scenario(
    "zipf", zipf_trace,
    description="static Zipf population, skew as the only knob",
    example="zipf:skew=1.2,duration=60",
)
register_scenario(
    "ddos", ddos_trace,
    description="sustained subnet-level attack episodes",
    example="ddos:duration=120,attack_share=0.5",
)
register_scenario(
    "ddos-burst", ddos_burst_trace,
    description="short violent whole-subnet attack bursts",
    example="ddos-burst:duration=60,attack_share=0.6",
)
register_scenario(
    "flash-crowd", flash_crowd_trace,
    description="dormant population stampedes in; aggregates ramp up",
    example="flash-crowd:duration=90",
)
register_scenario(
    "portscan", portscan_trace,
    description="hierarchical portscan /24: heavy aggregate, tiny leaves",
    example="portscan:scan_share=0.25,scanners=64",
)
register_scenario(
    "drift", drift_trace,
    description="drift splice: calm -> ddos-burst -> calm thirds",
    example="drift:duration=60,attack_share=0.6",
)
register_scenario(
    "pcap", _pcap_trace,
    description="a recorded pcap file",
    example="pcap:/path/to/trace.pcap",
)
