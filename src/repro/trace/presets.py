"""Preset trace configurations mirroring the paper's datasets.

The paper analyses one-hour CAIDA equinix-chicago traces from **four
different days** (Figure 2) and a **20-minute** trace (Figure 3).  The four
"days" below differ in seed, skew, burstiness and episode rate the way
weekday/weekend backbone snapshots do, so cross-day variation shows up in
the reproduced figures just as it does in the paper's.

Durations default to laptop scale; pass ``duration`` explicitly to go
longer (the generator is O(packets)).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.trace.config import (
    BurstConfig,
    ChurnConfig,
    HeavyEpisodeConfig,
    RateConfig,
    SyntheticTraceConfig,
)
from repro.trace.container import Trace
from repro.trace.generator import generate_trace

#: Per-day flavour: (seed, zipf_alpha, busy_factor, episodes_per_minute).
_DAY_FLAVOURS = (
    (101, 1.02, 2.2, 40.0),
    (202, 1.08, 2.8, 50.0),
    (303, 1.00, 2.0, 32.0),
    (404, 1.12, 3.2, 45.0),
)


def caida_like_config(day: int = 0, duration: float = 120.0) -> SyntheticTraceConfig:
    """Config for one synthetic "CAIDA day" (day in 0..3)."""
    if not 0 <= day < len(_DAY_FLAVOURS):
        raise ValueError(f"day must be 0..{len(_DAY_FLAVOURS) - 1}, got {day}")
    seed, alpha, busy, episodes = _DAY_FLAVOURS[day]
    return SyntheticTraceConfig(
        duration_s=duration,
        zipf_alpha=alpha,
        seed=seed,
        rate=RateConfig(busy_factor=busy),
        churn=ChurnConfig(deactivate_prob=0.03, activate_prob=0.02),
        bursts=BurstConfig(slot_sigma=1.0),
        episodes=HeavyEpisodeConfig(episodes_per_minute=episodes),
    )


def caida_like_day(day: int = 0, duration: float = 120.0) -> Trace:
    """One synthetic "CAIDA day" trace (day in 0..3)."""
    return generate_trace(caida_like_config(day, duration))


def all_days(duration: float = 120.0) -> list[Trace]:
    """The four synthetic days, as used for Figure 2."""
    return [caida_like_day(day, duration) for day in range(len(_DAY_FLAVOURS))]


def sensitivity_config(
    duration: float = 240.0, seed: int = 777
) -> SyntheticTraceConfig:
    """Config of the Figure 3 trace (see :func:`sensitivity_trace`)."""
    return SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        num_sources=4000,
        zipf_alpha=0.7,
        num_networks=22,
        subnets_per_network=16,
        # A dense band of borderline aggregates straddling the 5 %
        # threshold, at both the leaf and the /24 level — the population
        # whose members flip in and out of the HHH set when the window is
        # micro-shrunk.
        head_shares=tuple(np.linspace(0.056, 0.046, 8)),
        band_subnets=tuple(np.linspace(0.0555, 0.0465, 8)),
        rate=RateConfig(base_rate=1200.0, busy_factor=1.0),
        churn=ChurnConfig(deactivate_prob=0.002, activate_prob=0.0015),
        # Multifractal 100 ms slots: the heavy small-timescale variance
        # that makes the last 10-100 ms of a window compositionally
        # different from the window average.
        bursts=BurstConfig(
            bursts_per_epoch=0.0, burst_packets=0, slot_sigma=1.8
        ),
        episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
    )


def sensitivity_trace(duration: float = 240.0, seed: int = 777) -> Trace:
    """The Figure 3 trace: a dense borderline band + multifractal slots.

    The paper uses 20 minutes; the default here is 4 minutes, which already
    yields enough 10 s windows for a stable CDF.  Pass ``duration=1200`` for
    the full-length version.
    """
    return generate_trace(sensitivity_config(duration, seed))


def calm_trace(duration: float = 60.0, seed: int = 42) -> Trace:
    """A deliberately calm trace: no bursts, no episodes, Poisson arrivals.

    Used by tests and ablations as the negative control — with the
    burstiness knobs off, hidden HHHs (and Figure 3 dissimilarity) should
    mostly vanish.
    """
    config = SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        rate=RateConfig(busy_factor=1.0),
        bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0),
        episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
        churn=ChurnConfig(deactivate_prob=0.0, activate_prob=0.0),
    )
    return generate_trace(config)


def ddos_trace(
    duration: float = 120.0,
    seed: int = 909,
    attack_share: float = 0.5,
) -> Trace:
    """A trace with violent subnet-level episodes, for the DDoS example.

    ``attack_share`` is the upper bound on the traffic fraction an attack
    episode carries while active (0.5 = half the link).
    """
    config = SyntheticTraceConfig(
        duration_s=duration,
        seed=seed,
        episodes=HeavyEpisodeConfig(
            episodes_per_minute=3.0,
            min_share=0.15,
            max_share=attack_share,
            min_duration_s=5.0,
            max_duration_s=20.0,
            subnet_fraction=0.8,
        ),
    )
    return generate_trace(config)


def scaled_config(
    base: SyntheticTraceConfig, rate_scale: float
) -> SyntheticTraceConfig:
    """``base`` with the aggregate packet rate scaled by ``rate_scale``."""
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    new_rate = replace(base.rate, base_rate=base.rate.base_rate * rate_scale)
    return replace(base, rate=new_rate)
