"""Zipf-distributed sampling over a finite population.

``numpy.random.zipf`` samples from the unbounded Zipf law and only supports
``alpha > 1``; traffic models need a *bounded* population and alphas right
around 1.0, so we build the normalised probability vector explicitly and
sample via the cumulative distribution.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Sample ranks ``0..n-1`` with P(rank k) proportional to 1/(k+1)^alpha."""

    def __init__(self, n: int, alpha: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ValueError(f"population must be >= 1, got {n}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.n = n
        self.alpha = alpha
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), alpha)
        self.probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self.probabilities)
        # Guard against floating point round-off leaving cdf[-1] < 1.
        self._cdf[-1] = 1.0

    @classmethod
    def from_probabilities(
        cls, probabilities: np.ndarray, rng: np.random.Generator
    ) -> "ZipfSampler":
        """A sampler over an explicit (normalised) probability vector."""
        p = np.asarray(probabilities, dtype=np.float64)
        if len(p) < 1 or np.any(p < 0):
            raise ValueError("probabilities must be non-negative and non-empty")
        total = p.sum()
        if total <= 0:
            raise ValueError("probabilities sum to zero")
        sampler = cls.__new__(cls)
        sampler.n = len(p)
        sampler.alpha = 0.0
        sampler._rng = rng
        sampler.probabilities = p / total
        sampler._cdf = np.cumsum(sampler.probabilities)
        sampler._cdf[-1] = 1.0
        return sampler

    def reweight_head(self, shares: "np.ndarray | list[float]") -> None:
        """Pin the first ``len(shares)`` ranks to explicit traffic shares.

        The remaining ranks keep their Zipf proportions, renormalised to
        the leftover mass.  Used to populate a *band* of sources straddling
        a detection threshold (e.g. several sources at 3–7 % when studying
        a 5 % threshold), which heavy-tailed laws alone make vanishingly
        rare at small population sizes.
        """
        shares = np.asarray(shares, dtype=np.float64)
        if len(shares) >= self.n:
            raise ValueError("head band larger than the population")
        total_head = float(shares.sum())
        if not 0.0 < total_head < 1.0:
            raise ValueError(f"head shares must sum into (0, 1), got {total_head}")
        p = self.probabilities.copy()
        tail_mass = float(p[len(shares):].sum())
        p[: len(shares)] = shares
        p[len(shares):] *= (1.0 - total_head) / tail_mass
        self.probabilities = p
        self._cdf = np.cumsum(p)
        self._cdf[-1] = 1.0

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks (int64 array)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = self._rng.random(count)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def sample_weighted(self, count: int, weights: np.ndarray) -> np.ndarray:
        """Draw ``count`` ranks after re-weighting the base law.

        ``weights`` multiplies the Zipf probabilities element-wise (used for
        churn masks and heavy-episode boosts); zeros disable ranks entirely.
        """
        if len(weights) != self.n:
            raise ValueError(
                f"weights length {len(weights)} != population {self.n}"
            )
        p = self.probabilities * weights
        total = p.sum()
        if total <= 0:
            raise ValueError("all ranks disabled: weight vector sums to zero")
        cdf = np.cumsum(p / total)
        cdf[-1] = 1.0
        u = self._rng.random(count)
        return np.searchsorted(cdf, u, side="left").astype(np.int64)

    def head_share(self, k: int) -> float:
        """Fraction of probability mass held by the top ``k`` ranks."""
        k = min(k, self.n)
        return float(self.probabilities[:k].sum())
