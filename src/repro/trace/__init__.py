"""Synthetic traces and trace manipulation — the CAIDA substitute.

The paper analyses one-hour CAIDA ``equinix-chicago`` traces from four
different days.  Those traces are not redistributable, so this package
generates synthetic traces that reproduce the three properties the paper's
findings rest on:

1. **heavy-tailed source volumes** (Zipf-distributed popularity over a
   structured address space, so aggregates exist at every prefix level);
2. **temporal burstiness** (Markov-modulated rate plus per-source burst
   trains, so traffic aggregates straddle window boundaries);
3. **churn** (sources joining/leaving and transient heavy-hitter episodes
   with onset/offset unaligned to any window grid).

Property (2)+(3) are exactly what makes disjoint windows "hide" HHHs, and
the generator exposes each as an explicit knob so experiments can show the
effect appearing and disappearing.

:class:`Trace` stores packets in numpy columns for fast windowed
aggregation, while still iterating as :class:`repro.packet.Packet` records.
"""

from repro.trace.container import Trace
from repro.trace.config import (
    BurstConfig,
    ChurnConfig,
    HeavyEpisodeConfig,
    RateConfig,
    SyntheticTraceConfig,
)
from repro.trace.zipf import ZipfSampler
from repro.trace.generator import SyntheticTraceGenerator, generate_trace
from repro.trace import presets
from repro.trace.spec import (
    CacheInfo,
    ScenarioSpec,
    TraceSpec,
    TraceSpecError,
    build_trace,
    cache_info,
    clear_trace_cache,
    get_scenario,
    register_scenario,
    scenario_names,
    trace_cache_keys,
)
from repro.trace.stats import TraceStats, compute_stats
from repro.trace.ops import concat_traces, shift_trace, slice_time, thin_trace

__all__ = [
    "Trace",
    "TraceSpec",
    "TraceSpecError",
    "ScenarioSpec",
    "build_trace",
    "CacheInfo",
    "cache_info",
    "clear_trace_cache",
    "trace_cache_keys",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "SyntheticTraceConfig",
    "RateConfig",
    "BurstConfig",
    "ChurnConfig",
    "HeavyEpisodeConfig",
    "ZipfSampler",
    "SyntheticTraceGenerator",
    "generate_trace",
    "presets",
    "TraceStats",
    "compute_stats",
    "concat_traces",
    "shift_trace",
    "slice_time",
    "thin_trace",
]
