"""Trace transformations: slicing, shifting, concatenation, thinning."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.trace.container import Trace


def slice_time(trace: Trace, t0: float, t1: float) -> Trace:
    """The sub-trace in [t0, t1) (alias of :meth:`Trace.slice_time`)."""
    return trace.slice_time(t0, t1)


def shift_trace(trace: Trace, dt: float) -> Trace:
    """The same trace with all timestamps moved by ``dt``."""
    return Trace(
        trace.ts + dt, trace.src, trace.dst, trace.length,
        trace.sport, trace.dport, trace.proto,
    )


def concat_traces(traces: Sequence[Trace]) -> Trace:
    """Merge traces into one, re-sorting by timestamp.

    Use with :func:`shift_trace` to splice scenarios end to end.
    """
    parts = [t for t in traces if len(t)]
    if not parts:
        return Trace.empty()
    ts = np.concatenate([t.ts for t in parts])
    order = np.argsort(ts, kind="stable")
    return Trace(
        ts[order],
        np.concatenate([t.src for t in parts])[order],
        np.concatenate([t.dst for t in parts])[order],
        np.concatenate([t.length for t in parts])[order],
        np.concatenate([t.sport for t in parts])[order],
        np.concatenate([t.dport for t in parts])[order],
        np.concatenate([t.proto for t in parts])[order],
    )


def thin_trace(trace: Trace, keep_fraction: float, seed: int = 0) -> Trace:
    """Independently keep each packet with probability ``keep_fraction``.

    Models uniform packet sampling (as deployed in routers via sFlow-style
    sampling); used by ablations to check how sampling interacts with the
    hidden-HHH effect.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    if keep_fraction == 1.0 or len(trace) == 0:
        return trace
    rng = np.random.default_rng(seed)
    mask = rng.random(len(trace)) < keep_fraction
    return Trace(
        trace.ts[mask], trace.src[mask], trace.dst[mask], trace.length[mask],
        trace.sport[mask], trace.dport[mask], trace.proto[mask],
    )
