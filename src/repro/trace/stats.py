"""Descriptive statistics over traces.

Used by tests to assert the generator actually produces the properties the
experiments rely on (heavy tail, burstiness, churn) and by the CLI to
summarise traces for the user.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.container import Trace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace."""

    num_packets: int
    duration_s: float
    total_bytes: int
    distinct_sources: int
    mean_rate_pps: float
    mean_rate_bps: float
    top1_source_share: float
    top10_source_share: float
    gini_coefficient: float
    rate_cv: float
    mean_packet_bytes: float

    def to_lines(self) -> list[str]:
        """Human-readable summary lines."""
        return [
            f"packets            : {self.num_packets}",
            f"duration           : {self.duration_s:.1f} s",
            f"total bytes        : {self.total_bytes}",
            f"distinct sources   : {self.distinct_sources}",
            f"mean rate          : {self.mean_rate_pps:.0f} pkt/s, "
            f"{self.mean_rate_bps / 1e6:.2f} Mbit/s",
            f"top-1 source share : {self.top1_source_share:.1%}",
            f"top-10 source share: {self.top10_source_share:.1%}",
            f"gini (src bytes)   : {self.gini_coefficient:.3f}",
            f"rate CV (1s bins)  : {self.rate_cv:.3f}",
            f"mean packet size   : {self.mean_packet_bytes:.0f} B",
        ]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative value vector (0=equal, ->1=skewed)."""
    if len(values) == 0:
        return 0.0
    v = np.sort(values.astype(np.float64))
    total = v.sum()
    if total == 0:
        return 0.0
    n = len(v)
    cum = np.cumsum(v)
    # Standard formula: G = (n + 1 - 2 * sum(cum)/total) / n
    return float((n + 1 - 2.0 * (cum / total).sum()) / n)


def compute_stats(trace: Trace, rate_bin_s: float = 1.0) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    n = len(trace)
    if n == 0:
        return TraceStats(0, 0.0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    duration = max(trace.duration, 1e-9)
    by_src = trace.bytes_by_key(trace.start_time, trace.end_time + 1e-9)
    volumes = np.array(sorted(by_src.values(), reverse=True), dtype=np.float64)
    total = float(volumes.sum())
    bins = np.arange(trace.start_time, trace.end_time + rate_bin_s, rate_bin_s)
    per_bin = np.histogram(trace.ts, bins=bins)[0] if len(bins) > 1 else np.array([n])
    mean_bin = per_bin.mean() if len(per_bin) else 0.0
    cv = float(per_bin.std() / mean_bin) if mean_bin > 0 else 0.0
    return TraceStats(
        num_packets=n,
        duration_s=duration,
        total_bytes=trace.total_bytes,
        distinct_sources=len(by_src),
        mean_rate_pps=n / duration,
        mean_rate_bps=trace.total_bytes * 8.0 / duration,
        top1_source_share=float(volumes[0] / total) if total else 0.0,
        top10_source_share=float(volumes[:10].sum() / total) if total else 0.0,
        gini_coefficient=gini(volumes),
        rate_cv=cv,
        mean_packet_bytes=trace.total_bytes / n,
    )
