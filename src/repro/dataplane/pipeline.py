"""A small match-action pipeline model.

Captures the constraints that decide whether an algorithm is "match-action
friendly" (the property the poster asks future algorithms to have):

- a fixed number of stages traversed once per packet, in order;
- per stage, register arrays of fixed-width cells;
- each register array can be accessed (read-modify-write) **at most once**
  per packet, at one hash-derived index;
- no loops, no second pass, a bounded number of hash computations.

:class:`PipelineProgram` validates a declarative description of a detector
against :class:`PipelineConstraints` and derives its
:class:`repro.dataplane.ResourceProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataplane.resources import ResourceProfile


@dataclass(frozen=True)
class PipelineConstraints:
    """What the target switch offers (defaults are Tofino-like)."""

    max_stages: int = 12
    sram_bits_per_stage: int = 128 * 8 * 1024 * 8  # 128 KiB * 8 blocks
    max_hash_units_per_stage: int = 2
    max_register_arrays_per_stage: int = 4

    def __post_init__(self) -> None:
        if self.max_stages < 1:
            raise ValueError("a pipeline needs at least one stage")


@dataclass(frozen=True)
class RegisterArray:
    """One register array: ``entries`` cells of ``cell_bits`` each.

    ``accesses_per_packet`` must be 0 or 1 — the single-access rule is the
    defining match-action constraint.
    """

    name: str
    entries: int
    cell_bits: int
    accesses_per_packet: int = 1

    def __post_init__(self) -> None:
        if self.entries < 1 or self.cell_bits < 1:
            raise ValueError(f"register array {self.name}: bad geometry")
        if self.accesses_per_packet not in (0, 1):
            raise ValueError(
                f"register array {self.name}: {self.accesses_per_packet} "
                "accesses/packet violates the single-access rule"
            )

    @property
    def sram_bits(self) -> int:
        """SRAM consumed by this array."""
        return self.entries * self.cell_bits


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: its register arrays and hash computations."""

    arrays: tuple[RegisterArray, ...]
    hash_units: int = 1

    @property
    def sram_bits(self) -> int:
        """SRAM consumed by the stage."""
        return sum(a.sram_bits for a in self.arrays)

    @property
    def register_accesses(self) -> int:
        """Register accesses this stage performs per packet."""
        return sum(a.accesses_per_packet for a in self.arrays)


@dataclass
class PipelineProgram:
    """A detector expressed as a sequence of stages."""

    name: str
    stages: list[StageSpec] = field(default_factory=list)
    needs_timestamps: bool = False
    needs_control_plane_reset: bool = False

    def add_stage(self, stage: StageSpec) -> "PipelineProgram":
        """Append a stage (fluent)."""
        self.stages.append(stage)
        return self

    def validate(self, constraints: PipelineConstraints) -> list[str]:
        """All constraint violations (empty list = fits the target)."""
        problems: list[str] = []
        if len(self.stages) > constraints.max_stages:
            problems.append(
                f"{self.name}: needs {len(self.stages)} stages, target has "
                f"{constraints.max_stages}"
            )
        for i, stage in enumerate(self.stages):
            if stage.sram_bits > constraints.sram_bits_per_stage:
                problems.append(
                    f"{self.name} stage {i}: {stage.sram_bits} SRAM bits "
                    f"exceed {constraints.sram_bits_per_stage}"
                )
            if stage.hash_units > constraints.max_hash_units_per_stage:
                problems.append(
                    f"{self.name} stage {i}: {stage.hash_units} hash units "
                    f"exceed {constraints.max_hash_units_per_stage}"
                )
            if len(stage.arrays) > constraints.max_register_arrays_per_stage:
                problems.append(
                    f"{self.name} stage {i}: {len(stage.arrays)} register "
                    f"arrays exceed {constraints.max_register_arrays_per_stage}"
                )
        return problems

    def fits(self, constraints: PipelineConstraints) -> bool:
        """True when the program satisfies every constraint."""
        return not self.validate(constraints)

    def profile(self) -> ResourceProfile:
        """The program's aggregate resource profile."""
        return ResourceProfile(
            name=self.name,
            stages=len(self.stages),
            sram_bits=sum(s.sram_bits for s in self.stages),
            hash_units=sum(s.hash_units for s in self.stages),
            register_accesses=sum(s.register_accesses for s in self.stages),
            needs_timestamps=self.needs_timestamps,
            needs_control_plane_reset=self.needs_control_plane_reset,
        )
