"""Mappings of the library's detectors onto the pipeline model.

Each function turns a detector configuration into a
:class:`repro.dataplane.PipelineProgram`, making the Section 3 comparison
("performance, resource utilization") concrete: the same configurations
benchmarked for accuracy are costed for stages and SRAM here.

Widths follow common practice: 32-bit keys and byte counters, 48-bit
timestamps (the ingress MAC timestamp width on Tofino-class hardware).
"""

from __future__ import annotations

from repro.dataplane.pipeline import PipelineProgram, RegisterArray, StageSpec

KEY_BITS = 32
COUNTER_BITS = 32
TIMESTAMP_BITS = 48


def map_hashpipe(stage_slots: int, stages: int) -> PipelineProgram:
    """HashPipe: one (key, count) table per stage, reset every window."""
    program = PipelineProgram(
        name=f"HashPipe({stage_slots}x{stages})",
        needs_control_plane_reset=True,
    )
    for _ in range(stages):
        program.add_stage(
            StageSpec(
                arrays=(
                    RegisterArray(
                        "kv", stage_slots, KEY_BITS + COUNTER_BITS
                    ),
                ),
                hash_units=1,
            )
        )
    return program


def map_rhhh(counters_per_level: int, num_levels: int) -> PipelineProgram:
    """RHHH: one Space-Saving-approximating table per level; a packet
    updates a single randomly-chosen level, so one stage carries the RNG
    and each level table occupies its own stage (they could be packed, but
    per-level placement mirrors the published P4 implementation)."""
    program = PipelineProgram(
        name=f"RHHH({counters_per_level}x{num_levels})",
        needs_control_plane_reset=True,
    )
    # Stage 0: random level draw (hash of packet metadata).
    program.add_stage(StageSpec(arrays=(), hash_units=1))
    for _ in range(num_levels):
        program.add_stage(
            StageSpec(
                arrays=(
                    RegisterArray(
                        "level_kv", counters_per_level,
                        KEY_BITS + COUNTER_BITS,
                    ),
                ),
                hash_units=1,
            )
        )
    return program


def map_ondemand_tdbf(cells: int, hashes: int) -> PipelineProgram:
    """On-demand TDBF: ``hashes`` cell arrays, one per stage, each cell a
    (value, timestamp) pair decayed in the stage ALU — no reset, no sweep.

    The lazy decay is a read-modify-write of a single cell using the packet
    timestamp already in the pipeline metadata, which is why this structure
    is match-action friendly where a synchronous sweep is not.
    """
    per_stage = max(1, cells // hashes)
    program = PipelineProgram(
        name=f"OnDemandTDBF({cells}c/{hashes}h)",
        needs_timestamps=True,
    )
    for _ in range(hashes):
        program.add_stage(
            StageSpec(
                arrays=(
                    RegisterArray(
                        "decay_cell", per_stage,
                        COUNTER_BITS + TIMESTAMP_BITS,
                    ),
                ),
                hash_units=1,
            )
        )
    return program


def map_spacesaving_cache(capacity: int) -> PipelineProgram:
    """Space-Saving as deployed in practice: an exact-match key table plus
    counter array, with control-plane-assisted eviction and window reset."""
    program = PipelineProgram(
        name=f"SpaceSaving({capacity})",
        needs_control_plane_reset=True,
    )
    program.add_stage(
        StageSpec(
            arrays=(
                RegisterArray("keys", capacity, KEY_BITS),
                RegisterArray("counts", capacity, COUNTER_BITS),
            ),
            hash_units=1,
        )
    )
    return program


def map_sliding_window_hh(
    num_buckets: int, capacity_per_bucket: int
) -> PipelineProgram:
    """Bucketed sliding-window HH: one (key, count) table per bucket plus a
    bucket-rotation register; rotation is timestamp-driven, no full reset."""
    program = PipelineProgram(
        name=f"SlidingHH({capacity_per_bucket}x{num_buckets})",
        needs_timestamps=True,
    )
    program.add_stage(
        StageSpec(
            arrays=(RegisterArray("bucket_clock", 1, TIMESTAMP_BITS),),
            hash_units=0,
        )
    )
    for _ in range(num_buckets):
        program.add_stage(
            StageSpec(
                arrays=(
                    RegisterArray(
                        "bucket_kv", capacity_per_bucket,
                        KEY_BITS + COUNTER_BITS,
                    ),
                ),
                hash_units=1,
            )
        )
    return program
