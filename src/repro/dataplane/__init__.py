"""Match-action pipeline resource model.

The poster's closing argument is a "call for a new set of match-action
friendly algorithms".  This package makes "match-action friendly"
measurable: a small model of a programmable switch pipeline (stages, each
with register arrays, a hash unit budget, and single-access-per-stage
semantics), mappings of each detector in the library onto that model, and
the resulting resource profiles (stages, SRAM bits, actions per packet)
used in the Section 3 comparison bench.
"""

from repro.dataplane.resources import ResourceProfile
from repro.dataplane.pipeline import (
    PipelineConstraints,
    PipelineProgram,
    RegisterArray,
    StageSpec,
)
from repro.dataplane.mappings import (
    map_hashpipe,
    map_ondemand_tdbf,
    map_rhhh,
    map_spacesaving_cache,
    map_sliding_window_hh,
)

__all__ = [
    "ResourceProfile",
    "PipelineConstraints",
    "PipelineProgram",
    "RegisterArray",
    "StageSpec",
    "map_hashpipe",
    "map_rhhh",
    "map_ondemand_tdbf",
    "map_spacesaving_cache",
    "map_sliding_window_hh",
]
