"""Resource profiles: what a detector costs on a match-action target."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResourceProfile:
    """Aggregate cost of one detector mapped onto a pipeline.

    Attributes
    ----------
    name:
        Detector name (for tables).
    stages:
        Pipeline stages consumed; the scarcest switch resource (a Tofino
        has 12 per pipe, shared with forwarding logic).
    sram_bits:
        Total register SRAM.
    hash_units:
        Hash computations per packet.
    register_accesses:
        Register reads+writes per packet (must be <= 1 array access per
        stage on real hardware; the mapping enforces it).
    needs_timestamps:
        Whether per-cell timestamps are required (time-decaying schemes).
    needs_control_plane_reset:
        Whether the scheme relies on the controller zeroing state at window
        boundaries — exactly the disjoint-window practice the paper
        critiques, so the Section 3 table calls it out explicitly.
    """

    name: str
    stages: int
    sram_bits: int
    hash_units: int
    register_accesses: int
    needs_timestamps: bool = False
    needs_control_plane_reset: bool = False

    @property
    def sram_kib(self) -> float:
        """SRAM in KiB, for readable tables."""
        return self.sram_bits / 8 / 1024

    def to_row(self) -> dict[str, object]:
        """Flatten for table rendering."""
        return {
            "detector": self.name,
            "stages": self.stages,
            "sram_kib": round(self.sram_kib, 1),
            "hash/pkt": self.hash_units,
            "reg access/pkt": self.register_accesses,
            "timestamps": "yes" if self.needs_timestamps else "no",
            "window reset": "yes" if self.needs_control_plane_reset else "no",
        }
