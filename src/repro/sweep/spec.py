"""String-addressable sweep grids.

A *sweep* fans a grid of (experiment × trace × parameter) combinations out
as independent *cells*, each cell one ``Experiment.run`` on its own
memoized trace.  The grid is addressable as a short string — semicolon-
separated *axes*, each a name plus comma-separated values::

    exp=hidden-hhh,detector-accuracy;trace=zipf:duration=30,ddos-burst:duration=30;detector=countmin-hh,spacesaving;phi=0.01,0.001

Two axis names are structural:

- ``exp`` (required) — registered experiment names;
- ``trace`` (optional) — trace/stream spec strings; omitted, every
  experiment runs on its own ``default_trace``.  Values are split
  spec-aware: a comma followed by a bare ``key=value`` pair continues the
  previous spec (``caida:day=0,duration=30`` is *one* value), while a
  segment that opens a new ``scenario:`` (or has no ``=`` at all) starts
  the next one.

Every other axis names an experiment parameter and *applies where
declared*: a cell for an experiment that does not declare the parameter
simply drops that axis (duplicate cells are collapsed), so heterogeneous
grids — a detector axis next to an experiment with no ``detector`` param —
expand to exactly the meaningful combinations.

Expansion is cartesian by default; a ``zip:`` prefix switches to zipped
expansion, where every multi-valued axis must have the same length and
advances in lockstep (single-valued axes broadcast)::

    zip:exp=detector-accuracy;detector=countmin-hh,spacesaving;phi=0.01,0.02

Like :class:`repro.trace.TraceSpec`, ``parse`` and ``format`` round-trip:
``SweepSpec.parse(s).format() == s`` for canonical strings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.suggest import closest_hint

#: Structural axes every grid may use; all other axes bind experiment params.
RESERVED_AXES = ("exp", "trace")

_MODES = ("cartesian", "zip")


class SweepError(ValueError):
    """A malformed grid, an unknown axis/name, or an unrunnable sweep."""


def _split_trace_values(text: str, axis_text: str) -> list[str]:
    """Split a ``trace`` axis into spec strings, commas-in-params aware."""
    values: list[str] = []
    for segment in text.split(","):
        segment = segment.strip()
        if not segment:
            raise SweepError(f"empty value in sweep axis {axis_text!r}")
        if values and _continues_previous(segment):
            values[-1] = f"{values[-1]},{segment}"
        else:
            values.append(segment)
    return values


def _continues_previous(segment: str) -> bool:
    """Whether a comma-separated segment is a ``key=value`` continuation of
    the previous trace spec rather than the start of a new one."""
    eq = segment.find("=")
    if eq < 0:
        return False  # bare scenario name starts a new spec
    colon = segment.find(":")
    return colon < 0 or colon > eq


@dataclass(frozen=True)
class SweepAxis:
    """One declared axis: a name and the values it sweeps over."""

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("sweep axis has no name")
        if not self.values:
            raise SweepError(f"sweep axis {self.name!r} has no values")

    def format(self) -> str:
        return f"{self.name}={','.join(self.values)}"


def cell_label(
    experiment: str, trace: str | None, params: dict[str, object]
) -> str:
    """Canonical human-readable cell identity (tables, error messages).

    Shared by :class:`SweepCell` and the result layer's ``CellOutcome`` so
    the two renderings can never drift apart.
    """
    parts = [f"exp={experiment}"]
    if trace is not None:
        parts.append(f"trace={trace}")
    parts.extend(f"{k}={v}" for k, v in params.items())
    return ";".join(parts)


@dataclass(frozen=True)
class SweepCell:
    """One independent unit of sweep work: experiment + trace + params.

    ``params`` keeps the raw string values from the grid; binding and type
    coercion happen inside the experiment exactly as for ``--set`` on
    ``repro-hhh run``, so a cell reproduces the standalone run byte for
    byte (timings aside).
    """

    index: int
    experiment: str
    trace: str | None
    params: dict[str, str] = field(default_factory=dict)

    def label(self) -> str:
        """Human-readable cell identity for tables and error messages."""
        return cell_label(self.experiment, self.trace, self.params)


@dataclass(frozen=True)
class SweepSpec:
    """A parsed sweep grid: ordered axes plus the expansion mode."""

    axes: tuple[SweepAxis, ...]
    mode: str = "cartesian"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SweepError(
                f"unknown sweep mode {self.mode!r}; known: {', '.join(_MODES)}"
            )
        seen: set[str] = set()
        for axis in self.axes:
            if axis.name in seen:
                raise SweepError(f"duplicate sweep axis {axis.name!r}")
            seen.add(axis.name)
        if "exp" not in seen:
            raise SweepError(
                "sweep grid needs an 'exp' axis naming at least one "
                "registered experiment (e.g. 'exp=hidden-hhh;...')"
            )

    # -- parsing ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "SweepSpec":
        """Parse ``[zip:]axis=v1,v2;axis=...`` into a spec."""
        text = text.strip()
        mode = "cartesian"
        for prefix in _MODES:
            if text.startswith(prefix + ":"):
                mode = prefix
                text = text[len(prefix) + 1:]
                break
        if not text:
            raise SweepError("empty sweep grid")
        axes: list[SweepAxis] = []
        for axis_text in text.split(";"):
            axis_text = axis_text.strip()
            if not axis_text:
                raise SweepError(f"empty axis in sweep grid {text!r}")
            name, eq, values_text = axis_text.partition("=")
            name = name.strip()
            if not eq or not name or not values_text.strip():
                raise SweepError(
                    f"bad sweep axis {axis_text!r}; expected name=v1,v2,..."
                )
            if name == "trace":
                values = _split_trace_values(values_text, axis_text)
            else:
                values = [v.strip() for v in values_text.split(",")]
                if any(not v for v in values):
                    raise SweepError(
                        f"empty value in sweep axis {axis_text!r}"
                    )
            axes.append(SweepAxis(name, tuple(values)))
        return cls(tuple(axes), mode)

    def format(self) -> str:
        """The canonical string form; ``parse(format()) == self``."""
        body = ";".join(axis.format() for axis in self.axes)
        return f"zip:{body}" if self.mode == "zip" else body

    def __str__(self) -> str:
        return self.format()

    # -- expansion -------------------------------------------------------

    def axis(self, name: str) -> SweepAxis | None:
        for axis in self.axes:
            if axis.name == name:
                return axis
        return None

    def expand(self) -> list[SweepCell]:
        """Expand the grid into independent cells, validated against the
        experiment, detector, and parameter registries.

        Unknown experiment names, unknown ``detector`` axis values, and
        axes that bind no swept experiment's parameters all raise
        :class:`SweepError` (or the registry's own error) with a
        closest-match suggestion — before any cell runs.
        """
        from repro.experiments.registry import get_experiment

        exp_axis = self.axis("exp")
        assert exp_axis is not None  # enforced in __post_init__
        classes = {}
        for name in exp_axis.values:
            if name == "sweep":
                raise SweepError(
                    "cannot sweep over the 'sweep' meta-experiment itself"
                )
            classes[name] = get_experiment(name)

        param_axes = [a for a in self.axes if a.name not in RESERVED_AXES]
        self._check_axis_names(param_axes, classes)
        self._check_detector_values()

        trace_axis = self.axis("trace")
        traces: tuple[str | None, ...] = (
            trace_axis.values if trace_axis is not None else (None,)
        )

        if self.mode == "zip":
            return self._expand_zip(exp_axis, traces, param_axes, classes)
        cells: list[SweepCell] = []
        seen: set[tuple] = set()
        for exp in exp_axis.values:
            declared = {p.name for p in classes[exp].PARAMS}
            applicable = [a for a in param_axes if a.name in declared]
            for trace in traces:
                for combo in itertools.product(
                    *(a.values for a in applicable)
                ):
                    params = {
                        a.name: v for a, v in zip(applicable, combo)
                    }
                    _append_unique(cells, seen, exp, trace, params)
        return cells

    def _expand_zip(
        self, exp_axis, traces, param_axes, classes
    ) -> list[SweepCell]:
        lengths = {
            a.name: len(a.values) for a in self.axes if len(a.values) > 1
        }
        if len(set(lengths.values())) > 1:
            detail = ", ".join(f"{k}({v})" for k, v in lengths.items())
            raise SweepError(
                f"zip sweep needs equal-length multi-value axes; got {detail}"
            )
        count = next(iter(set(lengths.values())), 1)
        cells: list[SweepCell] = []
        seen: set[tuple] = set()
        for i in range(count):
            exp = _pick(exp_axis.values, i)
            trace = _pick(traces, i)
            declared = {p.name for p in classes[exp].PARAMS}
            params = {
                a.name: _pick(a.values, i)
                for a in param_axes
                if a.name in declared
            }
            _append_unique(cells, seen, exp, trace, params)
        return cells

    def _check_axis_names(self, param_axes, classes) -> None:
        declared_anywhere: set[str] = set()
        for cls in classes.values():
            declared_anywhere.update(p.name for p in cls.PARAMS)
        known = sorted(declared_anywhere | set(RESERVED_AXES))
        for axis in param_axes:
            if axis.name not in declared_anywhere:
                swept = ", ".join(classes)
                raise SweepError(
                    f"unknown sweep axis {axis.name!r}: no swept experiment "
                    f"({swept}) declares that parameter;"
                    f"{closest_hint(axis.name, known)} "
                    f"known axes: {', '.join(known)}"
                )

    def _check_detector_values(self) -> None:
        detector_axis = self.axis("detector")
        if detector_axis is None:
            return
        from repro.core import detector_names

        known = detector_names()
        for value in detector_axis.values:
            if value not in known:
                raise SweepError(
                    f"unknown detector {value!r} in sweep axis 'detector';"
                    f"{closest_hint(value, known)} "
                    f"known detectors: {', '.join(known)}"
                )


def _pick(values, i: int):
    """Zip-mode indexing: multi-value axes advance, singles broadcast."""
    return values[i] if len(values) > 1 else values[0]


def _append_unique(cells, seen, exp, trace, params) -> None:
    key = (exp, trace, tuple(sorted(params.items())))
    if key in seen:
        return
    seen.add(key)
    cells.append(SweepCell(len(cells), exp, trace, params))
