"""The versioned sweep result artifact.

A sweep produces one :class:`SweepResult`: per-cell provenance (experiment,
trace spec, raw parameter bindings, status, wall time) plus each cell's
full ``repro-hhh/experiment-result/v1`` document, wrapped in a
``repro-hhh/sweep-result/v1`` envelope.  The same object renders as
comparative pivot tables (:meth:`SweepResult.to_table` with ``group_by``)
and supports best-cell selection over any headline metric.

Serialization is deterministic: ``SweepResult.from_json(text).to_json()``
reproduces ``text`` byte for byte, which is what lets CI archive sweep
artifacts and downstream tooling diff them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.render import format_table
from repro.core.suggest import closest_hint
from repro.experiments.result import (
    jsonify,
    read_json_text,
    validate_result_dict,
)
from repro.sweep.spec import SweepError, cell_label

#: Version tag embedded in every serialized sweep result.
SWEEP_SCHEMA_ID = "repro-hhh/sweep-result/v1"

#: Cell identity columns always present in the flat row view.
_CELL_COLUMNS = ("cell", "experiment", "trace", "status")


@dataclass
class CellOutcome:
    """One executed sweep cell: identity, status, and its result document."""

    index: int
    experiment: str
    trace: str | None
    params: dict[str, object]
    status: str  # "ok" | "error"
    wall_s: float
    error: str | None = None
    #: The cell's ``repro-hhh/experiment-result/v1`` document (``None`` on
    #: error) — full per-cell provenance, rows, headline, and timings.
    result: dict[str, object] | None = None

    def label(self) -> str:
        """Human-readable cell identity for tables and messages."""
        return cell_label(self.experiment, self.trace, self.params)

    @property
    def headline(self) -> dict[str, object]:
        return dict((self.result or {}).get("headline", {}))  # type: ignore[arg-type]

    @property
    def rows(self) -> list[dict[str, object]]:
        return list((self.result or {}).get("rows", ()))  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        return {
            "index": self.index,
            "experiment": self.experiment,
            "trace": self.trace,
            "params": self.params,
            "status": self.status,
            "wall_s": self.wall_s,
            "error": self.error,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "CellOutcome":
        return cls(
            index=document["index"],
            experiment=document["experiment"],
            trace=document["trace"],
            params=dict(document["params"]),
            status=document["status"],
            wall_s=document["wall_s"],
            error=document.get("error"),
            result=document.get("result"),
        )


@dataclass
class SweepResult:
    """Uniform artifact for one executed sweep."""

    grid: str
    mode: str
    backend: str
    workers: int
    cells: list[CellOutcome] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)

    # -- summary ---------------------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_ok(self) -> int:
        return sum(1 for cell in self.cells if cell.status == "ok")

    @property
    def num_errors(self) -> int:
        return self.num_cells - self.num_ok

    # -- tabular views ---------------------------------------------------

    def rows(self) -> list[dict[str, object]]:
        """One flat row per cell: identity columns, swept params, and the
        cell's headline metrics (columns are the union across cells, so
        heterogeneous experiments align)."""
        raw = []
        columns: list[str] = list(_CELL_COLUMNS)
        for cell in self.cells:
            row: dict[str, object] = {
                "cell": cell.index,
                "experiment": cell.experiment,
                "trace": cell.trace if cell.trace is not None else "-",
                "status": cell.status,
            }
            for key, value in cell.params.items():
                row[key] = value
            for key, value in cell.headline.items():
                row.setdefault(key, value)
            for key in row:
                if key not in columns:
                    columns.append(key)
            raw.append(row)
        return [{c: row.get(c, "") for c in columns} for row in raw]

    def pivot(self, group_by) -> list[dict[str, object]]:
        """Comparative pivot: group the flat rows by one or more columns and
        average the numeric metric columns (plus a ``cells`` count).

        Only ok cells are aggregated — an error cell has no metrics, and
        counting it would misstate how many cells back each average (the
        flat :meth:`rows` view is where failures are visible).
        """
        keys = [group_by] if isinstance(group_by, str) else list(group_by)
        rows = self.rows()
        available = list(rows[0]) if rows else []
        for key in keys:
            if key not in available:
                raise SweepError(
                    f"unknown group_by column {key!r};"
                    f"{closest_hint(key, available)} "
                    f"available: {', '.join(available)}"
                )
        metrics = [
            c for c in available
            if c not in keys and c not in _CELL_COLUMNS
        ]
        groups: dict[tuple, list[dict[str, object]]] = {}
        for row in rows:
            if row["status"] != "ok":
                continue
            groups.setdefault(tuple(row[k] for k in keys), []).append(row)
        out = []
        for group_key, members in groups.items():
            pivot_row: dict[str, object] = dict(zip(keys, group_key))
            pivot_row["cells"] = len(members)
            for metric in metrics:
                values = [
                    m[metric] for m in members
                    if isinstance(m[metric], (int, float))
                    and not isinstance(m[metric], bool)
                ]
                if values:
                    pivot_row[metric] = round(sum(values) / len(values), 4)
            out.append(pivot_row)
        # Pad to the union of columns (first-seen order) so the table
        # renders every group's metrics, not just the first group's.
        columns: list[str] = []
        for row in out:
            for key in row:
                if key not in columns:
                    columns.append(key)
        return [{c: row.get(c, "") for c in columns} for row in out]

    def to_table(self, group_by=None) -> str:
        """The flat per-cell table, or the ``group_by`` pivot table."""
        if group_by is None:
            return format_table(self.rows())
        return format_table(self.pivot(group_by))

    def best_cell(self, metric: str, mode: str = "max") -> CellOutcome:
        """The ok cell whose headline ``metric`` is largest (or smallest)."""
        if mode not in ("max", "min"):
            raise SweepError(f"best_cell mode must be max or min, got {mode!r}")
        scored = [
            (cell.headline[metric], cell)
            for cell in self.cells
            if cell.status == "ok"
            and isinstance(cell.headline.get(metric), (int, float))
            and not isinstance(cell.headline.get(metric), bool)
        ]
        if not scored:
            known = sorted({
                key for cell in self.cells for key in cell.headline
            })
            raise SweepError(
                f"no cell reports numeric headline metric {metric!r};"
                f"{closest_hint(metric, known)} "
                f"available metrics: {', '.join(known) or '(none)'}"
            )
        chosen = (max if mode == "max" else min)(scored, key=lambda s: s[0])
        return chosen[1]

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """The versioned, JSON-serializable document."""
        return {
            "schema": SWEEP_SCHEMA_ID,
            "grid": self.grid,
            "mode": self.mode,
            "backend": self.backend,
            "workers": self.workers,
            "num_cells": self.num_cells,
            "num_errors": self.num_errors,
            "cells": [jsonify(cell.to_dict()) for cell in self.cells],
            "timings": jsonify(self.timings),
        }

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize to JSON text, optionally also writing ``path``."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=False)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_dict(cls, document: dict[str, object]) -> "SweepResult":
        """Rebuild a sweep result from a decoded document (validates first)."""
        validate_sweep_dict(document)
        return cls(
            grid=document["grid"],
            mode=document["mode"],
            backend=document["backend"],
            workers=document["workers"],
            cells=[CellOutcome.from_dict(c) for c in document["cells"]],
            timings=dict(document["timings"]),
        )

    @classmethod
    def from_json(cls, text_or_path: str | Path) -> "SweepResult":
        """Rebuild a sweep result from JSON text or a ``.json`` file path."""
        return cls.from_dict(json.loads(read_json_text(text_or_path)))


def validate_sweep_dict(document: object) -> None:
    """Raise ``ValueError`` unless ``document`` matches the v1 sweep schema
    (each ok cell's embedded result is validated against the experiment
    result schema too)."""
    if not isinstance(document, dict):
        raise ValueError(
            f"sweep document must be an object, got {type(document).__name__}"
        )
    if document.get("schema") != SWEEP_SCHEMA_ID:
        raise ValueError(
            f"unknown sweep schema {document.get('schema')!r}; "
            f"expected {SWEEP_SCHEMA_ID!r}"
        )
    required = ("grid", "mode", "backend", "workers", "cells", "timings")
    missing = [key for key in required if key not in document]
    if missing:
        raise ValueError(f"sweep document missing keys: {missing}")
    if not isinstance(document["grid"], str) or not document["grid"]:
        raise ValueError("'grid' must be a non-empty string")
    if not isinstance(document["cells"], list) or not document["cells"]:
        raise ValueError("'cells' must be a non-empty array")
    if not isinstance(document["timings"], dict):
        raise ValueError("'timings' must be an object")
    for cell in document["cells"]:
        if not isinstance(cell, dict):
            raise ValueError("every cell must be an object")
        for key, kinds in (
            ("index", int), ("experiment", str), ("params", dict),
            ("status", str), ("wall_s", (int, float)),
            ("trace", (str, type(None))),
        ):
            if key not in cell or not isinstance(cell[key], kinds):
                raise ValueError(f"cell needs {key!r} of type {kinds}")
        if cell["status"] == "ok":
            validate_result_dict(cell.get("result"))
        elif not isinstance(cell.get("error"), str):
            raise ValueError("error cells need an 'error' message string")
