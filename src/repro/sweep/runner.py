"""Cell execution on the serial/process backends.

:class:`SweepRunner` generalizes the sharded engine's execution model from
per-shard updates to whole experiment cells: every expanded
:class:`~repro.sweep.spec.SweepCell` is one independent
``run_experiment`` call (the same spec-to-artifact path the CLI's ``run``
uses, so a cell's rows byte-match the standalone run), fanned out through
:meth:`repro.engine.ParallelRunner.map_tasks`.

Cells ship back as decoded ``experiment-result/v1`` documents rather than
live :class:`ExperimentResult` objects (``extras`` never cross the
boundary), and a cell that fails with a ``ValueError`` — bad parameter
values, unknown scenario names, harness cross-parameter checks — is
recorded per cell (``status``/``error``) instead of killing the sweep.
Anything else (a genuine bug, a dead pool worker) still propagates: a
crash should be loud, not a quiet ``status=error`` row.  For deterministic experiments the two backends are
bit-identical cell for cell; the one deliberate exception is
execution-context *observability* — ``trace-stats`` surfaces the
process-global trace-cache hit/miss counters in its headline, and those
depend on which cells shared a process.  Trace memoization composes for
free: the serial backend hits one in-process
:class:`~repro.trace.TraceSpec` LRU across all cells, and each pool
worker keeps its own (clearing the cache per cell would make the
counters deterministic at the price of rebuilding every shared trace,
which is exactly what the sweep engine exists to avoid).
"""

from __future__ import annotations

import time

from repro.engine.runner import ParallelRunner
from repro.sweep.result import CellOutcome, SweepResult
from repro.sweep.spec import SweepCell, SweepError, SweepSpec


def _execute_cell(payload: tuple[SweepCell, bool]) -> dict[str, object]:
    """Worker task: run one cell, returning a serializable outcome dict.

    ``ValueError`` (bad parameter values, harness cross-parameter checks)
    is captured as a per-cell error; anything else is a bug and propagates.
    """
    from repro.experiments.runner import run_experiment

    cell, smoke = payload
    t0 = time.perf_counter()
    try:
        result = run_experiment(
            cell.experiment,
            trace_specs=[cell.trace] if cell.trace is not None else None,
            overrides=dict(cell.params),
            smoke=smoke,
        )
        document, status, error = result.to_dict(), "ok", None
    except ValueError as exc:
        document, status, error = None, "error", str(exc)
    return {
        "index": cell.index,
        "experiment": cell.experiment,
        "trace": cell.trace,
        "params": dict(cell.params),
        "status": status,
        "wall_s": round(time.perf_counter() - t0, 3),
        "error": error,
        "result": document,
    }


class SweepRunner:
    """Expands a :class:`SweepSpec` and executes its cells.

    Parameters mirror :class:`repro.engine.ParallelRunner`: ``backend`` is
    ``"serial"`` (in-process loop, the default) or ``"process"`` (a
    persistent pool shipping whole cells to workers), ``workers`` sizes the
    pool.
    """

    def __init__(self, backend: str = "serial", workers: int | None = None
                 ) -> None:
        self.runner = ParallelRunner(backend, workers)

    @property
    def backend(self) -> str:
        return self.runner.backend

    @property
    def workers(self) -> int:
        return self.runner.workers if self.runner.backend == "process" else 1

    def run(self, spec: SweepSpec | str, smoke: bool = False) -> SweepResult:
        """Expand ``spec`` (a :class:`SweepSpec` or grid string) and run
        every cell, returning the aggregated artifact."""
        if isinstance(spec, str):
            spec = SweepSpec.parse(spec)
        cells = spec.expand()
        if not cells:
            raise SweepError(f"sweep grid {spec.format()!r} expands to no cells")
        t0 = time.perf_counter()
        outcomes = self.runner.map_tasks(
            _execute_cell, [(cell, smoke) for cell in cells]
        )
        total_s = time.perf_counter() - t0
        return SweepResult(
            grid=spec.format(),
            mode=spec.mode,
            backend=self.backend,
            workers=self.workers,
            cells=[CellOutcome.from_dict(o) for o in outcomes],
            timings={
                "total_s": round(total_s, 3),
                "cells_per_s": round(len(cells) / max(total_s, 1e-9), 3),
            },
        )

    def close(self) -> None:
        """Shut the worker pool down (no-op for the serial backend)."""
        self.runner.close()

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SweepRunner(backend={self.backend!r}, workers={self.workers})"


def run_sweep(
    grid: str,
    backend: str = "serial",
    workers: int | None = None,
    smoke: bool = False,
) -> SweepResult:
    """String-to-artifact convenience: parse, expand, execute, aggregate."""
    with SweepRunner(backend, workers) as runner:
        return runner.run(grid, smoke=smoke)
