"""Parameter-grid sweeps over the experiment registry.

The layer that composes everything below it: a :class:`SweepSpec` declares
axes (experiment names, trace specs, ``--set``-style parameter values),
expands into independent :class:`SweepCell`\\ s, and a :class:`SweepRunner`
executes each cell — one ``Experiment.run`` on its own memoized trace — on
the engine's serial or process backend, aggregating everything into one
versioned ``repro-hhh/sweep-result/v1`` artifact with per-cell provenance,
comparative pivot tables, and best-cell selection.

``repro-hhh sweep --grid "exp=...;trace=...;detector=...,..." --workers N``
drives it from the CLI; the registered ``sweep`` meta-experiment gives CI
a smoke-scale cell.
"""

from repro.sweep.result import (
    SWEEP_SCHEMA_ID,
    CellOutcome,
    SweepResult,
    validate_sweep_dict,
)
from repro.sweep.runner import SweepRunner, run_sweep
from repro.sweep.spec import (
    RESERVED_AXES,
    SweepAxis,
    SweepCell,
    SweepError,
    SweepSpec,
)

__all__ = [
    "RESERVED_AXES",
    "SWEEP_SCHEMA_ID",
    "CellOutcome",
    "SweepAxis",
    "SweepCell",
    "SweepError",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "run_sweep",
    "validate_sweep_dict",
]
