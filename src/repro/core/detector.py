"""The unified streaming-detector contract.

Every detector in :mod:`repro.sketch` and :mod:`repro.decay` — whether a
flat counter array, a d-stage pipeline, or a lazily-decayed cell table —
implements this one interface, so drivers, experiments, the CLI, and every
future scaling layer (sharding, async, multi-backend) program against a
single surface:

- ``update(key, weight, ts)`` — account one packet.  Window-bound sketches
  ignore ``ts``; continuous-time (decayed) detectors require it.
- ``update_batch(keys, weights, ts)`` — account a *columnar batch* of
  packets (numpy arrays, time-sorted as traces are).  Array-backed
  structures override this with a truly vectorized scatter-update fast
  path; the base-class fallback replays scalar updates in order and is
  therefore exactly equivalent for every detector.
- ``query(threshold, now)`` — enumerate items at or above a threshold
  (detectors that can only answer point queries leave the default, which
  raises).
- ``reset()`` — restore the freshly-constructed state in place, keeping
  the (deterministically seeded) hash functions.  This is what the
  disjoint-window protocol calls at boundaries.
- ``merge(other)`` — fold another instance of the same shape into this
  one, for sharded/parallel deployments.  Only structures with a sound
  merge define it.
- ``num_counters`` — resource accounting, as before.

The batch path is the performance story: a 20k-packet window costs one
vectorized hash per row plus one ``np.add.at`` scatter instead of 20k
Python-level calls.  Equivalence between the two paths is enforced by
``tests/core/test_batch_equivalence.py`` across the whole registry.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np


_MASK64 = (1 << 64) - 1


def as_uint64_keys(keys: np.ndarray) -> np.ndarray:
    """Canonicalise a key column for vectorized hashing.

    The scalar hash functions reduce any Python int modulo 2^64, so the
    uint64 wrap applied here (two's-complement for negative keys) lands
    every key in the same cell on both paths.
    """
    keys = np.asarray(keys)
    if keys.dtype == np.uint64:
        return keys
    if keys.dtype.kind in "iu":
        return keys.astype(np.uint64)
    # Object columns (arbitrary-precision Python ints from a key_func).
    return np.asarray(
        [int(key) & _MASK64 for key in keys.tolist()], dtype=np.uint64
    )


def ensure_nonnegative_weights(weights: np.ndarray) -> np.ndarray:
    """Shared batch-path guard mirroring scalar ``update`` validation."""
    weights = np.asarray(weights)
    if np.any(weights < 0):
        raise ValueError("negative weight in batch")
    return weights


def as_batch(
    keys: Sequence[int] | np.ndarray,
    weights: Sequence[float] | np.ndarray | None,
    ts: Sequence[float] | np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Normalise ``update_batch`` arguments to aligned numpy columns.

    ``weights`` defaults to all-ones.  ``ts`` stays ``None`` when absent so
    window-bound detectors never pay for a timestamp column.
    """
    keys = np.asarray(keys)
    n = keys.shape[0]
    if weights is None:
        weights = np.ones(n, dtype=np.int64)
    else:
        weights = np.asarray(weights)
        if weights.shape[0] != n:
            raise ValueError(
                f"weights length {weights.shape[0]} != keys length {n}"
            )
    if ts is not None:
        ts = np.asarray(ts, dtype=np.float64)
        if ts.shape[0] != n:
            raise ValueError(f"ts length {ts.shape[0]} != keys length {n}")
    return keys, weights, ts


class Detector(abc.ABC):
    """Abstract base class all streaming detectors implement."""

    @abc.abstractmethod
    def update(self, key: int, weight: float = 1,
               ts: float | None = None) -> None:
        """Account ``weight`` for ``key`` (at time ``ts`` where relevant).

        Window-bound sketches ignore ``ts``; continuous-time detectors
        require it and raise ``TypeError`` when it is omitted rather than
        silently assuming a time."""

    def update_batch(
        self,
        keys: Sequence[int] | np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
        ts: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        """Account a columnar batch of packets.

        The generic implementation replays scalar :meth:`update` calls in
        order, so it is exactly equivalent to per-packet streaming for any
        detector; array-backed subclasses override it with vectorized
        scatter updates.
        """
        keys, weights, ts = as_batch(keys, weights, ts)
        update = self.update
        if ts is None:
            for key, weight in zip(keys.tolist(), weights.tolist()):
                update(key, weight)
        else:
            for key, weight, t in zip(
                keys.tolist(), weights.tolist(), ts.tolist()
            ):
                update(key, weight, t)

    def query(
        self, threshold: float, now: float | None = None
    ) -> dict[int, float]:
        """Items whose current estimate reaches ``threshold``.

        Continuous-time detectors evaluate estimates at ``now``; detectors
        that cannot enumerate items (plain Count-Min, Bloom filters) do not
        override this default.
        """
        raise NotImplementedError(
            f"{type(self).__name__} answers point queries only; it cannot "
            "enumerate items"
        )

    @abc.abstractmethod
    def reset(self) -> None:
        """Restore the freshly-constructed state (hash functions kept)."""

    def merge(self, other: "Detector") -> None:
        """Fold ``other`` (same type and geometry) into this detector."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support merging"
        )

    def save_state(self) -> dict[str, object]:
        """Snapshot the complete mutable state as a versioned artifact.

        The default captures the instance ``__dict__`` (counter tables,
        candidate maps, RNG states, hash functions — every detector in the
        registry pickles whole), deep-copied via pickle so later updates
        never leak into the snapshot.  Restoring the artifact with
        :meth:`load_state` and continuing the stream is bit-identical to
        never having stopped; ``tests/core/test_checkpoint_equivalence.py``
        enforces this registry-wide.  Composite detectors that hold
        non-picklable runtime objects (the sharded engine's process-pool
        runner) override both methods to snapshot only detector state.
        """
        from repro.core.checkpoint import pack_state

        return pack_state(self, dict(self.__dict__))

    def load_state(self, state: dict[str, object]) -> None:
        """Restore a :meth:`save_state` artifact in place.

        Validates the artifact's schema version and detector class first,
        so loading mismatched state raises instead of corrupting counters.
        """
        from repro.core.checkpoint import unpack_state

        payload = unpack_state(self, state)
        self.__dict__.clear()
        self.__dict__.update(payload)  # type: ignore[arg-type]

    def state_digest(self) -> str:
        """A short stable hash of the complete detector state.

        SHA-256 over a *canonical* walk of the :meth:`save_state` payload
        (schema tag, detector class, then every counter table, candidate
        map, and hash-function parameter by structure and value).  This is
        the cheap pre-check the equivalence fuzz harness (:mod:`repro.fuzz`)
        runs before diffing full emission sequences: plans promised
        bit-identical (checkpoint/resume vs uninterrupted, serve vs serial)
        must converge to the same digest, and a mismatch pins the
        divergence to detector state even when every emitted report
        happens to agree.

        The walk deliberately does *not* hash raw pickle bytes: pickle
        memoization encodes object-identity accidents (e.g. interned
        ``__dict__`` key strings shared across sub-objects in a fresh
        detector but distinct after a restore round-trip) that are
        observationally meaningless.  Dict *insertion order* is hashed —
        it is observable through ``query`` report order.
        """
        import hashlib

        state = self.save_state()
        h = hashlib.sha256()
        _canonical_update(h, state)
        return h.hexdigest()

    @property
    @abc.abstractmethod
    def num_counters(self) -> int:
        """Counters allocated (for resource accounting)."""


def _canonical_update(h, obj, _depth: int = 0) -> None:
    """Feed ``obj`` into hash ``h`` by structure and value, not identity.

    Handles the types detector state is made of (numpy arrays, dicts,
    sequences, primitives, plain-``__dict__`` objects such as hash
    families and flat tables); nested ``repro-hhh/detector-state/v1``
    envelopes (the sharded engine's payload) are unpickled and walked
    rather than hashed as opaque bytes, so the digest stays canonical
    through composition.  Unknown leaves fall back to their own pickle
    (fresh memo, so the cross-object identity accidents cannot leak in).
    """
    import pickle
    import struct

    if _depth > 50:  # cycles / pathological nesting: opaque fallback
        h.update(b"deep")
        h.update(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        return
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"T" if obj else b"F")
    elif isinstance(obj, int):
        h.update(b"i" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"f" + struct.pack("<d", obj))
    elif isinstance(obj, str):
        h.update(b"s" + obj.encode())
    elif isinstance(obj, bytes):
        h.update(b"b" + obj)
    elif isinstance(obj, np.ndarray):
        h.update(b"a" + str(obj.dtype).encode() + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, np.generic):
        h.update(b"g" + str(obj.dtype).encode() + obj.tobytes())
    elif isinstance(obj, dict):
        from repro.core.checkpoint import STATE_SCHEMA

        if obj.get("schema") == STATE_SCHEMA and isinstance(
            obj.get("payload"), bytes
        ):
            h.update(b"E" + str(obj.get("detector")).encode())
            _canonical_update(
                h, pickle.loads(obj["payload"]), _depth + 1
            )
            return
        h.update(b"{")
        for key, value in obj.items():
            _canonical_update(h, key, _depth + 1)
            h.update(b":")
            _canonical_update(h, value, _depth + 1)
        h.update(b"}")
    elif isinstance(obj, (list, tuple)):
        h.update(b"[" if isinstance(obj, list) else b"(")
        for item in obj:
            _canonical_update(h, item, _depth + 1)
        h.update(b"]")
    elif isinstance(obj, (set, frozenset)):
        import hashlib

        # Order-insensitive: combine sorted per-element digests.
        parts = []
        for item in obj:
            sub = hashlib.sha256()
            _canonical_update(sub, item, _depth + 1)
            parts.append(sub.digest())
        h.update(b"<")
        for part in sorted(parts):
            h.update(part)
        h.update(b">")
    else:
        h.update(b"O" + type(obj).__qualname__.encode())
        try:
            attrs = vars(obj)
        except TypeError:
            h.update(
                pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            )
        else:
            _canonical_update(h, attrs, _depth + 1)
