"""The shared ``did you mean`` hint for mistyped registry names.

Every string-keyed registry (detectors, experiments, scenarios, sweep
axes, result columns/metrics) rejects unknown names with the same
closest-match suggestion; keeping the formatting here means the hint
reads identically everywhere and is tuned in one place.
"""

from __future__ import annotations

import difflib
from typing import Iterable


def closest_hint(name: str, known: Iterable[str]) -> str:
    """``" did you mean 'x'?"`` for the closest known name, or ``""``.

    The leading space lets callers splice the hint directly after a
    ``;``-terminated clause without double-spacing when there is no match.
    """
    close = difflib.get_close_matches(name, list(known), n=1)
    return f" did you mean {close[0]!r}?" if close else ""
