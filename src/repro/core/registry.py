"""String-keyed detector registry.

Detector modules register a factory under a short stable name
(``"countmin"``, ``"ondemand-tdbf"``, ...) so the CLI, experiments, and
tests can build detectors by name::

    from repro.core import make_detector, detector_names

    det = make_detector("countmin", width=2048)

Registration happens as a side effect of importing the detector modules;
the public functions lazily import :mod:`repro.sketch` and
:mod:`repro.decay` so callers never see a half-populated registry.

Each entry carries the metadata drivers and tests need to exercise a
detector uniformly without ``isinstance`` probing:

- ``timestamped`` — ``update``/``estimate`` take meaningful time arguments
  (the continuous-time detectors of :mod:`repro.decay`);
- ``enumerable`` — ``query`` can enumerate items (vs point queries only);
- ``mergeable`` — ``merge`` of key-partitioned shards reproduces the
  single-stream detector *exactly* (up to float rounding), so the sharded
  engine may combine shards by merging.  Detectors whose merge is sound
  but approximate (Space-Saving, Misra-Gries, the Count-Min candidate
  tracker) stay ``mergeable=False`` and are combined by concatenating
  per-shard reports instead — exact under key partitioning because each
  key lives in exactly one shard;
- ``probe`` — optional ``(detector, key, now) -> float`` point estimate for
  detectors whose estimate signature is nonstandard (hierarchical,
  membership-only);
- ``accuracy`` — for enumerable detectors, the :class:`AccuracyFloor` the
  registry-wide conformance suite
  (``tests/core/test_accuracy_conformance.py``) and the
  ``detector-accuracy`` experiment hold the detector to: minimum
  recall/F1 against exact ground truth, plus which ground truth the
  detector answers for (whole-trace byte counts, exponentially decayed
  counts, or a trailing window).  Declaring the floor next to the entry —
  not inside a test — means a future regression in any update path fails
  loudly without the test knowing detector internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.detector import Detector
from repro.core.suggest import closest_hint

#: Ground-truth modes an :class:`AccuracyFloor` can declare.
TRUTH_MODES = ("total", "decayed", "window")


@dataclass(frozen=True)
class AccuracyFloor:
    """Minimum accuracy an enumerable detector must clear, and against what.

    ``truth`` selects the exact reference the detector is scored against —
    ``"total"`` (byte counts over the whole trace), ``"decayed"``
    (exponentially decayed byte counts at end of trace; ``horizon`` is the
    tau, matching the registry factory defaults), or ``"window"`` (byte
    counts over the trailing ``horizon`` seconds).  ``recall``/``f1`` are
    the floors enforced on the zipf and ddos-burst conformance presets.
    """

    recall: float
    f1: float
    truth: str = "total"
    horizon: float = 10.0

    def __post_init__(self) -> None:
        if self.truth not in TRUTH_MODES:
            raise ValueError(
                f"unknown truth mode {self.truth!r}; "
                f"known: {', '.join(TRUTH_MODES)}"
            )
        for name, value in (("recall", self.recall), ("f1", self.f1)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} floor must be in [0, 1], got {value}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")


@dataclass(frozen=True)
class DetectorSpec:
    """A registered detector: factory plus uniform-access metadata."""

    name: str
    factory: Callable[..., Detector]
    timestamped: bool = False
    enumerable: bool = True
    mergeable: bool = False
    description: str = ""
    probe: Callable[[Detector, int, float], float] | None = None
    accuracy: AccuracyFloor | None = None

    def estimate(self, detector: Detector, key: int, now: float) -> float:
        """Uniform point estimate regardless of the detector's signature."""
        if self.probe is not None:
            return float(self.probe(detector, key, now))
        if self.timestamped:
            return float(detector.estimate(key, now))  # type: ignore[attr-defined]
        return float(detector.estimate(key))  # type: ignore[attr-defined]


_REGISTRY: dict[str, DetectorSpec] = {}


def register_detector(
    name: str,
    factory: Callable[..., Detector],
    *,
    timestamped: bool = False,
    enumerable: bool = True,
    mergeable: bool = False,
    description: str = "",
    probe: Callable[[Detector, int, float], float] | None = None,
    accuracy: AccuracyFloor | None = None,
) -> Callable[..., Detector]:
    """Register ``factory`` under ``name``; returns the factory unchanged."""
    if name in _REGISTRY:
        raise ValueError(f"detector {name!r} is already registered")
    _REGISTRY[name] = DetectorSpec(
        name=name,
        factory=factory,
        timestamped=timestamped,
        enumerable=enumerable,
        mergeable=mergeable,
        description=description,
        probe=probe,
        accuracy=accuracy,
    )
    return factory


def _ensure_populated() -> None:
    # Importing the detector packages runs their register_detector calls.
    import repro.decay  # noqa: F401
    import repro.sketch  # noqa: F401


def detector_names() -> tuple[str, ...]:
    """All registered detector names, sorted."""
    _ensure_populated()
    return tuple(sorted(_REGISTRY))


def get_spec(name: str) -> DetectorSpec:
    """The :class:`DetectorSpec` registered under ``name``."""
    _ensure_populated()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r};{closest_hint(name, _REGISTRY)} "
            f"known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def make_detector(name: str, **kwargs) -> Detector:
    """Build a detector by registry name, forwarding ``kwargs``."""
    return get_spec(name).factory(**kwargs)


def get_enumerable_spec(
    name: str, error: type[ValueError] = ValueError
) -> DetectorSpec:
    """The spec for ``name``, required to enumerate reports.

    Report-driven consumers (shard-scaling, the streaming pipeline) need
    ``query`` to enumerate items; this shared gate raises ``error`` (a
    ``ValueError`` subclass, e.g. ``ExperimentError``) with the registered
    alternatives when the detector is unknown or point-query only.
    """
    _ensure_populated()
    if name not in _REGISTRY:
        raise error(
            f"unknown detector {name!r};{closest_hint(name, _REGISTRY)} "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    spec = _REGISTRY[name]
    if not spec.enumerable:
        enumerable = ", ".join(
            n for n in sorted(_REGISTRY) if _REGISTRY[n].enumerable
        )
        raise error(
            f"detector {name!r} cannot enumerate reports; "
            f"need one of: {enumerable}"
        )
    return spec
