"""Versioned detector checkpoint artifacts.

A checkpoint captures a detector's *complete* mutable state — counter
tables, candidate maps, RNG states, lazily-decayed cell stamps, the
deterministically-seeded hash functions — so that restoring it into a
compatible instance and continuing the stream is bit-identical to never
having stopped.  That is the contract the streaming runtime
(:mod:`repro.stream`) relies on to snapshot a pipeline mid-stream and
resume it later, and it is enforced registry-wide by
``tests/core/test_checkpoint_equivalence.py``.

The artifact is a small versioned envelope::

    {
      "schema": "repro-hhh/detector-state/v1",
      "detector": "CountMinSketch",
      "payload": b"..."        # pickled state snapshot
    }

``payload`` is a pickle of the detector's state (every detector in the
registry pickles whole since the hash families became picklable callables
— see :mod:`repro.hashing.families`).  The envelope stays a plain dict so
callers can embed it in larger artifacts (the stream checkpoint does) or
write it to disk via :func:`write_checkpoint` / :func:`read_checkpoint`.

:meth:`repro.core.Detector.save_state` snapshots into this envelope;
:meth:`repro.core.Detector.load_state` validates the schema *and* the
detector class before restoring, so loading a Count-Min checkpoint into a
Space-Saving raises instead of silently corrupting state.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.detector import Detector

#: Version tag embedded in every detector-state artifact.
STATE_SCHEMA = "repro-hhh/detector-state/v1"


class CheckpointError(ValueError):
    """A malformed, mistyped, or wrong-version checkpoint artifact."""


def pack_state(detector: "Detector", payload: object) -> dict[str, object]:
    """Wrap ``payload`` in the versioned envelope for ``detector``.

    The payload is pickled immediately, so the artifact is a deep snapshot:
    later updates to the live detector cannot leak into it.
    """
    return {
        "schema": STATE_SCHEMA,
        "detector": type(detector).__qualname__,
        "payload": pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
    }


def unpack_state(detector: "Detector", state: object) -> object:
    """Validate an envelope against ``detector`` and return its payload."""
    if not isinstance(state, dict):
        raise CheckpointError(
            f"checkpoint must be a dict, got {type(state).__name__}"
        )
    schema = state.get("schema")
    if schema != STATE_SCHEMA:
        raise CheckpointError(
            f"unknown checkpoint schema {schema!r}; expected {STATE_SCHEMA!r}"
        )
    saved = state.get("detector")
    expected = type(detector).__qualname__
    if saved != expected:
        raise CheckpointError(
            f"checkpoint holds {saved!r} state; cannot load into {expected!r}"
        )
    payload = state.get("payload")
    if not isinstance(payload, bytes):
        raise CheckpointError("checkpoint payload must be bytes")
    return pickle.loads(payload)


def write_checkpoint(
    detector: "Detector", path: str | Path
) -> dict[str, object]:
    """Snapshot ``detector`` to ``path``; returns the artifact written."""
    state = detector.save_state()
    Path(path).write_bytes(
        pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    )
    return state


def read_checkpoint(path: str | Path) -> dict[str, object]:
    """Read a checkpoint artifact written by :func:`write_checkpoint`."""
    state = pickle.loads(Path(path).read_bytes())
    if not isinstance(state, dict) or state.get("schema") != STATE_SCHEMA:
        raise CheckpointError(
            f"{path} does not hold a {STATE_SCHEMA!r} artifact"
        )
    return state


def load_checkpoint(detector: "Detector", path: str | Path) -> "Detector":
    """Restore ``detector`` in place from ``path``; returns it for chaining."""
    detector.load_state(read_checkpoint(path))
    return detector
