"""Core layer: the unified detector contract and registry.

This package is the architectural keystone the rest of the library builds
on: :class:`Detector` defines the streaming interface (scalar *and*
columnar-batch updates, query, reset, merge, resource accounting), and the
registry maps stable string names to detector factories for CLI and
experiment lookup.

See ``ROADMAP.md`` ("Architecture") for the layering:
core -> sketch/decay -> windows -> analysis/cli.
"""

from repro.core.checkpoint import (
    STATE_SCHEMA,
    CheckpointError,
    load_checkpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.core.detector import Detector, as_batch
from repro.core.registry import (
    AccuracyFloor,
    DetectorSpec,
    detector_names,
    get_enumerable_spec,
    get_spec,
    make_detector,
    register_detector,
)

__all__ = [
    "AccuracyFloor",
    "CheckpointError",
    "Detector",
    "DetectorSpec",
    "STATE_SCHEMA",
    "as_batch",
    "detector_names",
    "get_enumerable_spec",
    "get_spec",
    "load_checkpoint",
    "make_detector",
    "read_checkpoint",
    "register_detector",
    "write_checkpoint",
]
