"""Flat open-addressing key table with amortized batch admission helpers.

This is the shared fast-path primitive behind the pointer-based detector
family (Space-Saving, Misra-Gries, the decayed variants, and friends).
Each detector keeps its per-key state in named numpy columns owned by a
:class:`FlatTable`; the table provides

- scalar ``insert``/``remove``/``slot_of`` maintenance with linear-probe
  open addressing and tombstones,
- a vectorized ``lookup_batch`` that resolves a whole key column to slot
  indices in a handful of probe rounds, and
- :func:`plan_batch`, which splits an incoming chunk at the first packet
  that could trigger an eviction: everything before the split point is
  admission-free (tracked-key hits plus inserts into guaranteed-free
  slots) and can be applied with scatter-adds in any order, while the
  remainder is replayed through the detector's scalar ``update`` so
  eviction order stays exactly the scalar algorithm's.

Capacity discipline: callers never hold more than ``capacity`` live keys,
and the backing arrays are sized at the next power of two >= 2*capacity,
so the load factor stays <= 0.5 plus tombstones.  A deterministic in-place
rebuild clears tombstones before probe chains can degrade.

Column arrays are rebuilt *in place* (same ndarray objects) so detectors
may safely cache references to them; the whole table pickles through
``__dict__`` for checkpointing.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.mixers import splitmix64, splitmix64_array


_EMPTY = 0
_LIVE = 1
_TOMBSTONE = 2


class FlatTable:
    """Open-addressing uint64-key table with named numpy value columns."""

    def __init__(self, capacity: int, columns: dict[str, type]) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        size = 8
        while size < 2 * capacity:
            size <<= 1
        self.capacity = capacity
        self.size = size
        self._mask = size - 1
        self.key_col = np.zeros(size, dtype=np.uint64)
        self.state = np.zeros(size, dtype=np.int8)
        self.cols = {name: np.zeros(size, dtype=dt) for name, dt in columns.items()}
        # Python-dict sidecar: key -> slot, for O(1) scalar gets and
        # deterministic iteration over live keys.
        self.slot_of: dict[int, int] = {}
        self._tombstones = 0

    def __len__(self) -> int:
        return len(self.slot_of)

    def __contains__(self, key: int) -> bool:
        return key in self.slot_of

    def get(self, key: int) -> int:
        """Slot of ``key``, or -1 when untracked."""
        return self.slot_of.get(key, -1)

    @property
    def live_mask(self) -> np.ndarray:
        """Boolean mask over slots currently holding a live key."""
        return self.state == _LIVE

    def insert(self, key: int) -> int:
        """Claim a slot for absent ``key`` and return it (columns zeroed)."""
        if len(self.slot_of) >= self.capacity:
            raise RuntimeError("flat table is at capacity; evict first")
        if (len(self.slot_of) + self._tombstones) * 4 > self.size * 3:
            self._rebuild()
        mask = self._mask
        state = self.state
        h = splitmix64(key) & mask
        while state[h] == _LIVE:
            h = (h + 1) & mask
        if state[h] == _TOMBSTONE:
            self._tombstones -= 1
        slot = int(h)
        state[slot] = _LIVE
        self.key_col[slot] = key
        for col in self.cols.values():
            col[slot] = 0
        self.slot_of[key] = slot
        return slot

    def remove(self, key: int) -> None:
        """Tombstone ``key``'s slot (key must be tracked)."""
        slot = self.slot_of.pop(key)
        self.state[slot] = _TOMBSTONE
        self._tombstones += 1

    def _rebuild(self) -> None:
        """Re-place every live key, dropping tombstones (in place)."""
        mask = self._mask
        old = list(self.slot_of.items())
        snapshot = {name: col.copy() for name, col in self.cols.items()}
        self.state[:] = _EMPTY
        self.key_col[:] = 0
        self.slot_of.clear()
        self._tombstones = 0
        for key, old_slot in old:
            h = splitmix64(key) & mask
            while self.state[h] == _LIVE:
                h = (h + 1) & mask
            slot = int(h)
            self.state[slot] = _LIVE
            self.key_col[slot] = key
            for name, col in self.cols.items():
                col[slot] = snapshot[name][old_slot]
            self.slot_of[key] = slot

    def upsert_batch(
        self, keys: np.ndarray, max_new: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Resolve every key to a slot, claiming empty slots for new keys.

        Returns ``(slots, claimed)`` — per-packet slot indices plus the
        newly claimed slots (their columns zeroed) — when the chunk's
        distinct new keys fit within ``max_new`` free slots.  Otherwise the
        table is rolled back untouched and ``None`` is returned so the
        caller can take the split/replay path instead.

        Claim rounds piggyback on the probe rounds: a lane that reaches an
        EMPTY slot is definitively absent and tries to claim it in place
        (last writer per slot wins; losers keep probing).  Tombstones are
        probed past but never claimed, so live probe chains stay intact.
        """
        n = keys.shape[0]
        if (
            max_new > 0
            and (len(self.slot_of) + self._tombstones + max_new) * 4
            > self.size * 3
        ):
            self._rebuild()
        key_col, state = self.key_col, self.state
        snapshot_keys = key_col.copy()
        snapshot_state = state.copy()
        mask = self._mask
        # Lanes are compacted each round: (cur_h, cur_keys, cur_idx) hold
        # only the still-unresolved packets, so late rounds touch only the
        # longest probe chains.
        cur_h = (splitmix64_array(keys) & np.uint64(mask)).astype(np.int64)
        cur_keys = keys
        cur_idx = np.arange(n)
        slots = np.full(n, -1, dtype=np.int64)
        claimed_mask = np.zeros(self.size, dtype=bool)
        # On a fresh table no lane can ever hit a live key: same-key lanes
        # probe in lockstep, so they resolve together in the claim round
        # and the whole LIVE-match test can be skipped.  The first round on
        # a fresh table additionally skips the state gather (all EMPTY).
        check_live = bool(self.slot_of) or self._tombstones > 0
        first_round = True
        while cur_idx.size:
            if not check_live and first_round:
                empty = np.ones(cur_idx.size, dtype=bool)
                resolved = np.zeros(cur_idx.size, dtype=bool)
            else:
                st = state[cur_h]
                if check_live:
                    resolved = (st == _LIVE) & (key_col[cur_h] == cur_keys)
                    if resolved.any():
                        slots[cur_idx[resolved]] = cur_h[resolved]
                else:
                    resolved = np.zeros(cur_idx.size, dtype=bool)
                empty = st == _EMPTY
            first_round = False
            if empty.any():
                all_empty = empty.all()
                if all_empty:
                    cslot = cur_h
                    ckey = cur_keys
                else:
                    cslot = cur_h[empty]
                    ckey = cur_keys[empty]
                key_col[cslot] = ckey  # last writer per slot wins
                winners = key_col[cslot] == ckey
                wslot = cslot[winners]
                state[wslot] = _LIVE
                claimed_mask[wslot] = True
                if np.count_nonzero(claimed_mask) > max_new:
                    key_col[:] = snapshot_keys
                    state[:] = snapshot_state
                    return None
                if all_empty:
                    slots[cur_idx[winners]] = wslot
                    resolved |= winners
                else:
                    widx = np.flatnonzero(empty)[winners]
                    slots[cur_idx[widx]] = wslot
                    resolved[widx] = True
            keep = ~resolved
            cur_h = (cur_h[keep] + 1) & mask
            cur_keys = cur_keys[keep]
            cur_idx = cur_idx[keep]
        claimed = np.flatnonzero(claimed_mask)
        if claimed.size:
            for col in self.cols.values():
                col[claimed] = 0
            self.slot_of.update(
                zip(key_col[claimed].tolist(), claimed.tolist())
            )
        return slots, claimed

    def lookup_batch(self, keys: np.ndarray) -> np.ndarray:
        """Resolve a uint64 key column to slot indices (-1 for untracked).

        Linear probing is vectorized across the chunk: every round advances
        only the still-unresolved lanes, so the loop runs for the longest
        probe chain (a few rounds at <= 0.5 load), not per packet.
        """
        n = keys.shape[0]
        mask = np.uint64(self._mask)
        h = (splitmix64_array(keys) & mask).astype(np.int64)
        slots = np.full(n, -1, dtype=np.int64)
        pending = np.arange(n)
        state = self.state
        key_col = self.key_col
        while pending.size:
            hp = h[pending]
            st = state[hp]
            found = (st == _LIVE) & (key_col[hp] == keys[pending])
            slots[pending[found]] = hp[found]
            pending = pending[~(found | (st == _EMPTY))]
            h[pending] = (h[pending] + 1) & self._mask
        return slots

    def clear(self) -> None:
        """Drop every key (columns re-zeroed)."""
        self.state[:] = _EMPTY
        self.key_col[:] = 0
        for col in self.cols.values():
            col[:] = 0
        self.slot_of.clear()
        self._tombstones = 0


def plan_batch(table: FlatTable, keys: np.ndarray) -> tuple[np.ndarray, int]:
    """Split a chunk into an admission-free prefix and a scalar tail.

    Returns ``(slots, split)`` where ``slots`` is ``lookup_batch`` over the
    whole chunk and packets ``[0, split)`` are guaranteed not to trigger an
    eviction: the number of *distinct* untracked keys in the prefix fits in
    the table's free slots.  Before the split point, hit scatter-adds and
    bulk inserts commute, so a vectorized application is exactly equivalent
    to the scalar replay; from ``split`` on the caller must replay packets
    through scalar ``update``.
    """
    slots = table.lookup_batch(keys)
    n = keys.shape[0]
    miss_pos = np.flatnonzero(slots < 0)
    slack = table.capacity - len(table)
    if miss_pos.size == 0:
        return slots, n
    _, first = np.unique(keys[miss_pos], return_index=True)
    if first.size <= slack:
        return slots, n
    # Position of the (slack+1)-th distinct new key: the first packet that
    # could force an eviction.
    first_pos = np.sort(miss_pos[first])
    return slots, int(first_pos[slack])


def group_sums(keys: np.ndarray, weights: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate a (key, weight) column pair: unique keys and summed weights."""
    uniq, inverse = np.unique(keys, return_inverse=True)
    sums = np.bincount(inverse, weights=weights, minlength=uniq.size)
    return uniq, sums


def grouped_cumsum(groups: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Inclusive running sum of ``values`` within each group, in stream order.

    ``groups`` is any integer labelling (e.g. hashed cell indices); the
    result at position ``i`` is the sum of ``values[j]`` over ``j <= i``
    with ``groups[j] == groups[i]``.  This is the workhorse for simulating
    per-packet sketch estimates over a whole chunk at once.
    """
    sort_key = groups
    if groups.size and groups.dtype.itemsize > 2:
        lo, hi = int(groups.min()), int(groups.max())
        if 0 <= lo and hi < 1 << 16:
            # numpy's stable argsort switches to radix for 16-bit ints —
            # ~15x faster on sketch-width cell labellings.
            sort_key = groups.astype(np.uint16)
    order = np.argsort(sort_key, kind="stable")
    g = groups[order]
    v = values[order]
    csum = np.cumsum(v)
    starts = np.flatnonzero(np.r_[True, g[1:] != g[:-1]])
    lengths = np.diff(np.r_[starts, g.size])
    offsets = np.repeat(csum[starts] - v[starts], lengths)
    out = np.empty_like(csum)
    out[order] = csum - offsets
    return out
