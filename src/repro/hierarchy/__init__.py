"""Prefix hierarchies.

A *hierarchy* tells HHH algorithms how keys generalise: which prefix lengths
exist (byte or bit granularity for 1D source hierarchies) and how to mask a
key to a given level.  Levels are indexed from 0 = leaf (most specific) to
``num_levels - 1`` = root (the whole address space), matching the bottom-up
order in which HHH algorithms process them.
"""

from repro.hierarchy.domain import (
    BIT_LENGTHS,
    BYTE_LENGTHS,
    SourceHierarchy,
)
from repro.hierarchy.lattice import TwoDHierarchy, LatticeNode

__all__ = [
    "SourceHierarchy",
    "BYTE_LENGTHS",
    "BIT_LENGTHS",
    "TwoDHierarchy",
    "LatticeNode",
]
