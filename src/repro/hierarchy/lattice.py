"""Two-dimensional (source x destination) hierarchy lattice.

The 2D generalisation structure is a lattice, not a chain: a node is a pair
``(src_level, dst_level)`` and has up to two parents (generalise the source
one step, or the destination one step).  Keys are 64-bit integers packing
``(src << 32) | dst`` (see :func:`repro.packet.flowkey.source_dest_key`).

The paper's experiments are 1D; the lattice is provided because every HHH
system the poster cites (and the exact algorithm in :mod:`repro.hhh`)
generalises to 2D, and the DDoS example uses it to localise attacks by
victim as well as attacker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.net.prefix import Prefix, mask_for_length
from repro.hierarchy.domain import BYTE_LENGTHS


@dataclass(frozen=True, slots=True, order=True)
class LatticeNode:
    """A lattice level: how many bits of source and destination survive."""

    src_level: int
    dst_level: int


class TwoDHierarchy:
    """The src x dst generalisation lattice at configurable granularity."""

    def __init__(
        self,
        src_lengths: Sequence[int] = BYTE_LENGTHS,
        dst_lengths: Sequence[int] = BYTE_LENGTHS,
    ) -> None:
        self.src_lengths = tuple(src_lengths)
        self.dst_lengths = tuple(dst_lengths)
        for lengths in (self.src_lengths, self.dst_lengths):
            if not lengths or lengths[0] != 32 or lengths[-1] != 0:
                raise ValueError(f"lengths must run 32..0, got {lengths}")
        self._src_masks = tuple(mask_for_length(l) for l in self.src_lengths)
        self._dst_masks = tuple(mask_for_length(l) for l in self.dst_lengths)

    @property
    def num_nodes(self) -> int:
        """Number of lattice levels."""
        return len(self.src_lengths) * len(self.dst_lengths)

    def nodes_bottom_up(self) -> Iterator[LatticeNode]:
        """All lattice nodes ordered by decreasing total specificity.

        This is a valid processing order for bottom-up HHH: every node
        appears after both of its children directions.
        """
        nodes = [
            LatticeNode(i, j)
            for i in range(len(self.src_lengths))
            for j in range(len(self.dst_lengths))
        ]
        nodes.sort(
            key=lambda nd: -(
                self.src_lengths[nd.src_level] + self.dst_lengths[nd.dst_level]
            )
        )
        return iter(nodes)

    def generalize(self, key: int, node: LatticeNode) -> int:
        """Mask a packed (src<<32|dst) key to ``node``'s levels."""
        src = (key >> 32) & self._src_masks[node.src_level]
        dst = key & self._dst_masks[node.dst_level]
        return (src << 32) | dst

    def parents(self, node: LatticeNode) -> list[LatticeNode]:
        """The (up to two) immediate generalisations of ``node``."""
        out = []
        if node.src_level + 1 < len(self.src_lengths):
            out.append(LatticeNode(node.src_level + 1, node.dst_level))
        if node.dst_level + 1 < len(self.dst_lengths):
            out.append(LatticeNode(node.src_level, node.dst_level + 1))
        return out

    def is_root(self, node: LatticeNode) -> bool:
        """True for the fully-generalised (0,0-bit) node."""
        return (
            node.src_level == len(self.src_lengths) - 1
            and node.dst_level == len(self.dst_lengths) - 1
        )

    def prefixes_of(self, key: int, node: LatticeNode) -> tuple[Prefix, Prefix]:
        """The (src, dst) prefixes of a generalized key at ``node``."""
        src_len = self.src_lengths[node.src_level]
        dst_len = self.dst_lengths[node.dst_level]
        return (
            Prefix((key >> 32) & 0xFFFFFFFF, src_len),
            Prefix(key & 0xFFFFFFFF, dst_len),
        )

    def __repr__(self) -> str:
        return (
            f"TwoDHierarchy(src={self.src_lengths}, dst={self.dst_lengths})"
        )
