"""One-dimensional source-IP hierarchies.

The paper's experiments use "one-dimension HHH (based on source IP
addresses)".  The conventional hierarchy over IPv4 sources is byte
granularity — /32, /24, /16, /8, /0 — which is also what P4 switch
implementations (and RHHH) use; bit granularity (every length 32..0) is
supported for finer analyses and ablations.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.net.ipv4 import IPV4_BITS
from repro.net.prefix import Prefix, mask_for_length

#: Byte-granularity prefix lengths, leaf first.
BYTE_LENGTHS: tuple[int, ...] = (32, 24, 16, 8, 0)

#: Bit-granularity prefix lengths, leaf first.
BIT_LENGTHS: tuple[int, ...] = tuple(range(IPV4_BITS, -1, -1))


class SourceHierarchy:
    """A 1D generalisation hierarchy over 32-bit source addresses.

    Parameters
    ----------
    granularity:
        ``"byte"`` (default, the paper's setting), ``"bit"``, or a custom
        strictly-decreasing tuple of prefix lengths starting at 32 and
        ending at 0.
    """

    def __init__(
        self, granularity: str | Sequence[int] = "byte"
    ) -> None:
        if granularity == "byte":
            lengths = BYTE_LENGTHS
        elif granularity == "bit":
            lengths = BIT_LENGTHS
        else:
            lengths = tuple(granularity)
            if not lengths or lengths[0] != IPV4_BITS or lengths[-1] != 0:
                raise ValueError(
                    "custom hierarchies must start at 32 and end at 0, got "
                    f"{lengths}"
                )
            if any(a <= b for a, b in zip(lengths, lengths[1:])):
                raise ValueError(f"lengths must strictly decrease: {lengths}")
        self.lengths: tuple[int, ...] = lengths
        self._masks = tuple(mask_for_length(l) for l in lengths)

    @property
    def num_levels(self) -> int:
        """How many levels the hierarchy has (including leaf and root)."""
        return len(self.lengths)

    @property
    def leaf_level(self) -> int:
        """Index of the leaf level (always 0)."""
        return 0

    @property
    def root_level(self) -> int:
        """Index of the root level."""
        return self.num_levels - 1

    def length_at(self, level: int) -> int:
        """Prefix length of ``level`` (0 = leaf)."""
        return self.lengths[level]

    def generalize(self, key: int, level: int) -> int:
        """Mask ``key`` to the prefix value at ``level``."""
        return key & self._masks[level]

    def generalize_array(self, keys: np.ndarray, level: int) -> np.ndarray:
        """Vectorized :meth:`generalize` over a uint64 key column."""
        return keys & np.uint64(self._masks[level])

    def ancestors(self, key: int) -> Iterator[tuple[int, int]]:
        """Yield ``(level, generalized_value)`` from leaf to root."""
        for level, mask in enumerate(self._masks):
            yield level, key & mask

    def prefix_at(self, value: int, level: int) -> Prefix:
        """Wrap a generalized value at ``level`` as a :class:`Prefix`."""
        return Prefix(value, self.lengths[level])

    def level_of_length(self, length: int) -> int:
        """The level index whose prefix length equals ``length``."""
        try:
            return self.lengths.index(length)
        except ValueError:
            raise ValueError(
                f"length {length} not in hierarchy {self.lengths}"
            ) from None

    def __repr__(self) -> str:
        return f"SourceHierarchy(lengths={self.lengths})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SourceHierarchy) and self.lengths == other.lengths

    def __hash__(self) -> int:
        return hash(self.lengths)
