"""IPv4 address and prefix algebra.

Everything in this package works on plain integers under the hood so that the
hot paths (hierarchy generalisation, trie keys) never allocate objects.
:class:`IPv4Address` and :class:`Prefix` are thin, immutable, hashable
wrappers for the public API and for readable test assertions.
"""

from repro.net.ipv4 import (
    IPV4_BITS,
    IPV4_MAX,
    IPv4Address,
    format_ipv4,
    parse_ipv4,
)
from repro.net.prefix import (
    Prefix,
    common_prefix_length,
    mask_for_length,
    parse_prefix,
    prefix_contains,
    truncate,
)
from repro.net.random_net import RandomAddressSpace

__all__ = [
    "IPV4_BITS",
    "IPV4_MAX",
    "IPv4Address",
    "format_ipv4",
    "parse_ipv4",
    "Prefix",
    "common_prefix_length",
    "mask_for_length",
    "parse_prefix",
    "prefix_contains",
    "truncate",
    "RandomAddressSpace",
]
