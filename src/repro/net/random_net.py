"""Structured random address generation.

Real Tier-1 traffic does not draw source addresses uniformly: addresses
cluster into networks, so the per-/8, /16, /24 aggregates that hierarchical
heavy hitters are made of exist at all levels.  :class:`RandomAddressSpace`
draws a population of host addresses nested under a configurable number of
top-level networks so that synthetic traces produce non-degenerate prefix
hierarchies.
"""

from __future__ import annotations

import random

from repro.net.ipv4 import IPV4_BITS
from repro.net.prefix import Prefix, truncate


class RandomAddressSpace:
    """Draw host addresses clustered under random networks.

    Parameters
    ----------
    num_networks:
        How many distinct top-level networks to create.
    network_length:
        Prefix length of the top-level networks (default /8-like 8 bits).
    subnets_per_network:
        How many distinct subnets to carve inside each network.
    subnet_length:
        Prefix length of the subnets (must be >= ``network_length``).
    rng:
        Seeded :class:`random.Random`; all draws flow through it.
    """

    def __init__(
        self,
        num_networks: int = 16,
        network_length: int = 8,
        subnets_per_network: int = 16,
        subnet_length: int = 24,
        rng: random.Random | None = None,
    ) -> None:
        if not 0 < network_length <= subnet_length <= IPV4_BITS:
            raise ValueError(
                "need 0 < network_length <= subnet_length <= 32, got "
                f"{network_length}/{subnet_length}"
            )
        if num_networks < 1 or subnets_per_network < 1:
            raise ValueError("need at least one network and one subnet")
        self._rng = rng or random.Random(0)
        self.network_length = network_length
        self.subnet_length = subnet_length
        self.networks = self._draw_distinct(num_networks, network_length)
        self.subnets: list[int] = []
        host_bits_in_net = subnet_length - network_length
        for net in self.networks:
            seen: set[int] = set()
            # Cap at the number of distinct subnets that actually fit.
            want = min(subnets_per_network, 1 << host_bits_in_net)
            while len(seen) < want:
                offset = self._rng.getrandbits(host_bits_in_net) if host_bits_in_net else 0
                subnet = net | (offset << (IPV4_BITS - subnet_length))
                seen.add(subnet)
            self.subnets.extend(sorted(seen))

    def _draw_distinct(self, count: int, length: int) -> list[int]:
        """Draw ``count`` distinct prefix values of ``length`` bits."""
        if count > (1 << min(length, 62)):
            raise ValueError(f"cannot draw {count} distinct /{length} networks")
        seen: set[int] = set()
        while len(seen) < count:
            value = self._rng.getrandbits(length) << (IPV4_BITS - length)
            seen.add(value)
        return sorted(seen)

    def draw_host(self) -> int:
        """A uniformly random host inside a uniformly random subnet."""
        subnet = self._rng.choice(self.subnets)
        host_bits = IPV4_BITS - self.subnet_length
        return subnet | (self._rng.getrandbits(host_bits) if host_bits else 0)

    def draw_hosts(self, count: int) -> list[int]:
        """``count`` independent draws of :meth:`draw_host`."""
        return [self.draw_host() for _ in range(count)]

    def subnet_prefixes(self) -> list[Prefix]:
        """All subnets as :class:`Prefix` objects."""
        return [Prefix(v, self.subnet_length) for v in self.subnets]

    def network_prefixes(self) -> list[Prefix]:
        """All top-level networks as :class:`Prefix` objects."""
        return [Prefix(v, self.network_length) for v in self.networks]

    def network_of(self, address: int) -> Prefix:
        """The top-level network containing ``address``."""
        return Prefix(truncate(address, self.network_length), self.network_length)
