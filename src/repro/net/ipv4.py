"""IPv4 addresses as integers.

The library stores addresses as unsigned 32-bit integers everywhere; this
module provides parsing, formatting and a small immutable wrapper class used
at API boundaries.  We deliberately do not use :mod:`ipaddress` in hot paths:
the exact-HHH trie and the trace generator touch millions of addresses and an
int is an order of magnitude cheaper than an ``IPv4Address`` instance from
the standard library.
"""

from __future__ import annotations

from dataclasses import dataclass

IPV4_BITS = 32
IPV4_MAX = (1 << IPV4_BITS) - 1


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation into an unsigned 32-bit integer.

    >>> parse_ipv4("10.0.0.1")
    167772161

    Raises :class:`ValueError` for anything that is not exactly four octets
    in range 0..255.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        if not part or not part.isdigit():
            raise ValueError(f"bad octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet {octet} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format an unsigned 32-bit integer as dotted-quad notation.

    >>> format_ipv4(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= IPV4_MAX:
        raise ValueError(f"not a 32-bit address value: {value}")
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@dataclass(frozen=True, slots=True, order=True)
class IPv4Address:
    """An immutable IPv4 address.

    Wraps the integer representation used internally; compares and hashes by
    value, so it is safe as a dict key and in sets.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= IPV4_MAX:
            raise ValueError(f"not a 32-bit address value: {self.value}")

    @classmethod
    def from_string(cls, text: str) -> "IPv4Address":
        """Build an address from dotted-quad notation."""
        return cls(parse_ipv4(text))

    @classmethod
    def from_octets(cls, a: int, b: int, c: int, d: int) -> "IPv4Address":
        """Build an address from four octets."""
        for octet in (a, b, c, d):
            if not 0 <= octet <= 255:
                raise ValueError(f"octet {octet} out of range")
        return cls((a << 24) | (b << 16) | (c << 8) | d)

    @property
    def octets(self) -> tuple[int, int, int, int]:
        """The four octets, most significant first."""
        v = self.value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def __str__(self) -> str:
        return format_ipv4(self.value)

    def __int__(self) -> int:
        return self.value
