"""IPv4 prefixes (CIDR blocks) and the algebra the HHH hierarchy needs.

A prefix is a ``(value, length)`` pair where ``value`` has all host bits
zeroed.  The functions here operate on raw integers; :class:`Prefix` is the
immutable wrapper used at API boundaries and inside result sets, where
hashability and a readable ``repr`` matter more than allocation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ipv4 import IPV4_BITS, IPV4_MAX, format_ipv4, parse_ipv4


def mask_for_length(length: int) -> int:
    """Network mask (as an int) for a prefix of ``length`` bits.

    >>> hex(mask_for_length(8))
    '0xff000000'
    """
    if not 0 <= length <= IPV4_BITS:
        raise ValueError(f"prefix length {length} out of range")
    if length == 0:
        return 0
    return (IPV4_MAX << (IPV4_BITS - length)) & IPV4_MAX


def truncate(value: int, length: int) -> int:
    """Zero the host bits of ``value``, keeping the top ``length`` bits."""
    return value & mask_for_length(length)


def prefix_contains(p_value: int, p_length: int, address: int) -> bool:
    """True when ``address`` falls inside prefix ``(p_value, p_length)``."""
    return truncate(address, p_length) == p_value


def common_prefix_length(a: int, b: int) -> int:
    """Length of the longest common prefix of two 32-bit addresses.

    >>> common_prefix_length(0x0A000000, 0x0A000001)
    31
    """
    diff = a ^ b
    if diff == 0:
        return IPV4_BITS
    return IPV4_BITS - diff.bit_length()


def parse_prefix(text: str) -> "Prefix":
    """Parse ``"a.b.c.d/len"`` notation; a bare address means ``/32``."""
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise ValueError(f"bad prefix length in {text!r}")
        length = int(len_text)
    else:
        addr_text, length = text, IPV4_BITS
    value = parse_ipv4(addr_text)
    if not 0 <= length <= IPV4_BITS:
        raise ValueError(f"prefix length {length} out of range in {text!r}")
    masked = truncate(value, length)
    if masked != value:
        raise ValueError(f"host bits set in {text!r}")
    return Prefix(masked, length)


@dataclass(frozen=True, slots=True, order=True)
class Prefix:
    """An immutable IPv4 prefix: network ``value`` plus bit ``length``.

    The constructor validates that host bits are zero, so two equal networks
    always compare equal regardless of how they were produced.
    """

    value: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= IPV4_BITS:
            raise ValueError(f"prefix length {self.length} out of range")
        if not 0 <= self.value <= IPV4_MAX:
            raise ValueError(f"not a 32-bit value: {self.value}")
        if truncate(self.value, self.length) != self.value:
            raise ValueError(
                f"host bits set: {format_ipv4(self.value)}/{self.length}"
            )

    @classmethod
    def from_address(cls, address: int, length: int) -> "Prefix":
        """The length-``length`` prefix containing ``address``."""
        return cls(truncate(address, length), length)

    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse CIDR notation (see :func:`parse_prefix`)."""
        return parse_prefix(text)

    @property
    def mask(self) -> int:
        """The network mask as an integer."""
        return mask_for_length(self.length)

    @property
    def num_addresses(self) -> int:
        """How many addresses the prefix covers."""
        return 1 << (IPV4_BITS - self.length)

    @property
    def first_address(self) -> int:
        """Lowest address in the prefix (the network value itself)."""
        return self.value

    @property
    def last_address(self) -> int:
        """Highest address in the prefix."""
        return self.value | (IPV4_MAX >> self.length if self.length else IPV4_MAX)

    def contains_address(self, address: int) -> bool:
        """True when ``address`` is inside this prefix."""
        return prefix_contains(self.value, self.length, address)

    def contains_prefix(self, other: "Prefix") -> bool:
        """True when ``other`` is equal to or nested inside this prefix."""
        return (
            other.length >= self.length
            and truncate(other.value, self.length) == self.value
        )

    def parent(self, levels: int = 1) -> "Prefix":
        """The ancestor ``levels`` bits shorter.

        Raises :class:`ValueError` when asked to go above the root.
        """
        new_length = self.length - levels
        if new_length < 0:
            raise ValueError(f"no ancestor {levels} above /{self.length}")
        return Prefix(truncate(self.value, new_length), new_length)

    def children(self) -> tuple["Prefix", "Prefix"]:
        """The two one-bit-longer sub-prefixes."""
        if self.length >= IPV4_BITS:
            raise ValueError("a /32 has no children")
        child_len = self.length + 1
        left = Prefix(self.value, child_len)
        right = Prefix(self.value | (1 << (IPV4_BITS - child_len)), child_len)
        return (left, right)

    def is_root(self) -> bool:
        """True for the zero-length prefix covering the whole space."""
        return self.length == 0

    def __str__(self) -> str:
        return f"{format_ipv4(self.value)}/{self.length}"

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Prefix):
            return self.contains_prefix(item)
        if isinstance(item, int):
            return self.contains_address(item)
        return NotImplemented


ROOT_PREFIX = Prefix(0, 0)
