"""Churn and drift accounting over consecutive online reports.

A streaming deployment cares not just about each report but about how the
heavy-hitter population *moves*: a DDoS burst shows up as a spike of
entries, its end as a spike of exits, and a flash crowd as sustained rank
displacement.  :func:`report_churn` compares two consecutive emissions'
reports on exactly those axes, reusing the set metrics of
:mod:`repro.metrics.sets`:

- Jaccard similarity of the reported key sets (two empty reports agree
  perfectly, matching :func:`repro.metrics.sets.jaccard`);
- entries / exits — keys that joined or left the report;
- rank displacement — the mean absolute change in by-volume rank over the
  keys present in both reports (0.0 when fewer than two keys persist), the
  signal that the population is reshuffling even when membership is
  stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.metrics.sets import jaccard, set_difference_report
from repro.stream.emission import Emission


@dataclass(frozen=True)
class ChurnStats:
    """How one report differs from the previous one."""

    jaccard: float            #: key-set similarity with the previous report
    entries: int              #: keys that joined the report
    exits: int                #: keys that left the report
    common: int               #: keys present in both reports
    rank_displacement: float  #: mean |rank change| over the common keys

    @property
    def flipped(self) -> bool:
        """True when membership changed at all (an entry or an exit)."""
        return bool(self.entries or self.exits)


def _ranks(report: Mapping[int, float]) -> dict[int, int]:
    """Key -> dense rank by descending estimate (ties broken by key for
    determinism)."""
    ordered = sorted(report.items(), key=lambda kv: (-kv[1], kv[0]))
    return {key: rank for rank, (key, _) in enumerate(ordered)}


def report_churn(
    previous: Mapping[int, float], current: Mapping[int, float]
) -> ChurnStats:
    """Churn of ``current`` relative to ``previous``."""
    diff = set_difference_report(set(previous), set(current))
    prev_ranks = _ranks(previous)
    cur_ranks = _ranks(current)
    common = set(prev_ranks) & set(cur_ranks)
    if len(common) >= 2:
        displacement = sum(
            abs(prev_ranks[key] - cur_ranks[key]) for key in common
        ) / len(common)
    else:
        displacement = 0.0
    return ChurnStats(
        jaccard=jaccard(set(previous), set(current)),
        entries=diff.only_observed,
        exits=diff.only_reference,
        common=diff.common,
        rank_displacement=displacement,
    )


def churn_series(emissions: Sequence[Emission]) -> list[ChurnStats]:
    """Per-emission churn along a timeline (the first emission is compared
    against the empty report, so a non-empty opening report counts as
    entries)."""
    out: list[ChurnStats] = []
    previous: Mapping[int, float] = {}
    for emission in emissions:
        out.append(report_churn(previous, emission.report))
        previous = emission.report
    return out


def emission_rows(emissions: Sequence[Emission]) -> list[dict[str, object]]:
    """One flat table row per emission (report + churn + throughput).

    The shared row schema of the ``stream-replay`` experiment and the
    ``repro-hhh stream`` subcommand, so their tables and JSON artifacts
    stay identical.
    """
    return [
        {
            "emission": emission.index,
            "t0": round(emission.window.t0, 3),
            "t1": round(emission.window.t1, 3),
            "packets": emission.packets,
            "bytes": emission.bytes,
            "report_size": len(emission.report),
            "jaccard": round(stats.jaccard, 3),
            "entries": stats.entries,
            "exits": stats.exits,
            "rank_disp": round(stats.rank_displacement, 2),
            "pps": int(emission.pps),
            "wall_ms": round(emission.wall_s * 1e3, 3),
        }
        for emission, stats in zip(emissions, churn_series(emissions))
    ]
