"""Unbounded packet-stream sources yielding fixed-size columnar chunks.

Everything below the stream layer consumes a fully materialized
:class:`repro.trace.Trace`; a production deployment consumes an *unbounded*
packet stream with bounded memory.  :class:`StreamSource` is the bridge: a
source yields time-ordered trace *segments* (possibly forever), and
:meth:`StreamSource.chunks` re-chunks them into fixed-size columnar chunks
— each chunk is itself a small :class:`Trace`, so the chunk layout is
exactly the layout every detector's ``update_batch`` fast path already
speaks.

Sources:

- :class:`TraceSource` — adapts an existing in-memory trace (replay);
- :class:`ScenarioSource` — an *infinite* synthetic generator wrapping the
  scenario registry of :mod:`repro.trace.spec`: it builds the scenario
  again and again (re-seeding each cycle where the scenario accepts a
  ``seed``) and stitches the cycles into one continuous timeline.  Seeded,
  deterministic, and can run forever in O(segment) memory;
- composition ops — :func:`splice` (play sources back to back on one
  continuous clock), :func:`interleave` (overlay sources on one timeline,
  merged by timestamp), and :func:`rate_rewrite` (compress or stretch
  timestamps to rewrite the packet rate).  These are how drift scenarios
  like calm → ddos-burst → calm are built.

Every source is string-addressable via :func:`parse_stream_spec`, the
stream counterpart of ``TraceSpec``::

    calm:duration=20+ddos-burst:duration=30+calm:duration=20   # splice
    calm:duration=60&repeat:ddos-burst:duration=15             # overlay
    caida:day=0,duration=60@x4                                 # 4x rate
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence

import numpy as np

from repro.trace.container import Trace
from repro.trace.ops import concat_traces, shift_trace
from repro.trace.spec import TraceSpec, TraceSpecError, get_scenario


def _mean_spacing(segment: Trace) -> float:
    """The mean inter-packet gap of a segment (used to butt segments
    together without colliding or leaving a dead window)."""
    if len(segment) > 1 and segment.duration > 0:
        return segment.duration / (len(segment) - 1)
    return 1e-3


def _concat_segments(parts: Sequence[Trace]) -> Trace:
    """Concatenate already time-ordered parts without re-sorting."""
    if len(parts) == 1:
        return parts[0]
    return Trace(
        np.concatenate([p.ts for p in parts]),
        np.concatenate([p.src for p in parts]),
        np.concatenate([p.dst for p in parts]),
        np.concatenate([p.length for p in parts]),
        np.concatenate([p.sport for p in parts]),
        np.concatenate([p.dport for p in parts]),
        np.concatenate([p.proto for p in parts]),
    )


class StreamSource(abc.ABC):
    """An ordered (possibly unbounded) packet stream.

    Subclasses implement :meth:`segments`, yielding non-overlapping,
    time-ordered :class:`Trace` segments; consumers call :meth:`chunks`
    for fixed-size columnar chunks regardless of how the underlying
    segments are sized.
    """

    @abc.abstractmethod
    def segments(self) -> Iterator[Trace]:
        """Yield time-ordered trace segments (may never terminate)."""

    def chunks(self, chunk_size: int) -> Iterator[Trace]:
        """Re-chunk the stream into chunks of exactly ``chunk_size``
        packets (the final chunk of a finite stream may be shorter).

        Memory stays bounded by one segment plus one chunk — nothing
        upstream is ever materialized whole, which is what lets an
        infinite :class:`ScenarioSource` run forever.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        pending: list[Trace] = []
        buffered = 0
        for segment in self.segments():
            if not len(segment):
                continue
            pending.append(segment)
            buffered += len(segment)
            while buffered >= chunk_size:
                chunk, pending, buffered = _take(pending, buffered, chunk_size)
                yield chunk
        if buffered:
            chunk, pending, buffered = _take(pending, buffered, buffered)
            yield chunk


def _take(
    pending: list[Trace], buffered: int, n: int
) -> tuple[Trace, list[Trace], int]:
    """Split the first ``n`` buffered packets off as one chunk."""
    taken: list[Trace] = []
    got = 0
    while got < n:
        head = pending[0]
        need = n - got
        if len(head) <= need:
            taken.append(head)
            got += len(head)
            pending.pop(0)
        else:
            taken.append(head.slice_index(0, need))
            pending[0] = head.slice_index(need, len(head))
            got = n
    return _concat_segments(taken), pending, buffered - n


class TraceSource(StreamSource):
    """Replay an existing in-memory trace as a (finite) stream."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    def segments(self) -> Iterator[Trace]:
        if len(self.trace):
            yield self.trace

    def __repr__(self) -> str:
        return f"TraceSource({self.trace!r})"


class ScenarioSource(StreamSource):
    """An infinite synthetic stream wrapping the scenario registry.

    Each *cycle* builds the scenario once and splices it onto the end of
    the stream's continuous timeline.  When the scenario's builder accepts
    a ``seed`` parameter, cycle ``i`` is built with ``base_seed + i`` so
    the stream never repeats; scenarios without a seed knob (the
    CAIDA-like days) replay the same cycle with shifted timestamps.

    Parameters
    ----------
    spec:
        A :class:`TraceSpec` or spec string (``"zipf:skew=1.1"``); ``pcap``
        is rejected (replay a file with :class:`TraceSource` instead).
    seed:
        Base seed for the per-cycle reseeding; defaults to the spec's own
        ``seed`` parameter or the scenario's default.
    cycles:
        Stop after this many cycles; ``None`` (the default) runs forever —
        consumers bound it with ``max_packets`` or by breaking out.
    """

    def __init__(
        self,
        spec: TraceSpec | str,
        seed: int | None = None,
        cycles: int | None = None,
    ) -> None:
        if isinstance(spec, str):
            spec = TraceSpec.parse(spec)
        if spec.scenario == "pcap":
            raise TraceSpecError(
                "ScenarioSource generates synthetic scenarios; replay a "
                "pcap with TraceSource(build_trace('pcap:...'))"
            )
        if cycles is not None and cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles}")
        scenario = get_scenario(spec.scenario)  # validates the name eagerly
        self.cycles = cycles
        self._reseedable = "seed" in scenario.param_names()
        if seed is not None:
            base = seed
        elif "seed" in spec.params:
            base = int(spec.params["seed"])  # type: ignore[arg-type]
        else:
            base = int(scenario.defaults().get("seed", 0))  # type: ignore[arg-type]
        self.seed = base
        if self._reseedable and spec.params.get("seed") != base:
            # Normalise the resolved base seed back into the spec, so
            # ``spec.format()`` is a complete recipe for this stream: two
            # sources built from the same spec string (or one rebuilt from
            # a serialized fuzz-case artifact) yield identical chunks.
            spec = TraceSpec(
                spec.scenario, {**spec.params, "seed": base}
            )
        self.spec = spec
        self._repeat_cycle: Trace | None = None

    def _build_cycle(self, index: int) -> Trace:
        # Without a seed knob every cycle is identical, so build once and
        # replay (segments() shifts into fresh timestamp arrays; the other
        # columns are shared read-only) instead of regenerating the same
        # trace forever.
        if not self._reseedable:
            if self._repeat_cycle is None:
                self._repeat_cycle = self.spec.build(cache=False)
            return self._repeat_cycle
        params = dict(self.spec.params)
        params["seed"] = self.seed + index
        # cache=False: cycles are throwaway segments; do not evict the
        # sweep-memoized traces (nor hand out frozen shared columns).
        return TraceSpec(self.spec.scenario, params).build(cache=False)

    def segments(self) -> Iterator[Trace]:
        clock: float | None = None
        index = 0
        while self.cycles is None or index < self.cycles:
            segment = self._build_cycle(index)
            index += 1
            if not len(segment):
                continue
            if clock is not None:
                segment = shift_trace(segment, clock - segment.start_time)
            clock = segment.end_time + _mean_spacing(segment)
            yield segment

    def __repr__(self) -> str:
        return (
            f"ScenarioSource({self.spec.format()!r}, seed={self.seed}, "
            f"cycles={self.cycles})"
        )


class SpliceSource(StreamSource):
    """Play sources back to back on one continuous clock.

    Each upstream segment is shifted so it starts where the previous one
    ended (plus one mean inter-packet gap), which is how drift scenarios
    like calm → ddos-burst → calm are stitched.  A source that never
    terminates starves everything after it — put infinite sources last.
    """

    def __init__(self, *sources: StreamSource) -> None:
        if not sources:
            raise ValueError("splice needs at least one source")
        self.sources = sources

    def segments(self) -> Iterator[Trace]:
        clock: float | None = None
        for source in self.sources:
            for segment in source.segments():
                if not len(segment):
                    continue
                if clock is not None:
                    segment = shift_trace(segment, clock - segment.start_time)
                clock = segment.end_time + _mean_spacing(segment)
                yield segment

    def __repr__(self) -> str:
        return f"SpliceSource({', '.join(map(repr, self.sources))})"


class _Overlay:
    """One interleaved source's merge cursor: iterator + lookahead buffer."""

    __slots__ = ("it", "buffer", "offset", "done")

    def __init__(self, source: StreamSource) -> None:
        self.it = source.segments()
        self.buffer = Trace.empty()
        self.offset: float | None = None
        self.done = False

    def refill(self, origin: float | None) -> float | None:
        """Pull segments until the buffer is non-empty or the source ends.

        The first segment pins this source's shift so its first packet
        lands at the overlay ``origin`` (set by the earliest source)."""
        while not self.done and not len(self.buffer):
            segment = next(self.it, None)
            if segment is None:
                self.done = True
                break
            if not len(segment):
                continue
            if self.offset is None:
                origin = segment.start_time if origin is None else origin
                self.offset = origin - segment.start_time
            if self.offset:
                segment = shift_trace(segment, self.offset)
            self.buffer = segment
        return origin


class InterleaveSource(StreamSource):
    """Overlay sources on one shared timeline, merged by timestamp.

    Every source is re-based so its first packet coincides with the
    overlay origin, then packets are merged in time order with a
    watermark (the least buffered end-time across live sources), so the
    merge is streaming: memory stays bounded by one segment per source
    even when some sources are infinite.
    """

    def __init__(self, *sources: StreamSource) -> None:
        if not sources:
            raise ValueError("interleave needs at least one source")
        self.sources = sources

    def segments(self) -> Iterator[Trace]:
        overlays = [_Overlay(source) for source in self.sources]
        origin: float | None = None
        while True:
            for overlay in overlays:
                origin = overlay.refill(origin)
            live = [o for o in overlays if len(o.buffer)]
            if not live:
                return
            active = [o for o in live if not o.done]
            if active:
                # Only packets at or below the watermark are safe to emit:
                # an active source's future packets are all later than its
                # buffered end-time (segments are time-ordered).
                watermark = min(o.buffer.end_time for o in active)
            else:
                watermark = max(o.buffer.end_time for o in live)
            parts = []
            for overlay in live:
                j = int(
                    np.searchsorted(
                        overlay.buffer.ts, watermark, side="right"
                    )
                )
                if j:
                    parts.append(overlay.buffer.slice_index(0, j))
                    overlay.buffer = overlay.buffer.slice_index(
                        j, len(overlay.buffer)
                    )
            if parts:
                yield concat_traces(parts)  # stable re-sort merges the parts

    def __repr__(self) -> str:
        return f"InterleaveSource({', '.join(map(repr, self.sources))})"


class RateRewriteSource(StreamSource):
    """Rewrite the packet rate by compressing or stretching timestamps.

    ``speedup > 1`` packs the same packets into ``1/speedup`` of the time
    (a hotter link); ``speedup < 1`` stretches the stream out.  Packet
    contents and ordering are untouched.
    """

    def __init__(self, source: StreamSource, speedup: float) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self.source = source
        self.speedup = speedup

    def segments(self) -> Iterator[Trace]:
        origin: float | None = None
        for segment in self.source.segments():
            if not len(segment):
                continue
            if origin is None:
                origin = segment.start_time
            yield Trace(
                origin + (segment.ts - origin) / self.speedup,
                segment.src, segment.dst, segment.length,
                segment.sport, segment.dport, segment.proto,
            )

    def __repr__(self) -> str:
        return f"RateRewriteSource({self.source!r}, x{self.speedup:g})"


class SkipSource(StreamSource):
    """The same stream minus its first ``skip`` packets.

    The fast-forward used when resuming a checkpointed pipeline over the
    same deterministic source: skip exactly the packets already consumed
    and continue from there.
    """

    def __init__(self, source: StreamSource, skip: int) -> None:
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        self.source = source
        self.skip = skip

    def segments(self) -> Iterator[Trace]:
        remaining = self.skip
        for segment in self.source.segments():
            if remaining >= len(segment):
                remaining -= len(segment)
                continue
            if remaining:
                segment = segment.slice_index(remaining, len(segment))
                remaining = 0
            yield segment

    def __repr__(self) -> str:
        return f"SkipSource({self.source!r}, skip={self.skip})"


def skip_packets(source: StreamSource, skip: int) -> StreamSource:
    """The stream with its first ``skip`` packets dropped."""
    return SkipSource(source, skip) if skip else source


def splice(*sources: StreamSource) -> StreamSource:
    """Sources end to end on one continuous clock (drift scenarios)."""
    return sources[0] if len(sources) == 1 else SpliceSource(*sources)


def interleave(*sources: StreamSource) -> StreamSource:
    """Sources overlaid on one timeline, merged by timestamp."""
    return sources[0] if len(sources) == 1 else InterleaveSource(*sources)


def rate_rewrite(source: StreamSource, speedup: float) -> StreamSource:
    """The same stream with its packet rate scaled by ``speedup``."""
    return RateRewriteSource(source, speedup)


# -- string-addressable stream specs -----------------------------------------

def parse_stream_spec(text: str) -> StreamSource:
    """Parse a stream spec into a :class:`StreamSource`.

    Grammar (splice binds loosest, then interleave)::

        STREAM  := OVERLAY ('+' OVERLAY)*          # splice, end to end
        OVERLAY := ATOM ('&' ATOM)*                # interleave on one clock
        ATOM    := ['repeat:'] TRACESPEC ['@x' FACTOR]

    A plain ``TRACESPEC`` builds the trace once and replays it
    (:class:`TraceSource`); the ``repeat:`` prefix wraps it in an infinite
    :class:`ScenarioSource`; the ``@x`` suffix rewrites the packet rate.

    Scenario parameters ride inside the ``TRACESPEC``, including ``seed``
    (``repeat:zipf:seed=7``), and :class:`ScenarioSource` normalises the
    resolved seed back into its spec — so a stream spec string is a
    complete, reproducible recipe: two sources parsed from the same string
    yield identical chunks, which is what lets fuzz-case artifacts
    (:mod:`repro.fuzz`) replay deterministically from the spec alone.

    ``+`` and ``&`` are structural everywhere, so a pcap path containing
    them cannot be expressed in a stream spec — replay such a file from
    Python via ``TraceSource(build_trace("pcap:..."))`` and compose with
    :func:`splice`/:func:`interleave` directly.
    """
    text = text.strip()
    if not text:
        raise TraceSpecError("empty stream spec")
    parts = [part.strip() for part in text.split("+")]
    if any(not part for part in parts):
        raise TraceSpecError(f"empty splice part in stream spec {text!r}")
    return splice(*[_parse_overlay(part) for part in parts])


def _parse_overlay(text: str) -> StreamSource:
    atoms = [atom.strip() for atom in text.split("&")]
    if any(not atom for atom in atoms):
        raise TraceSpecError(f"empty interleave part in stream spec {text!r}")
    return interleave(*[_parse_atom(atom) for atom in atoms])


def _parse_atom(text: str) -> StreamSource:
    speedup = None
    if "@" in text:
        # Only a well-formed '@xFACTOR' tail is a rate suffix; any other
        # '@' stays part of the spec (e.g. a pcap path like 'a@b.pcap' —
        # a malformed factor on a synthetic spec still fails loudly when
        # the scenario rejects the mangled parameter).
        head, _, suffix = text.rpartition("@")
        if suffix.startswith("x"):
            try:
                speedup = float(suffix[1:])
                text = head
            except ValueError:
                pass
    if text.startswith("repeat:"):
        source: StreamSource = ScenarioSource(
            TraceSpec.parse(text.removeprefix("repeat:"))
        )
    else:
        source = TraceSource(TraceSpec.parse(text).build())
    if speedup is not None:
        source = rate_rewrite(source, speedup)
    return source
