"""Streaming runtime: chunked unbounded ingestion with online reports.

The layer between :mod:`repro.trace` and :mod:`repro.windows`: a
:class:`StreamSource` yields fixed-size columnar chunks from a finite
trace, an infinite synthetic scenario, or a composition of both
(:func:`splice` / :func:`interleave` / :func:`rate_rewrite` build drift
scenarios like calm → ddos-burst → calm); a :class:`StreamPipeline`
drives any registered detector chunk by chunk on the vectorized
``update_batch`` path and emits online :class:`Emission` reports under a
pluggable :class:`EmissionPolicy`; :mod:`repro.stream.churn` accounts for
how the reported population moves between consecutive emissions; and the
pipeline checkpoint (built on :mod:`repro.core.checkpoint`) snapshots
everything mid-stream for bit-identical resume.

See ``ROADMAP.md`` ("Architecture") for how the stream layer slots into
the stack, and the ``stream-replay`` experiment / ``repro-hhh stream``
CLI for the drivers.
"""

from repro.stream.churn import (
    ChurnStats,
    churn_series,
    emission_rows,
    report_churn,
)
from repro.stream.emission import (
    Emission,
    EmissionPolicy,
    EveryNPackets,
    EveryTraceSeconds,
    WindowAligned,
    parse_emission_policy,
)
from repro.stream.pipeline import (
    STREAM_CHECKPOINT_SCHEMA,
    StreamPipeline,
    build_stream_detector,
)
from repro.stream.serve import ServeRuntime
from repro.stream.source import (
    InterleaveSource,
    RateRewriteSource,
    ScenarioSource,
    SkipSource,
    SpliceSource,
    StreamSource,
    TraceSource,
    interleave,
    parse_stream_spec,
    rate_rewrite,
    skip_packets,
    splice,
)

__all__ = [
    "ChurnStats",
    "Emission",
    "EmissionPolicy",
    "EveryNPackets",
    "EveryTraceSeconds",
    "InterleaveSource",
    "RateRewriteSource",
    "STREAM_CHECKPOINT_SCHEMA",
    "ScenarioSource",
    "ServeRuntime",
    "SkipSource",
    "SpliceSource",
    "StreamPipeline",
    "StreamSource",
    "TraceSource",
    "WindowAligned",
    "build_stream_detector",
    "churn_series",
    "emission_rows",
    "interleave",
    "parse_emission_policy",
    "parse_stream_spec",
    "rate_rewrite",
    "report_churn",
    "skip_packets",
    "splice",
]
