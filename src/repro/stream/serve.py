"""Multi-tenant streaming serve runtime over one persistent shard pool.

:class:`ServeRuntime` is the deployment shape of ROADMAP's "millions of
users" item: one :class:`repro.engine.ServePool` (N persistent worker
processes, each owning its logical shards for the life of the run) serves
*many* concurrent tenant streams.  Each tenant is an ordinary
:class:`repro.stream.StreamPipeline` whose detector happens to be a
:class:`repro.engine.ServeDetector` handle — the pipeline code is
untouched, which is what keeps serve emissions observationally equivalent
to the serial path (bit-identical, enforced by
``tests/stream/test_serve.py``).

Equivalence hinges on one transport invariant the runtime maintains: the
pool's slot capacity equals the tenant chunk size, so every pipeline
sub-slice ships as exactly *one* shared-memory slot write and therefore
reaches each shard detector as exactly one ``update_batch`` call — the
same batch boundaries the serial sharded engine produces.  (Vectorized
detectors aggregate per batch, so different boundaries would reorder
candidate admission even when final counts agree.)

Tenants advance round-robin, one chunk per turn, so a hot tenant cannot
starve the others, and the pool pipelines throughout: while workers fold
tenant A's chunk, the main process is already partitioning tenant B's.
A tenant failure (:class:`repro.engine.TenantError`) retires that tenant
— recorded in :attr:`ServeRuntime.failed`, its shard detectors dropped —
without killing workers or sibling tenants.

Checkpoints are the migration unit: :meth:`ServeRuntime.checkpoint_tenant`
emits the standard ``repro-hhh/stream-checkpoint/v1`` artifact, so a
tenant frozen here resumes bit-identically on another pool (any worker
count, same shard count), under the serial pipeline, or back here via
``add_tenant(..., resume=ckpt, fast_forward=True)``.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.detector import Detector
from repro.core.registry import get_enumerable_spec
from repro.engine.serve import ServeError, ServePool, TenantError
from repro.stream.emission import Emission, parse_emission_policy
from repro.stream.pipeline import StreamPipeline
from repro.stream.source import StreamSource, parse_stream_spec, skip_packets


class _TenantRun:
    """One tenant's live streaming state inside the runtime."""

    __slots__ = ("name", "pipeline", "chunks", "remaining", "done")

    def __init__(
        self,
        name: str,
        pipeline: StreamPipeline,
        chunks: Iterator,
        remaining: int | None,
    ) -> None:
        self.name = name
        self.pipeline = pipeline
        self.chunks = chunks
        self.remaining = remaining
        self.done = False


class ServeRuntime:
    """Drive many tenant streams over one persistent shard-worker pool.

    Parameters
    ----------
    workers, shards, slots:
        Pool shape (see :class:`repro.engine.ServePool`); ``shards``
        defaults to ``workers``.  Ignored when ``pool`` is injected.
    chunk_size:
        Packets per stream chunk, and the pool's slot capacity — the two
        are deliberately one knob (see the module docstring).
    pool:
        An existing pool to multiplex onto instead of owning one; the
        caller keeps responsibility for closing it.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        shards: int | None = None,
        chunk_size: int = 8192,
        slots: int = 4,
        pool: ServePool | None = None,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if pool is not None and pool.chunk_capacity < chunk_size:
            raise ServeError(
                f"injected pool slots hold {pool.chunk_capacity} packets; "
                f"chunk_size {chunk_size} would split chunks and change "
                "batch boundaries vs the serial pipeline"
            )
        self.chunk_size = chunk_size
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ServePool(
            workers, shards, chunk_capacity=chunk_size, slots=slots
        )
        self._tenants: dict[str, _TenantRun] = {}
        #: Tenant failures observed so far: name -> error message.
        self.failed: dict[str, str] = {}
        self._closed = False

    # -- tenant lifecycle --------------------------------------------------

    def add_tenant(
        self,
        name: str,
        detector: str | Callable[[], Detector],
        source: str | StreamSource,
        *,
        emit: str = "2s",
        phi: float = 0.02,
        key: str = "src",
        timestamped: bool | None = None,
        reset_on_emit: bool = True,
        emit_partial: bool = True,
        max_packets: int | None = None,
        resume: dict[str, object] | None = None,
        fast_forward: bool = False,
    ) -> StreamPipeline:
        """Register one tenant stream; returns its pipeline.

        ``detector`` is a registry name (must be enumerable) or a picklable
        detector factory; ``source`` is a stream spec string or a
        :class:`StreamSource`.  ``resume`` restores a prior
        ``repro-hhh/stream-checkpoint/v1`` artifact before any packet
        flows, and ``fast_forward`` additionally skips the packets that
        artifact already consumed (for deterministic sources replayed from
        the start).  ``max_packets`` bounds this tenant; with ``resume`` it
        counts the checkpointed packets as already consumed.
        """
        self._check_open()
        if name in self._tenants:
            raise ServeError(f"tenant {name!r} already registered")
        if isinstance(detector, str):
            spec = get_enumerable_spec(detector, ServeError)
            factory: Callable[[], Detector] = spec.factory
            if timestamped is None:
                timestamped = spec.timestamped
        else:
            factory = detector
            if timestamped is None:
                timestamped = False
        if isinstance(source, str):
            source = parse_stream_spec(source)
        handle = self.pool.open_tenant(name, factory)
        try:
            pipeline = StreamPipeline(
                handle,
                parse_emission_policy(emit),
                phi=phi,
                key=key,
                timestamped=timestamped,
                reset_on_emit=reset_on_emit,
                emit_partial=emit_partial,
            )
            if resume is not None:
                pipeline.restore(resume)
                if fast_forward:
                    source = skip_packets(source, pipeline.packets)
            remaining = None
            if max_packets is not None:
                if max_packets < 1:
                    raise ValueError(
                        f"max_packets must be >= 1, got {max_packets}"
                    )
                remaining = max_packets - pipeline.packets
                if remaining <= 0:
                    raise ValueError(
                        f"tenant {name!r} resumes at packet "
                        f"{pipeline.packets}, at or past max_packets "
                        f"{max_packets}"
                    )
        except BaseException:
            self.pool.close_tenant(name)
            raise
        run = _TenantRun(name, pipeline, source.chunks(self.chunk_size),
                         remaining)
        self._tenants[name] = run
        return pipeline

    def pipeline(self, name: str) -> StreamPipeline:
        """The named tenant's pipeline (live or finished, not failed)."""
        return self._tenants[name].pipeline

    @property
    def tenants(self) -> tuple[str, ...]:
        """Registered tenant names in registration order."""
        return tuple(self._tenants)

    def checkpoint_tenant(self, name: str) -> dict[str, object]:
        """Freeze one tenant into a stream-checkpoint migration artifact."""
        return self._tenants[name].pipeline.checkpoint()

    # -- the run loop ------------------------------------------------------

    def run(self) -> Iterator[tuple[str, Emission]]:
        """Advance all tenants round-robin, yielding emissions online.

        Each turn feeds one chunk to one tenant, so concurrent streams
        interleave fairly while the pool overlaps their partition and
        update stages.  Yields ``(tenant_name, emission)`` as boundaries
        fall; returns when every tenant is finished or failed.
        """
        self._check_open()
        while True:
            live = [
                run for run in self._tenants.values() if not run.done
            ]
            if not live:
                break
            for run in live:
                yield from self._step(run)
                self._sweep_deferred()
        self.pool.barrier()
        self._sweep_deferred()

    def _step(self, run: _TenantRun) -> Iterator[tuple[str, Emission]]:
        """Feed one chunk to one tenant, retiring it on error or EOS."""
        try:
            chunk = next(run.chunks, None)
            if chunk is not None and run.remaining is not None:
                if len(chunk) > run.remaining:
                    chunk = chunk.slice_index(0, run.remaining)
                run.remaining -= len(chunk)
            if chunk is None or not len(chunk):
                for emission in run.pipeline.finish():
                    yield run.name, emission
                run.done = True
                return
            for emission in run.pipeline.push(chunk):
                yield run.name, emission
            if run.remaining is not None and run.remaining <= 0:
                for emission in run.pipeline.finish():
                    yield run.name, emission
                run.done = True
        except TenantError as exc:
            self._fail(run.name, str(exc))

    def _sweep_deferred(self) -> None:
        """Retire tenants whose *asynchronous* updates failed.

        Async failures surface out of band (the pool defers them to the
        next sync point); sweeping after every step pins each one to its
        tenant before another tenant's turn can observe it.
        """
        for tenant, message in self.pool.take_tenant_errors():
            self._fail(str(tenant), message)

    def _fail(self, name: str, message: str) -> None:
        self.failed.setdefault(name, message)
        run = self._tenants.get(name)
        if run is not None:
            run.done = True
        try:
            self.pool.close_tenant(name)
        except (ServeError, TenantError):  # pragma: no cover - double fault
            pass

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("serve runtime is closed")

    def close(self) -> None:
        """Release the pool (if owned) or just this runtime's tenants."""
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()
        else:
            for name in list(self._tenants):
                if name not in self.failed:
                    try:
                        self.pool.close_tenant(name)
                    except (ServeError, TenantError):  # pragma: no cover
                        pass

    def __enter__(self) -> "ServeRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServeRuntime(pool={self.pool!r}, "
            f"chunk_size={self.chunk_size}, "
            f"tenants={list(self._tenants)}, failed={list(self.failed)})"
        )
