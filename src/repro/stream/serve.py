"""Multi-tenant streaming serve runtime over one persistent shard pool.

:class:`ServeRuntime` is the deployment shape of ROADMAP's "millions of
users" item: one :class:`repro.engine.ServePool` (N persistent worker
processes, each owning its logical shards for the life of the run) serves
*many* concurrent tenant streams.  Each tenant is an ordinary
:class:`repro.stream.StreamPipeline` whose detector happens to be a
:class:`repro.engine.ServeDetector` handle — the pipeline code is
untouched, which is what keeps serve emissions observationally equivalent
to the serial path (bit-identical, enforced by
``tests/stream/test_serve.py``).

Equivalence hinges on one transport invariant the runtime maintains: the
pool's slot capacity equals the tenant chunk size, so every pipeline
sub-slice ships as exactly *one* shared-memory slot write and therefore
reaches each shard detector as exactly one ``update_batch`` call — the
same batch boundaries the serial sharded engine produces.  (Vectorized
detectors aggregate per batch, so different boundaries would reorder
candidate admission even when final counts agree.)

Tenants advance round-robin, one chunk per turn, so a hot tenant cannot
starve the others, and the pool pipelines throughout: while workers fold
tenant A's chunk, the main process is already partitioning tenant B's.
A tenant failure (:class:`repro.engine.TenantError`) retires that tenant
— recorded in :attr:`ServeRuntime.failed`, its shard detectors dropped —
without killing workers or sibling tenants.

The runtime is churn-tolerant and supervised:

* **Live admission/retirement** — :meth:`ServeRuntime.add_tenant` and
  :meth:`ServeRuntime.retire_tenant` are legal while :meth:`run` is
  iterating; the round-robin scheduler picks new tenants up (and drops
  retired ones) at turn boundaries, and every yield point leaves all
  pipelines at a chunk boundary, so mid-run checkpoints stay on the
  serial batch grid.

* **Worker crash recovery** — a dead worker process surfaces as
  :class:`repro.engine.serve.WorkerCrashError`; with ``recover=True``
  (the default) the runtime respawns it and rebuilds each tenant from
  its last auto-checkpoint (``add_tenant(..., checkpoint_every=N)``
  checkpoints every N emissions), replaying the packets since the
  checkpoint from the deterministic source.  Already-delivered emissions
  are suppressed during replay, so the emission stream the consumer sees
  is bit-identical to an uninterrupted run.  Tenants with no recoverable
  checkpoint are retired into :attr:`failed` instead of killing the
  pool.  With an *injected* pool shared by several runtimes, recovery
  only rebuilds this runtime's tenants.

* **Rebalance** — :meth:`rebalance` checkpoints a tenant, retires it
  here, and resumes it on a new worker layout (same or another runtime
  with equal shard count) bit-identically, without stopping siblings.

Checkpoints are the migration unit: :meth:`ServeRuntime.checkpoint_tenant`
emits the standard ``repro-hhh/stream-checkpoint/v1`` artifact, so a
tenant frozen here resumes bit-identically on another pool (any worker
count, same shard count), under the serial pipeline, or back here via
``add_tenant(..., resume=ckpt, fast_forward=True)``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterator

from repro.core.detector import Detector
from repro.core.registry import get_enumerable_spec
from repro.engine.serve import (
    ServeError,
    ServePool,
    TenantError,
    WorkerCrashError,
)
from repro.stream.emission import Emission, parse_emission_policy
from repro.stream.pipeline import StreamPipeline
from repro.stream.source import StreamSource, parse_stream_spec, skip_packets


class _TenantRun:
    """One tenant's live streaming state inside the runtime."""

    __slots__ = (
        "name", "pipeline", "chunks", "remaining", "done",
        # crash recovery: the source feeding the pipeline since admission,
        # the packet count at admission (the source's position 0), the
        # checkpoint cadence (emissions), and the last checkpoint taken.
        "source", "base_packets", "checkpoint_every", "ckpt",
        "ckpt_emissions",
        # delivered-emission high-water mark (replay suppression).
        "yielded",
        # the add_tenant settings, for rebalance re-admission.
        "settings",
    )

    def __init__(
        self,
        name: str,
        pipeline: StreamPipeline,
        source: StreamSource,
        chunks: Iterator,
        remaining: int | None,
        checkpoint_every: int | None,
        settings: dict[str, object],
    ) -> None:
        self.name = name
        self.pipeline = pipeline
        self.source = source
        self.chunks = chunks
        self.remaining = remaining
        self.done = False
        self.base_packets = pipeline.packets
        self.checkpoint_every = checkpoint_every
        self.ckpt: dict[str, object] | None = None
        self.ckpt_emissions = pipeline.emissions
        self.yielded = pipeline.emissions
        self.settings = settings


class ServeRuntime:
    """Drive many tenant streams over one persistent shard-worker pool.

    Parameters
    ----------
    workers, shards, slots:
        Pool shape (see :class:`repro.engine.ServePool`); ``shards``
        defaults to ``workers``.  Ignored when ``pool`` is injected.
    chunk_size:
        Packets per stream chunk, and the pool's slot capacity — the two
        are deliberately one knob (see the module docstring).
    pool:
        An existing pool to multiplex onto instead of owning one; the
        caller keeps responsibility for closing it.
    recover:
        Supervise worker crashes (the default): respawn dead workers and
        rebuild tenants from their last ``checkpoint_every`` checkpoint,
        failing only the tenants that have none.  With ``recover=False``
        a crash propagates as :class:`WorkerCrashError` out of ``run()``.

    Attributes
    ----------
    on_turn:
        Optional hook called as ``on_turn(turn)`` after every scheduler
        turn (a monotonically increasing count across all tenants).  The
        runtime is at a chunk boundary when it fires, so the hook may
        admit/retire/rebalance tenants — or inject crashes, which is how
        the tests and the fuzz harness drive deterministic churn.
    recoveries:
        One record per completed crash recovery:
        ``{"workers": (...), "failed": (...), "seconds": float}``
        (respawn + state-restore time; the replay that follows runs at
        normal streaming speed inside ``run()``).
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        shards: int | None = None,
        chunk_size: int = 8192,
        slots: int = 4,
        pool: ServePool | None = None,
        recover: bool = True,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if pool is not None and pool.chunk_capacity < chunk_size:
            raise ServeError(
                f"injected pool slots hold {pool.chunk_capacity} packets; "
                f"chunk_size {chunk_size} would split chunks and change "
                "batch boundaries vs the serial pipeline"
            )
        self.chunk_size = chunk_size
        self._owns_pool = pool is None
        self.pool = pool if pool is not None else ServePool(
            workers, shards, chunk_capacity=chunk_size, slots=slots
        )
        self.recover = recover
        self._tenants: dict[str, _TenantRun] = {}
        #: Tenant failures observed so far: name -> error message.
        self.failed: dict[str, str] = {}
        self.on_turn: Callable[[int], None] | None = None
        self.recoveries: list[dict[str, object]] = []
        self._turns = 0
        self._closed = False

    # -- tenant lifecycle --------------------------------------------------

    def add_tenant(
        self,
        name: str,
        detector: str | Callable[[], Detector],
        source: str | StreamSource,
        *,
        emit: str = "2s",
        phi: float = 0.02,
        key: str = "src",
        timestamped: bool | None = None,
        reset_on_emit: bool = True,
        emit_partial: bool = True,
        max_packets: int | None = None,
        resume: dict[str, object] | None = None,
        fast_forward: bool = False,
        checkpoint_every: int | None = None,
    ) -> StreamPipeline:
        """Register one tenant stream; returns its pipeline.

        ``detector`` is a registry name (must be enumerable) or a picklable
        detector factory; ``source`` is a stream spec string or a
        :class:`StreamSource`.  ``resume`` restores a prior
        ``repro-hhh/stream-checkpoint/v1`` artifact before any packet
        flows, and ``fast_forward`` additionally skips the packets that
        artifact already consumed (for deterministic sources replayed from
        the start).  ``max_packets`` bounds this tenant; with ``resume`` it
        counts the checkpointed packets as already consumed.

        ``checkpoint_every=N`` auto-checkpoints the tenant every ``N``
        emissions (and once at admission), which is what makes it
        recoverable after a worker crash; without it a crash retires the
        tenant into :attr:`failed`.

        Legal while :meth:`run` is iterating: the scheduler picks the new
        tenant up at the next turn boundary.
        """
        self._check_open()
        if name in self._tenants:
            raise ServeError(f"tenant {name!r} already registered")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if isinstance(detector, str):
            spec = get_enumerable_spec(detector, ServeError)
            factory: Callable[[], Detector] = spec.factory
            if timestamped is None:
                timestamped = spec.timestamped
        else:
            factory = detector
            if timestamped is None:
                timestamped = False
        if isinstance(source, str):
            source = parse_stream_spec(source)
        handle = self.pool.open_tenant(name, factory)
        try:
            pipeline = StreamPipeline(
                handle,
                parse_emission_policy(emit),
                phi=phi,
                key=key,
                timestamped=timestamped,
                reset_on_emit=reset_on_emit,
                emit_partial=emit_partial,
            )
            if resume is not None:
                pipeline.restore(resume)
                if fast_forward:
                    source = skip_packets(source, pipeline.packets)
            remaining = None
            if max_packets is not None:
                if max_packets < 1:
                    raise ValueError(
                        f"max_packets must be >= 1, got {max_packets}"
                    )
                remaining = max_packets - pipeline.packets
                if remaining <= 0:
                    raise ValueError(
                        f"tenant {name!r} resumes at packet "
                        f"{pipeline.packets}, at or past max_packets "
                        f"{max_packets}"
                    )
            settings = {
                "detector": detector,
                "emit": emit,
                "phi": phi,
                "key": key,
                "timestamped": timestamped,
                "reset_on_emit": reset_on_emit,
                "emit_partial": emit_partial,
                "max_packets": max_packets,
                "checkpoint_every": checkpoint_every,
            }
            run = _TenantRun(
                name, pipeline, source, source.chunks(self.chunk_size),
                remaining, checkpoint_every, settings,
            )
            if checkpoint_every is not None:
                # Admission-time checkpoint: the tenant is recoverable
                # from its very first turn, not only after N emissions.
                run.ckpt = pipeline.checkpoint()
                run.ckpt_emissions = pipeline.emissions
        except BaseException:
            self.pool.close_tenant(name)
            raise
        self._tenants[name] = run
        return pipeline

    def retire_tenant(
        self, name: str, *, checkpoint: bool = True
    ) -> dict[str, object] | None:
        """Drop one tenant now (legal mid-``run``); siblings are untouched.

        Returns the tenant's final ``repro-hhh/stream-checkpoint/v1``
        artifact (its migration unit — resume it anywhere) unless
        ``checkpoint=False``.  The name becomes free for re-admission.
        """
        self._check_open()
        run = self._tenants.get(name)
        if run is None:
            raise ServeError(f"unknown tenant {name!r}")
        if name in self.failed:
            raise ServeError(
                f"tenant {name!r} failed: {self.failed[name]}"
            )
        artifact = run.pipeline.checkpoint() if checkpoint else None
        run.done = True
        del self._tenants[name]
        self.pool.close_tenant(name)
        return artifact

    def rebalance(
        self, name: str, target: "ServeRuntime | None" = None
    ) -> StreamPipeline:
        """Move one live tenant to a new shard/worker layout, bit-exactly.

        Checkpoints the tenant, retires it here, and re-admits it on
        ``target`` (default: this runtime, e.g. after its pool gained
        respawned workers) with the same settings, resuming from the
        checkpoint.  Siblings keep streaming; the moved tenant continues
        bit-identically when the target's shard count and chunk size
        match this runtime's (the checkpoint pins the shard count; the
        chunk grid pins batch boundaries).
        """
        self._check_open()
        target = self if target is None else target
        run = self._tenants.get(name)
        if run is None:
            raise ServeError(f"unknown tenant {name!r}")
        if name in self.failed:
            raise ServeError(
                f"tenant {name!r} failed: {self.failed[name]}"
            )
        target._check_open()
        if target.pool.num_shards != self.pool.num_shards:
            raise ServeError(
                f"rebalance target serves {target.pool.num_shards} shards; "
                f"tenant {name!r} is checkpointed at "
                f"{self.pool.num_shards} (the shard count is the "
                "checkpoint-compatibility unit)"
            )
        if target is not self and name in target._tenants:
            raise ServeError(
                f"tenant {name!r} already registered on the target runtime"
            )
        settings = dict(run.settings)
        consumed = run.pipeline.packets - run.base_packets
        feed = skip_packets(run.source, consumed)
        artifact = self.retire_tenant(name, checkpoint=True)
        return target.add_tenant(
            name,
            settings["detector"],  # type: ignore[arg-type]
            feed,
            emit=settings["emit"],  # type: ignore[arg-type]
            phi=settings["phi"],  # type: ignore[arg-type]
            key=settings["key"],  # type: ignore[arg-type]
            timestamped=settings["timestamped"],  # type: ignore[arg-type]
            reset_on_emit=settings["reset_on_emit"],  # type: ignore[arg-type]
            emit_partial=settings["emit_partial"],  # type: ignore[arg-type]
            max_packets=settings["max_packets"],  # type: ignore[arg-type]
            resume=artifact,
            checkpoint_every=settings["checkpoint_every"],  # type: ignore[arg-type]
        )

    def pipeline(self, name: str) -> StreamPipeline:
        """The named tenant's pipeline (live or finished — not failed)."""
        if name in self.failed:
            raise ServeError(
                f"tenant {name!r} failed: {self.failed[name]}"
            )
        try:
            return self._tenants[name].pipeline
        except KeyError:
            raise ServeError(f"unknown tenant {name!r}") from None

    @property
    def tenants(self) -> tuple[str, ...]:
        """Registered tenant names in registration order."""
        return tuple(self._tenants)

    def checkpoint_tenant(self, name: str) -> dict[str, object]:
        """Freeze one tenant into a stream-checkpoint migration artifact."""
        return self.pipeline(name).checkpoint()

    # -- the run loop ------------------------------------------------------

    def run(self) -> Iterator[tuple[str, Emission]]:
        """Advance all tenants round-robin, yielding emissions online.

        Each turn feeds one chunk to one tenant, so concurrent streams
        interleave fairly while the pool overlaps their partition and
        update stages.  Yields ``(tenant_name, emission)`` as boundaries
        fall; returns when every tenant is finished or failed.  Every
        yield point leaves all pipelines at a chunk boundary, so the
        consumer may admit, retire, or rebalance tenants between
        emissions.  Worker crashes are recovered in place when
        ``recover`` is set (see the class docstring).
        """
        self._check_open()
        while True:
            live = [
                run for run in self._tenants.values() if not run.done
            ]
            if not live:
                # Final barrier: flush outstanding acks (which may be the
                # first observation of a crash) before declaring done.
                try:
                    self.pool.barrier()
                except WorkerCrashError as exc:
                    self._handle_crash(exc)
                    continue
                self._sweep_deferred()
                if any(
                    not run.done for run in self._tenants.values()
                ):
                    continue  # recovery rewound someone; keep going
                return
            for run in live:
                if run.done:
                    continue  # retired/failed mid-round by the consumer
                out: list[tuple[str, Emission]] = []
                try:
                    self._step(run, out)
                except WorkerCrashError as exc:
                    self._handle_crash(exc)
                self._turns += 1
                if self.on_turn is not None:
                    self.on_turn(self._turns)
                # Emissions collected before a crash came from completed
                # sync queries, so they are valid and delivered; replay
                # suppression keeps them exactly-once.
                yield from out
                self._sweep_deferred()

    def _step(
        self, run: _TenantRun, out: list[tuple[str, Emission]]
    ) -> None:
        """Feed one chunk to one tenant, retiring it on error or EOS."""
        try:
            chunk = next(run.chunks, None)
            while chunk is not None and not len(chunk):
                # A composed source may legally yield a zero-length chunk
                # (e.g. at a splice boundary); only None is end-of-stream.
                chunk = next(run.chunks, None)
            if chunk is None:
                self._finish_run(run, out)
                return
            if run.remaining is not None:
                if len(chunk) > run.remaining:
                    chunk = chunk.slice_index(0, run.remaining)
                run.remaining -= len(chunk)
            for emission in run.pipeline.push(chunk):
                self._collect(run, emission, out)
            if run.remaining is not None and run.remaining <= 0:
                self._finish_run(run, out)
            elif (
                run.checkpoint_every is not None
                and run.pipeline.emissions - run.ckpt_emissions
                >= run.checkpoint_every
            ):
                run.ckpt = run.pipeline.checkpoint()
                run.ckpt_emissions = run.pipeline.emissions
        except TenantError as exc:
            self._fail(run.name, str(exc))

    def _finish_run(
        self, run: _TenantRun, out: list[tuple[str, Emission]]
    ) -> None:
        for emission in run.pipeline.finish():
            self._collect(run, emission, out)
        run.done = True

    def _collect(
        self,
        run: _TenantRun,
        emission: Emission,
        out: list[tuple[str, Emission]],
    ) -> None:
        if emission.index < run.yielded:
            return  # crash-recovery replay of an already-delivered emission
        run.yielded = emission.index + 1
        out.append((run.name, emission))

    # -- crash recovery ----------------------------------------------------

    def _handle_crash(self, exc: WorkerCrashError) -> None:
        """Respawn dead workers and rewind tenants to their checkpoints.

        Tenants with an auto-checkpoint are restored from it and their
        chunk iterators rebuilt from the deterministic source at the
        checkpoint offset; the scheduler then replays the gap (emissions
        already delivered are suppressed).  Tenants without one retire
        into :attr:`failed`.  Retries if another worker dies mid-recovery.
        """
        if not self.recover:
            raise exc
        started = perf_counter()
        revived: tuple[int, ...] = ()
        newly_failed: list[str] = []
        for _ in range(self.pool.num_workers + 2):
            try:
                revived = tuple(
                    sorted(set(revived) | set(self.pool.respawn_dead()))
                )
                for run in list(self._tenants.values()):
                    if run.name in self.failed:
                        continue
                    if run.ckpt is None:
                        newly_failed.append(run.name)
                        self._fail(
                            run.name,
                            f"worker crash ({exc}) with no recoverable "
                            "checkpoint; admit with checkpoint_every=N "
                            "to survive crashes",
                        )
                        continue
                    try:
                        self._restore_run(run)
                    except TenantError as err:
                        newly_failed.append(run.name)
                        self._fail(run.name, str(err))
                break
            except WorkerCrashError as again:
                exc = again
        else:  # pragma: no cover - workers dying faster than respawns
            raise exc
        self.recoveries.append({
            "workers": revived,
            "failed": tuple(newly_failed),
            "seconds": perf_counter() - started,
        })

    def _restore_run(self, run: _TenantRun) -> None:
        """Rewind one tenant to its last checkpoint and re-aim its source."""
        run.pipeline.restore(run.ckpt)
        run.chunks = skip_packets(
            run.source, run.pipeline.packets - run.base_packets
        ).chunks(self.chunk_size)
        max_packets = run.settings["max_packets"]
        run.remaining = (
            None if max_packets is None
            else max_packets - run.pipeline.packets  # type: ignore[operator]
        )
        # Replay even previously-finished tenants: their emissions are
        # all suppressed, but the final detector/pipeline state must be
        # rebuilt for post-run checkpoints and queries.
        run.done = False

    def _sweep_deferred(self) -> None:
        """Retire tenants whose *asynchronous* updates failed.

        Async failures surface out of band (the pool defers them to the
        next sync point); sweeping after every step pins each one to its
        tenant before another tenant's turn can observe it.
        """
        for tenant, message in self.pool.take_tenant_errors():
            self._fail(str(tenant), message)

    def _fail(self, name: str, message: str) -> None:
        self.failed.setdefault(name, message)
        run = self._tenants.get(name)
        if run is not None:
            run.done = True
        try:
            self.pool.close_tenant(name)
        except (ServeError, TenantError):  # pragma: no cover - double fault
            pass

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServeError("serve runtime is closed")

    def close(self) -> None:
        """Release the pool (if owned) or just this runtime's tenants."""
        if self._closed:
            return
        self._closed = True
        if self._owns_pool:
            self.pool.close()
        else:
            for name in list(self._tenants):
                if name not in self.failed:
                    try:
                        self.pool.close_tenant(name)
                    except (ServeError, TenantError):  # pragma: no cover
                        pass

    def __enter__(self) -> "ServeRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServeRuntime(pool={self.pool!r}, "
            f"chunk_size={self.chunk_size}, "
            f"tenants={list(self._tenants)}, failed={list(self.failed)})"
        )
