"""Online report emission: the *when to report* policy and its record.

Offline experiments query a detector at end-of-run; a streaming deployment
must emit heavy-hitter reports *online*, while the stream keeps flowing.
An :class:`EmissionPolicy` decides where the emission boundaries fall —
expressed as cut positions inside each arriving chunk, so a boundary can
land mid-chunk and the pipeline still honours it exactly:

- :class:`EveryNPackets` — a report every N packets of stream;
- :class:`EveryTraceSeconds` — a report every T seconds of *trace time*
  (edges accumulate from the first packet, exactly like the windowed
  driver's schedule);
- :class:`WindowAligned` — trace-time emission whose edges come from the
  shared accumulating-edge schedule in :mod:`repro.windows.schedule`, so
  emissions are bit-aligned with ``WindowedDetectorDriver`` windows of the
  same size.

Policies are stateful (a pending edge, a packet countdown) and expose
``state_dict``/``load_state_dict`` so a stream checkpoint can freeze and
resume them mid-stream.

An :class:`Emission` is the pipeline's output record: the report plus the
chunk/packet/byte offsets it covers and the wall-clock spent ingesting its
interval.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.windows.schedule import Window, edge_iter

#: One emission boundary inside a chunk: ``(position, edge)``.  ``position``
#: is the number of leading chunk packets that belong to the closing
#: interval; ``edge`` is the trace-time right edge for time-based policies
#: (``None`` for packet-count policies, whose interval ends at its last
#: packet).
Cut = tuple[int, "float | None"]


@dataclass(frozen=True)
class Emission:
    """One online report with the stream offsets it covers."""

    index: int                      #: emission sequence number
    window: Window                  #: trace-time interval [t0, t1) covered
    report: dict[int, float]        #: keys at or above the interval threshold
    packets: int                    #: packets in the interval
    bytes: int                      #: bytes in the interval
    start_packet: int               #: stream offset of the first packet
    end_packet: int                 #: stream offset past the last packet
    chunk_index: int                #: chunk during which the emission fired
    wall_s: float                   #: update wall-clock spent in the interval
    partial: bool = False           #: end-of-stream flush, not a policy cut

    @property
    def pps(self) -> float:
        """Ingest throughput over the interval (packets/second)."""
        return self.packets / self.wall_s if self.wall_s > 0 else 0.0


class EmissionPolicy(abc.ABC):
    """Decides where emission boundaries fall in the arriving stream."""

    def start(self, first_ts: float) -> None:
        """Anchor the policy at the stream's first packet timestamp."""

    @abc.abstractmethod
    def cuts(self, ts: np.ndarray) -> list[Cut]:
        """Emission boundaries inside a chunk with timestamps ``ts``.

        Returns ascending :data:`Cut` positions in ``0..len(ts)``; consuming
        a chunk advances the policy's internal state, so each chunk must be
        offered exactly once.  A position of 0 closes an interval that ended
        before this chunk's first packet (an empty trace-time window).
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """The ``--emit-every`` spelling that rebuilds this policy."""

    def state_dict(self) -> dict[str, object]:
        """Checkpointable policy state (mirrors the public constructor)."""
        return {}

    def load_state_dict(self, state: dict[str, object]) -> None:
        """Restore :meth:`state_dict` output in place."""


class EveryNPackets(EmissionPolicy):
    """Emit after every ``n`` packets of stream."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"emission interval must be >= 1 packet, got {n}")
        self.n = n
        self._countdown = n

    def cuts(self, ts: np.ndarray) -> list[Cut]:
        out: list[Cut] = []
        position = self._countdown
        while position <= len(ts):
            out.append((position, None))
            position += self.n
        self._countdown = position - len(ts)
        return out

    def describe(self) -> str:
        return f"{self.n}p"

    def state_dict(self) -> dict[str, object]:
        return {"countdown": self._countdown}

    def load_state_dict(self, state: dict[str, object]) -> None:
        self._countdown = int(state["countdown"])  # type: ignore[arg-type]


class EveryTraceSeconds(EmissionPolicy):
    """Emit every ``every_s`` seconds of trace time.

    Edges accumulate from the first packet's timestamp (``edge += every_s``),
    and an interval closes as soon as a packet at or past its edge shows up
    — the streaming analogue of the windowed driver's "complete once the
    trace extends to the right edge".
    """

    def __init__(self, every_s: float) -> None:
        if every_s <= 0:
            raise ValueError(
                f"emission interval must be positive, got {every_s}"
            )
        self.every_s = every_s
        self._next_edge: float | None = None

    def start(self, first_ts: float) -> None:
        if self._next_edge is None:
            self._next_edge = first_ts + self.every_s

    def cuts(self, ts: np.ndarray) -> list[Cut]:
        if self._next_edge is None:
            raise RuntimeError("policy not started; call start(first_ts)")
        out: list[Cut] = []
        while True:
            position = int(
                np.searchsorted(ts, self._next_edge, side="left")
            )
            if position >= len(ts):
                return out  # edge beyond this chunk; wait for more stream
            out.append((position, self._next_edge))
            self._next_edge += self.every_s

    def describe(self) -> str:
        return f"{self.every_s:g}s"

    def state_dict(self) -> dict[str, object]:
        return {"next_edge": self._next_edge}

    def load_state_dict(self, state: dict[str, object]) -> None:
        edge = state["next_edge"]
        self._next_edge = None if edge is None else float(edge)  # type: ignore[arg-type]


class WindowAligned(EveryTraceSeconds):
    """Trace-time emission bit-aligned with the windowed driver's schedule.

    Edges are drawn from :func:`repro.windows.schedule.edge_iter` — the
    same accumulating schedule ``WindowedDetectorDriver`` slices windows
    from — so an emission's ``window`` is the exact disjoint window a
    driver with ``window_size=every_s`` would have reported.  Checkpoint
    state is ``(start, emitted count)``; restore replays the accumulation,
    reproducing the identical float edge sequence.
    """

    def __init__(self, window_size: float) -> None:
        super().__init__(window_size)
        self._start: float | None = None
        self._emitted = 0

    def start(self, first_ts: float) -> None:
        if self._start is None:
            self._start = first_ts
            self._edges = edge_iter(first_ts, self.every_s)
            self._next_edge = next(self._edges)

    def cuts(self, ts: np.ndarray) -> list[Cut]:
        if self._next_edge is None:
            raise RuntimeError("policy not started; call start(first_ts)")
        out: list[Cut] = []
        while True:
            position = int(
                np.searchsorted(ts, self._next_edge, side="left")
            )
            if position >= len(ts):
                return out
            out.append((position, self._next_edge))
            self._emitted += 1
            self._next_edge = next(self._edges)

    def describe(self) -> str:
        return f"window:{self.every_s:g}"

    def state_dict(self) -> dict[str, object]:
        return {"start": self._start, "emitted": self._emitted}

    def load_state_dict(self, state: dict[str, object]) -> None:
        start = state["start"]
        self._start = None if start is None else float(start)  # type: ignore[arg-type]
        self._emitted = int(state["emitted"])  # type: ignore[arg-type]
        if self._start is None:
            self._next_edge = None
            return
        # Replay the accumulating schedule so the pending edge is the
        # bit-identical float the uninterrupted run would hold.
        self._edges = edge_iter(self._start, self.every_s)
        self._next_edge = next(self._edges)
        for _ in range(self._emitted):
            self._next_edge = next(self._edges)


def parse_emission_policy(text: str) -> EmissionPolicy:
    """Parse an ``--emit-every`` spelling into a fresh policy.

    ``"20000p"`` — every 20k packets; ``"2.5s"`` — every 2.5 trace
    seconds; ``"window:10"`` — aligned with 10 s driver windows.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty emission policy")
    try:
        if text.startswith("window:"):
            return WindowAligned(float(text.removeprefix("window:")))
        if text.endswith("p"):
            return EveryNPackets(int(text[:-1]))
        if text.endswith("s"):
            return EveryTraceSeconds(float(text[:-1]))
    except ValueError as exc:
        raise ValueError(f"bad emission policy {text!r}: {exc}") from None
    raise ValueError(
        f"bad emission policy {text!r}; expected 'Np' (packets), "
        "'Ts' (trace seconds), or 'window:T' (driver-aligned windows)"
    )
