"""The streaming pipeline: chunked ingestion, online emission, checkpoints.

:class:`StreamPipeline` is the runtime between a :class:`StreamSource` and
a detector.  It pulls fixed-size columnar chunks, feeds each one through
the detector's vectorized ``update_batch`` path (a plain detector or a
key-partitioned :class:`repro.engine.ShardedDetector` — the pipeline does
not care), and yields an :class:`repro.stream.emission.Emission` whenever
the :class:`~repro.stream.emission.EmissionPolicy` places a boundary —
including boundaries that fall *inside* a chunk, which are honoured
exactly by sub-slicing.

By default the detector is reset at each emission (the disjoint-window
protocol, so consecutive reports are independent and churn between them is
meaningful); ``reset_on_emit=False`` keeps state accumulating for
continuous-time detectors.

The pipeline is *checkpointable*: :meth:`StreamPipeline.checkpoint`
freezes the detector state (via the :mod:`repro.core.checkpoint`
artifact), the emission policy, and every stream offset into one versioned
document, and :meth:`StreamPipeline.restore` resumes an
identically-configured pipeline from it.  Resuming and pushing the
remaining chunks is bit-identical to never having stopped (same chunk
boundaries, same emissions), which
``tests/stream/test_pipeline.py`` and the registry-wide checkpoint suite
enforce.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.core.checkpoint import CheckpointError
from repro.core.detector import Detector
from repro.stream.emission import Emission, EmissionPolicy
from repro.stream.source import StreamSource
from repro.trace.container import Trace
from repro.windows.schedule import Window

#: Version tag embedded in every stream checkpoint.
STREAM_CHECKPOINT_SCHEMA = "repro-hhh/stream-checkpoint/v1"

_KEY_COLUMNS = ("src", "dst")


def build_stream_detector(spec, shards: int = 1, workers: int = 1):
    """``(detector, runner)`` for a possibly-sharded streaming run.

    The single assembly both the ``stream-replay`` experiment and the
    ``repro-hhh stream`` subcommand use: ``workers > 1`` opens a process
    pool (the caller must ``close()`` the returned runner when done —
    it is ``None`` otherwise), and ``shards > 1`` or a pool wraps the
    detector in the key-partitioned sharded engine.
    """
    from repro.engine import ParallelRunner, ShardedDetector

    runner = ParallelRunner("process", workers) if workers > 1 else None
    detector = (
        ShardedDetector(spec.factory, shards, runner)
        if shards > 1 or runner is not None else spec.factory()
    )
    return detector, runner


class StreamPipeline:
    """Drive one detector over a chunked stream with online emissions.

    Parameters
    ----------
    detector:
        Any :class:`repro.core.Detector` (including a sharded one).
    policy:
        The :class:`EmissionPolicy` placing report boundaries.
    phi:
        Relative threshold: each emission reports keys at or above
        ``phi * interval_bytes``, the per-window percentage thresholds of
        the offline experiments carried over to the stream.
    key:
        Which trace column keys the detector: ``"src"`` or ``"dst"``.
    timestamped:
        Whether ``query`` takes a ``now`` argument (the registry's
        ``timestamped`` flag for the detector).
    reset_on_emit:
        Reset the detector after each emission (disjoint-window semantics,
        the default); continuous-time detectors pass ``False``.
    emit_partial:
        Whether :meth:`finish` flushes the trailing partial interval of a
        finite stream.
    """

    def __init__(
        self,
        detector: Detector,
        policy: EmissionPolicy,
        *,
        phi: float = 0.05,
        key: str = "src",
        timestamped: bool = False,
        reset_on_emit: bool = True,
        emit_partial: bool = True,
    ) -> None:
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        if key not in _KEY_COLUMNS:
            raise ValueError(
                f"key must be one of {_KEY_COLUMNS}, got {key!r}"
            )
        self.detector = detector
        self.policy = policy
        self.phi = phi
        self.key = key
        self.timestamped = timestamped
        self.reset_on_emit = reset_on_emit
        self.emit_partial = emit_partial
        # Stream offsets (total consumed).
        self.packets = 0
        self.bytes = 0
        self.chunk_index = 0
        self.emissions = 0
        # The open interval (since the last emission).
        self._interval_packets = 0
        self._interval_bytes = 0
        self._interval_start_packet = 0
        self._interval_t0: float | None = None
        self._interval_wall = 0.0
        self._last_ts: float | None = None

    # -- ingestion ---------------------------------------------------------

    def process(
        self,
        source: StreamSource,
        chunk_size: int,
        max_packets: int | None = None,
    ) -> Iterator[Emission]:
        """Consume ``source`` chunk by chunk, yielding emissions online.

        ``max_packets`` bounds unbounded sources (the final chunk is
        truncated to the cap); the trailing partial interval is flushed
        when ``emit_partial`` is set.  Emissions are yielded as they
        happen — a consumer can print, ship, or act on each one while the
        stream is still flowing.
        """
        if max_packets is not None and max_packets < 1:
            raise ValueError(f"max_packets must be >= 1, got {max_packets}")
        remaining = max_packets
        for chunk in source.chunks(chunk_size):
            if remaining is not None and len(chunk) > remaining:
                chunk = chunk.slice_index(0, remaining)
            yield from self.push(chunk)
            if remaining is not None:
                remaining -= len(chunk)
                if remaining <= 0:
                    break
        yield from self.finish()

    def push(self, chunk: Trace) -> Iterator[Emission]:
        """Ingest one chunk, yielding any emissions it completes."""
        if not len(chunk):
            return
        if self._interval_t0 is None:
            self.policy.start(chunk.start_time)
            self._interval_t0 = chunk.start_time
        previous = 0
        for position, edge in self.policy.cuts(chunk.ts):
            self._ingest(chunk, previous, position)
            previous = position
            yield self._emit(edge, partial=False)
        self._ingest(chunk, previous, len(chunk))
        self.chunk_index += 1

    def finish(self) -> Iterator[Emission]:
        """Flush the trailing partial interval of a finite stream."""
        if self.emit_partial and self._interval_packets:
            yield self._emit(edge=None, partial=True)

    def _ingest(self, chunk: Trace, i: int, j: int) -> None:
        if j <= i:
            return
        keys = getattr(chunk, self.key)[i:j]
        t0 = time.perf_counter()
        self.detector.update_batch(keys, chunk.length[i:j], chunk.ts[i:j])
        self._interval_wall += time.perf_counter() - t0
        n = j - i
        volume = int(chunk.length[i:j].sum())
        self.packets += n
        self.bytes += volume
        self._interval_packets += n
        self._interval_bytes += volume
        self._last_ts = float(chunk.ts[j - 1])

    # -- emission ----------------------------------------------------------

    def _emit(self, edge: float | None, partial: bool) -> Emission:
        assert self._interval_t0 is not None
        if edge is not None:
            t1 = edge
        elif self._last_ts is not None and self._last_ts > self._interval_t0:
            t1 = self._last_ts
        else:
            t1 = self._interval_t0
        threshold = self.phi * self._interval_bytes
        if self._interval_bytes:
            if self.timestamped:
                report = self.detector.query(threshold, t1)
            else:
                report = self.detector.query(threshold)
        else:
            report = {}
        emission = Emission(
            index=self.emissions,
            window=Window(self._interval_t0, t1, self.emissions),
            report=report,
            packets=self._interval_packets,
            bytes=self._interval_bytes,
            start_packet=self._interval_start_packet,
            end_packet=self.packets,
            chunk_index=self.chunk_index,
            wall_s=self._interval_wall,
            partial=partial,
        )
        self.emissions += 1
        self._interval_t0 = t1
        self._interval_packets = 0
        self._interval_bytes = 0
        self._interval_start_packet = self.packets
        self._interval_wall = 0.0
        if self.reset_on_emit:
            self.detector.reset()
        return emission

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> dict[str, object]:
        """Freeze the whole pipeline into one versioned artifact.

        Captures the detector state (via :meth:`Detector.save_state`), the
        emission policy's pending state, and every stream offset.  The
        artifact is self-describing and picklable; pair it with
        :meth:`restore` on an identically-configured pipeline.
        """
        return {
            "schema": STREAM_CHECKPOINT_SCHEMA,
            "policy": self.policy.describe(),
            "detector_state": self.detector.save_state(),
            "policy_state": self.policy.state_dict(),
            "offsets": {
                "packets": self.packets,
                "bytes": self.bytes,
                "chunk_index": self.chunk_index,
                "emissions": self.emissions,
                "interval_packets": self._interval_packets,
                "interval_bytes": self._interval_bytes,
                "interval_start_packet": self._interval_start_packet,
                "interval_t0": self._interval_t0,
                "last_ts": self._last_ts,
            },
        }

    def restore(self, checkpoint: dict[str, object]) -> None:
        """Resume from a :meth:`checkpoint` artifact, in place.

        The pipeline must be configured identically (same policy spelling,
        compatible detector); pushing the chunks that followed the
        snapshot then reproduces the uninterrupted run bit for bit.
        """
        if not isinstance(checkpoint, dict) or (
            checkpoint.get("schema") != STREAM_CHECKPOINT_SCHEMA
        ):
            raise CheckpointError(
                f"expected a {STREAM_CHECKPOINT_SCHEMA!r} artifact"
            )
        if checkpoint.get("policy") != self.policy.describe():
            raise CheckpointError(
                f"checkpoint was cut under policy "
                f"{checkpoint.get('policy')!r}; this pipeline runs "
                f"{self.policy.describe()!r}"
            )
        self.detector.load_state(checkpoint["detector_state"])  # type: ignore[arg-type]
        self.policy.load_state_dict(checkpoint["policy_state"])  # type: ignore[arg-type]
        offsets = checkpoint["offsets"]
        self.packets = int(offsets["packets"])  # type: ignore[index]
        self.bytes = int(offsets["bytes"])  # type: ignore[index]
        self.chunk_index = int(offsets["chunk_index"])  # type: ignore[index]
        self.emissions = int(offsets["emissions"])  # type: ignore[index]
        self._interval_packets = int(offsets["interval_packets"])  # type: ignore[index]
        self._interval_bytes = int(offsets["interval_bytes"])  # type: ignore[index]
        self._interval_start_packet = int(
            offsets["interval_start_packet"]  # type: ignore[index]
        )
        t0 = offsets["interval_t0"]  # type: ignore[index]
        self._interval_t0 = None if t0 is None else float(t0)
        last = offsets["last_ts"]  # type: ignore[index]
        self._last_ts = None if last is None else float(last)
        self._interval_wall = 0.0

    def __repr__(self) -> str:
        return (
            f"StreamPipeline(detector={type(self.detector).__name__}, "
            f"policy={self.policy.describe()!r}, phi={self.phi}, "
            f"packets={self.packets}, emissions={self.emissions})"
        )
