"""Tests for repro.sketch.countsketch."""

import random

import pytest

from repro.sketch.countsketch import CountSketch


class TestCountSketch:
    def test_single_key_exact(self):
        cs = CountSketch(width=64, rows=5)
        cs.update(9, 12)
        assert cs.estimate(9) == pytest.approx(12)

    def test_two_sided_errors(self):
        # Unlike Count-Min, Count-Sketch errs in both directions: on a
        # colliding workload some estimates fall below the true counts.
        rng = random.Random(0)
        truth: dict[int, int] = {}
        cs = CountSketch(width=255, rows=5)
        for _ in range(5000):
            key, w = rng.randrange(400), rng.randrange(1, 10)
            cs.update(key, w)
            truth[key] = truth.get(key, 0) + w
        errors = [cs.estimate(k) - c for k, c in truth.items()]
        assert any(e < 0 for e in errors)
        assert any(e > 0 for e in errors)

    def test_tighter_than_countmin_on_skew(self):
        # On a skewed stream the heavy key's Count-Sketch estimate is
        # closer to truth than Count-Min's (whose error is all positive).
        from repro.sketch.countmin import CountMinSketch

        rng = random.Random(7)
        cs = CountSketch(width=63, rows=5)
        cm = CountMinSketch(width=63, rows=5)
        truth: dict[int, int] = {}
        stream = [(77, 10)] * 2000 + [
            (rng.randrange(3000), rng.randrange(1, 10)) for _ in range(8000)
        ]
        rng.shuffle(stream)
        for key, w in stream:
            cs.update(key, w)
            cm.update(key, w)
            truth[key] = truth.get(key, 0) + w
        cs_err = abs(cs.estimate(77) - truth[77])
        cm_err = abs(cm.estimate(77) - truth[77])
        assert cs_err <= cm_err

    def test_requires_odd_rows(self):
        with pytest.raises(ValueError):
            CountSketch(rows=4)

    def test_validation(self):
        with pytest.raises(ValueError):
            CountSketch(width=0)

    def test_heavy_key_recovered_on_skew(self):
        rng = random.Random(1)
        cs = CountSketch(width=128, rows=5)
        for _ in range(3000):
            cs.update(rng.randrange(1000), 1)
        for _ in range(1000):
            cs.update(77, 10)
        assert cs.estimate(77) > 5000

    def test_num_counters(self):
        assert CountSketch(width=100, rows=5).num_counters == 500
