"""Tests for repro.sketch.countmin."""

import random

import pytest

from repro.sketch.countmin import CountMinHeavyHitters, CountMinSketch


class TestCountMinSketch:
    def test_exact_for_single_key(self):
        cm = CountMinSketch(width=64, rows=3)
        cm.update(42, 7)
        cm.update(42, 3)
        assert cm.estimate(42) >= 10

    def test_never_underestimates(self):
        rng = random.Random(0)
        cm = CountMinSketch(width=256, rows=4)
        truth: dict[int, int] = {}
        for _ in range(3000):
            key, w = rng.randrange(500), rng.randrange(1, 50)
            cm.update(key, w)
            truth[key] = truth.get(key, 0) + w
        for key, count in truth.items():
            assert cm.estimate(key) >= count

    def test_error_within_theory(self):
        # eps = e/width; error <= eps * N with prob 1 - e^-rows; with 4
        # rows failures are rare enough to assert on the 99th percentile.
        rng = random.Random(1)
        width, rows = 512, 4
        cm = CountMinSketch(width=width, rows=rows)
        truth: dict[int, int] = {}
        for _ in range(5000):
            key, w = rng.randrange(2000), rng.randrange(1, 10)
            cm.update(key, w)
            truth[key] = truth.get(key, 0) + w
        bound = 2.72 * cm.total / width
        errors = sorted(cm.estimate(k) - c for k, c in truth.items())
        assert errors[int(0.99 * len(errors))] <= bound

    def test_conservative_update_tighter(self):
        rng = random.Random(2)
        stream = [(rng.randrange(100), rng.randrange(1, 10)) for _ in range(4000)]
        plain = CountMinSketch(width=64, rows=4)
        conservative = CountMinSketch(width=64, rows=4, conservative=True)
        truth: dict[int, int] = {}
        for key, w in stream:
            plain.update(key, w)
            conservative.update(key, w)
            truth[key] = truth.get(key, 0) + w
        plain_err = sum(plain.estimate(k) - c for k, c in truth.items())
        cons_err = sum(conservative.estimate(k) - c for k, c in truth.items())
        assert cons_err <= plain_err
        for key, count in truth.items():
            assert conservative.estimate(key) >= count

    def test_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch().update(1, -1)

    def test_num_counters(self):
        assert CountMinSketch(width=128, rows=3).num_counters == 384


class TestCountMinHeavyHitters:
    def test_reports_heavy_keys(self):
        rng = random.Random(3)
        det = CountMinHeavyHitters(width=512, rows=4, track_phi=0.001)
        for _ in range(5000):
            det.update(rng.randrange(200), 1)
        for _ in range(2000):
            det.update(7, 10)  # a clear heavy hitter
        report = det.query(0.2 * det.sketch.total)
        assert 7 in report

    def test_no_false_negatives_vs_threshold(self):
        rng = random.Random(4)
        det = CountMinHeavyHitters(width=1024, rows=4, track_phi=0.005)
        truth: dict[int, int] = {}
        for _ in range(8000):
            key, w = rng.randrange(300), rng.randrange(1, 20)
            det.update(key, w)
            truth[key] = truth.get(key, 0) + w
        threshold = 0.02 * det.sketch.total
        report = det.query(threshold)
        for key, count in truth.items():
            if count >= threshold:
                assert key in report  # CM never underestimates

    def test_track_phi_validation(self):
        with pytest.raises(ValueError):
            CountMinHeavyHitters(track_phi=0.0)

    def test_candidate_map_bounded(self):
        rng = random.Random(5)
        det = CountMinHeavyHitters(width=256, rows=4, track_phi=0.01)
        for _ in range(20000):
            det.update(rng.randrange(5000), 1)
        assert len(det._candidates) <= 4 / 0.01 + 1

    def test_batch_matches_scalar_through_prunes(self):
        # Geometrically growing weights admit every key as it appears, so
        # admissions quickly exceed the 4 / track_phi bound and the batch
        # path must take its mid-chunk prune-and-replay fallback.
        stream = []
        total = 10
        for key in range(120):
            w = int(0.3 * total) + 1
            stream.append((key, w))
            total += w
        scalar = CountMinHeavyHitters(width=256, rows=4, track_phi=0.2)
        batch = CountMinHeavyHitters(width=256, rows=4, track_phi=0.2)
        for key, w in stream:
            scalar.update(key, w)
        for start in range(0, len(stream), 30):
            chunk = stream[start:start + 30]
            batch.update_batch([k for k, _ in chunk], [w for _, w in chunk])
        assert batch.sketch.total == scalar.sketch.total
        assert batch._candidates == scalar._candidates
        assert batch.query(0.0) == scalar.query(0.0)
