"""Tests for repro.sketch.hashpipe."""

import random

import pytest

from repro.sketch.hashpipe import HashPipe


class TestHashPipe:
    def test_single_key_counted(self):
        hp = HashPipe(stage_slots=16, stages=3)
        for _ in range(5):
            hp.update(42, 10)
        assert hp.estimate(42) == 50

    def test_heavy_keys_survive(self):
        rng = random.Random(0)
        hp = HashPipe(stage_slots=128, stages=4)
        for _ in range(8000):
            hp.update(rng.randrange(2000), 1)
        for _ in range(3000):
            hp.update(7, 10)
        report = hp.query(0.2 * hp.total)
        assert 7 in report

    def test_estimate_sums_across_stages(self):
        # A key can be split across stages after evictions; the estimate
        # must collect all fragments, so it is >= any single stage's view.
        rng = random.Random(1)
        hp = HashPipe(stage_slots=8, stages=4)
        truth: dict[int, int] = {}
        for _ in range(3000):
            key = rng.randrange(100)
            hp.update(key, 1)
            truth[key] = truth.get(key, 0) + 1
        # HashPipe never overestimates: all counted mass belongs to the key.
        for key, count in truth.items():
            assert hp.estimate(key) <= count

    def test_total_mass_conserved_or_dropped(self):
        # Mass in the tables never exceeds the stream total (evicted mass
        # at the pipeline end is dropped, never duplicated).
        rng = random.Random(2)
        hp = HashPipe(stage_slots=16, stages=2)
        for _ in range(2000):
            hp.update(rng.randrange(500), 3)
        table_mass = sum(hp.query(0.0).values())
        assert table_mass <= hp.total

    def test_query_threshold_filters(self):
        hp = HashPipe(stage_slots=64, stages=2)
        hp.update(1, 100)
        hp.update(2, 5)
        report = hp.query(50)
        assert 1 in report and 2 not in report

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPipe(stage_slots=0)
        with pytest.raises(ValueError):
            HashPipe(stages=0)
        with pytest.raises(ValueError):
            HashPipe().update(1, -1)

    def test_num_counters(self):
        assert HashPipe(stage_slots=64, stages=4).num_counters == 256

    def test_accuracy_improves_with_stages(self):
        rng = random.Random(3)
        stream = [rng.randrange(400) for _ in range(6000)]
        truth: dict[int, int] = {}
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
        heavy = {k for k, c in truth.items() if c >= 0.01 * len(stream)}
        recalls = []
        for stages in (1, 4):
            hp = HashPipe(stage_slots=48, stages=stages)
            for key in stream:
                hp.update(key, 1)
            report = hp.query(0.01 * len(stream))
            recalls.append(len(heavy & set(report)) / max(1, len(heavy)))
        assert recalls[1] >= recalls[0]
