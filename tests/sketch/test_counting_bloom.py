"""Tests for repro.sketch.counting_bloom."""

import random

import pytest

from repro.sketch.counting_bloom import CountingBloomFilter


class TestCountingBloom:
    def test_add_and_membership(self):
        cb = CountingBloomFilter(cells=256, hashes=3)
        cb.add(5)
        assert 5 in cb
        assert cb.estimate(5) >= 1

    def test_remove_restores_absence(self):
        cb = CountingBloomFilter(cells=256, hashes=3)
        cb.add(5, 3)
        cb.remove(5, 3)
        assert 5 not in cb

    def test_estimate_never_underestimates(self):
        rng = random.Random(0)
        cb = CountingBloomFilter(cells=512, hashes=4)
        truth: dict[int, int] = {}
        for _ in range(2000):
            key, w = rng.randrange(300), rng.randrange(1, 10)
            cb.add(key, w)
            truth[key] = truth.get(key, 0) + w
        for key, count in truth.items():
            assert cb.estimate(key) >= count

    def test_remove_floors_at_zero(self):
        cb = CountingBloomFilter(cells=64, hashes=2)
        cb.add(1, 1)
        cb.remove(1, 100)
        assert cb.estimate(1) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(cells=0)
        cb = CountingBloomFilter()
        with pytest.raises(ValueError):
            cb.add(1, -1)
        with pytest.raises(ValueError):
            cb.remove(1, -1)

    def test_num_counters(self):
        assert CountingBloomFilter(cells=100).num_counters == 100
