"""Tests for repro.sketch.bloom."""

import pytest

from repro.sketch.bloom import BloomFilter, optimal_parameters


class TestOptimalParameters:
    def test_textbook_values(self):
        bits, hashes = optimal_parameters(1000, 0.01)
        assert 9000 < bits < 10100
        assert hashes == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_parameters(0, 0.01)
        with pytest.raises(ValueError):
            optimal_parameters(100, 0.0)
        with pytest.raises(ValueError):
            optimal_parameters(100, 1.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bf = BloomFilter.for_capacity(500, 0.01)
        keys = list(range(0, 5000, 10))
        for key in keys:
            bf.add(key)
        assert all(key in bf for key in keys)

    def test_false_positive_rate_near_target(self):
        bf = BloomFilter.for_capacity(1000, 0.02)
        for key in range(1000):
            bf.add(key)
        false_positives = sum(1 for key in range(10_000, 30_000) if key in bf)
        rate = false_positives / 20_000
        assert rate < 0.06  # target 0.02 with slack

    def test_fill_ratio_grows(self):
        bf = BloomFilter(bits=1024, hashes=3)
        assert bf.fill_ratio() == 0.0
        for key in range(100):
            bf.add(key)
        assert 0 < bf.fill_ratio() < 1

    def test_saturation_destroys_filtering(self):
        # The windowed-reset motivation: saturate and everything matches.
        bf = BloomFilter(bits=128, hashes=2)
        for key in range(5000):
            bf.add(key)
        assert bf.fill_ratio() > 0.99
        assert all(key in bf for key in range(99_000, 99_100))

    def test_expected_fp_rate_tracks_fill(self):
        bf = BloomFilter(bits=2048, hashes=4)
        for key in range(300):
            bf.add(key)
        assert 0 < bf.expected_false_positive_rate() < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BloomFilter(bits=0)
        with pytest.raises(ValueError):
            BloomFilter(hashes=0)

    def test_size_bytes(self):
        assert BloomFilter(bits=8192).size_bytes == 1024
