"""Tests for repro.sketch.univmon."""

import math
import random

import pytest

from repro.sketch.univmon import UnivMon


class TestSampling:
    def test_level_zero_sees_everything(self):
        um = UnivMon(levels=4, width=128)
        for key in range(200):
            assert um._level_of(key) >= 0

    def test_levels_halve_roughly(self):
        um = UnivMon(levels=6, width=128)
        counts = [0] * 6
        for key in range(20000):
            counts[um._level_of(key)] += 1
        # Level i holds ~ 2^-(i+1) of keys (geometric).
        assert counts[0] > counts[1] > counts[2]
        assert counts[0] == pytest.approx(10000, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnivMon(levels=0)


class TestHeavyHitters:
    def test_heavy_key_reported(self):
        rng = random.Random(0)
        um = UnivMon(levels=6, width=512, top_k=32)
        for _ in range(4000):
            um.update(rng.randrange(2000), 1)
        for _ in range(2000):
            um.update(7, 5)
        report = um.query(0.2 * um.total)
        assert 7 in report

    def test_estimate_close_for_heavy_key(self):
        um = UnivMon(levels=4, width=512)
        for _ in range(1000):
            um.update(42, 10)
        assert um.estimate(42) == pytest.approx(10000, rel=0.2)


class TestGSum:
    def test_cardinality_order_of_magnitude(self):
        rng = random.Random(1)
        um = UnivMon(levels=8, width=512, top_k=128)
        keys = [rng.randrange(1 << 30) for _ in range(300)]
        for key in keys:
            for _ in range(5):
                um.update(key, 1)
        estimate = um.cardinality()
        distinct = len(set(keys))
        assert 0.2 * distinct < estimate < 5 * distinct

    def test_entropy_bounds(self):
        # Uniform over 64 keys: entropy ~ 6 bits; point mass: ~ 0 bits.
        um_uniform = UnivMon(levels=6, width=512, top_k=128)
        for i in range(6400):
            um_uniform.update(i % 64, 1)
        um_point = UnivMon(levels=6, width=512, top_k=128)
        for _ in range(6400):
            um_point.update(1, 1)
        assert um_point.entropy() < 1.0
        assert um_uniform.entropy() > 3.0
        assert um_uniform.entropy() <= math.log2(6400) + 1

    def test_empty_entropy(self):
        assert UnivMon().entropy() == 0.0

    def test_num_counters(self):
        um = UnivMon(levels=2, width=100, rows=5)
        assert um.num_counters == 1000
