"""Tests for repro.sketch.misragries."""

import random

import pytest

from repro.sketch.misragries import MisraGries


class TestMisraGries:
    def test_exact_under_capacity(self):
        mg = MisraGries(capacity=10)
        mg.update(1, 5)
        mg.update(2, 3)
        assert mg.estimate(1) == 5
        assert mg.estimate(2) == 3

    def test_underestimates_only(self):
        rng = random.Random(0)
        mg = MisraGries(capacity=32)
        truth: dict[int, int] = {}
        for _ in range(5000):
            key, w = rng.randrange(300), rng.randrange(1, 30)
            mg.update(key, w)
            truth[key] = truth.get(key, 0) + w
        for key, count in truth.items():
            assert mg.estimate(key) <= count

    def test_error_bound(self):
        # Underestimate error <= N / (capacity + 1).
        rng = random.Random(1)
        capacity = 32
        mg = MisraGries(capacity=capacity)
        truth: dict[int, int] = {}
        for _ in range(5000):
            key, w = rng.randrange(300), rng.randrange(1, 30)
            mg.update(key, w)
            truth[key] = truth.get(key, 0) + w
        bound = mg.total / (capacity + 1)
        for key, count in truth.items():
            assert count - mg.estimate(key) <= bound + 1e-9

    def test_decrement_frees_slots(self):
        mg = MisraGries(capacity=2)
        mg.update(1, 3)
        mg.update(2, 3)
        mg.update(3, 5)  # decrements all by 3, inserts 3 with remainder 2
        assert mg.estimate(1) == 0
        assert mg.estimate(2) == 0
        assert mg.estimate(3) == 2

    def test_query(self):
        mg = MisraGries(capacity=8)
        mg.update(1, 100)
        mg.update(2, 5)
        assert set(mg.query(50)) == {1}

    def test_validation(self):
        with pytest.raises(ValueError):
            MisraGries(0)
        with pytest.raises(ValueError):
            MisraGries(4).update(1, -2)

    def test_len_and_items(self):
        mg = MisraGries(capacity=4)
        mg.update(1, 1)
        mg.update(2, 2)
        assert len(mg) == 2
        assert mg.items() == {1: 1, 2: 2}
