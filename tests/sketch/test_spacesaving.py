"""Tests for repro.sketch.spacesaving, including the classic guarantees."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sketch.spacesaving import SpaceSaving


class TestBasics:
    def test_exact_under_capacity(self):
        ss = SpaceSaving(capacity=10)
        for key, weight in [(1, 5), (2, 3), (1, 2)]:
            ss.update(key, weight)
        assert ss.estimate(1) == 7
        assert ss.estimate(2) == 3
        assert ss.guaranteed(1) == 7

    def test_untracked_key_estimate_is_min_when_full(self):
        ss = SpaceSaving(capacity=2)
        ss.update(1, 10)
        ss.update(2, 20)
        assert ss.estimate(3) == 10  # min counter

    def test_untracked_before_full_is_zero(self):
        ss = SpaceSaving(capacity=5)
        ss.update(1, 10)
        assert ss.estimate(99) == 0

    def test_eviction_inherits_min(self):
        ss = SpaceSaving(capacity=2)
        ss.update(1, 10)
        ss.update(2, 20)
        ss.update(3, 1)  # evicts key 1 (min=10), inherits its count
        assert ss.estimate(3) == 11
        assert ss.guaranteed(3) == 1
        assert len(ss) == 2

    def test_query_threshold(self):
        ss = SpaceSaving(capacity=4)
        for k, w in [(1, 100), (2, 10), (3, 50)]:
            ss.update(k, w)
        assert set(ss.query(50.0)) == {1, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        with pytest.raises(ValueError):
            SpaceSaving(4).update(1, -1)

    def test_num_counters(self):
        assert SpaceSaving(32).num_counters == 32


class TestGuarantees:
    """The two classic Space-Saving theorems, checked empirically."""

    def _stream(self, seed, n=5000, keys=300):
        rng = random.Random(seed)
        return [
            (rng.randrange(keys) ** 2 % keys, rng.randrange(1, 100))
            for _ in range(n)
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_overestimate_never_underestimates(self, seed):
        ss = SpaceSaving(capacity=64)
        truth: dict[int, int] = {}
        for key, w in self._stream(seed):
            ss.update(key, w)
            truth[key] = truth.get(key, 0) + w
        for key, true_count in truth.items():
            assert ss.estimate(key) >= true_count

    @pytest.mark.parametrize("seed", [4, 5])
    def test_error_bounded_by_total_over_capacity(self, seed):
        capacity = 64
        ss = SpaceSaving(capacity=capacity)
        truth: dict[int, int] = {}
        for key, w in self._stream(seed):
            ss.update(key, w)
            truth[key] = truth.get(key, 0) + w
        bound = ss.total / capacity
        for key in truth:
            assert ss.estimate(key) - truth[key] <= bound + 1e-9

    @pytest.mark.parametrize("seed", [6, 7])
    def test_heavy_keys_always_tracked(self, seed):
        capacity = 64
        ss = SpaceSaving(capacity=capacity)
        truth: dict[int, int] = {}
        for key, w in self._stream(seed):
            ss.update(key, w)
            truth[key] = truth.get(key, 0) + w
        tracked = ss.items()
        for key, count in truth.items():
            if count > ss.total / capacity:
                assert key in tracked

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=1, max_value=20),
            ),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_preserved(self, stream):
        ss = SpaceSaving(capacity=8)
        for key, w in stream:
            ss.update(key, w)
        assert ss.total == sum(w for _, w in stream)
