"""Tests for repro.sketch.rhhh."""

import random

import pytest

from repro.hierarchy.domain import SourceHierarchy
from repro.net.prefix import Prefix
from repro.sketch.rhhh import RHHH


def feed(detector, stream):
    for key, w in stream:
        detector.update(key, w)


class TestFullUpdate:
    """sample_levels=False is deterministic per-level Space-Saving."""

    def test_heavy_leaf_detected(self):
        det = RHHH(counters_per_level=64, sample_levels=False)
        feed(det, [(0x0A000001, 10)] * 100 + [(0x0B000000 + i, 1) for i in range(200)])
        result = det.query_hhh(0.5 * det.total)
        assert Prefix(0x0A000001, 32) in result.prefixes

    def test_aggregate_detected_at_upper_level(self):
        det = RHHH(counters_per_level=64, sample_levels=False)
        # 50 distinct hosts inside one /24, none heavy alone.
        stream = [(0x0A000000 + i, 10) for i in range(50)] * 4
        stream += [(0x0B000000 + i, 1) for i in range(100)]
        feed(det, stream)
        result = det.query_hhh(0.5 * det.total)
        lengths = {p.length for p in result.prefixes}
        assert 32 not in lengths
        assert Prefix(0x0A000000, 24) in result.prefixes

    def test_conditioning_discounts_children(self):
        det = RHHH(counters_per_level=64, sample_levels=False)
        feed(det, [(0x0A000001, 100)])
        result = det.query_hhh(50)
        # Only the leaf; ancestors are fully discounted.
        assert result.prefixes == {Prefix(0x0A000001, 32)}

    def test_update_count_accounting(self):
        det = RHHH(sample_levels=False)
        feed(det, [(1, 1)] * 10)
        assert det.updates == 10 * det.hierarchy.num_levels


class TestSampledUpdate:
    def test_one_update_per_packet(self):
        det = RHHH(seed=1, sample_levels=True)
        feed(det, [(1, 1)] * 50)
        assert det.updates == 50

    def test_estimates_scale_up(self):
        det = RHHH(counters_per_level=128, seed=2, sample_levels=True)
        feed(det, [(0x0A000001, 10)] * 2000)
        estimate = det.estimate(0x0A000001, 0)
        assert estimate == pytest.approx(20000, rel=0.35)

    def test_heavy_hitter_still_found(self):
        rng = random.Random(3)
        det = RHHH(counters_per_level=128, seed=3, sample_levels=True)
        stream = [(0x0A000001, 10)] * 3000
        stream += [(rng.randrange(1 << 32), 1) for _ in range(3000)]
        rng.shuffle(stream)
        feed(det, stream)
        result = det.query_hhh(0.3 * det.total)
        assert Prefix(0x0A000001, 32) in result.prefixes

    def test_deterministic_under_seed(self):
        a, b = RHHH(seed=9), RHHH(seed=9)
        stream = [(i % 37, 1) for i in range(500)]
        feed(a, stream)
        feed(b, stream)
        assert a.query_hhh(10).prefixes == b.query_hhh(10).prefixes


class TestInterface:
    def test_query_leaf_protocol(self):
        det = RHHH(sample_levels=False)
        feed(det, [(5, 100)])
        report = det.query(50)
        assert 5 in report

    def test_zero_threshold(self):
        det = RHHH()
        assert len(det.query_hhh(0)) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RHHH(counters_per_level=0)

    def test_num_counters(self):
        det = RHHH(counters_per_level=100)
        assert det.num_counters == 100 * SourceHierarchy().num_levels
