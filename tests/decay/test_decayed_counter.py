"""Tests for repro.decay.decayed_counter."""

import math

import pytest

from repro.decay.decayed_counter import DecayedCounter, ExactDecayedCounts
from repro.decay.laws import ExponentialDecay, LinearDecay


class TestDecayedCounter:
    def test_add_and_read(self):
        c = DecayedCounter(ExponentialDecay(tau=10.0))
        c.add(100.0, ts=0.0)
        assert c.read(0.0) == pytest.approx(100.0)
        assert c.read(10.0) == pytest.approx(100.0 / math.e)

    def test_accumulates_with_decay(self):
        c = DecayedCounter(LinearDecay(rate=1.0))
        c.add(10.0, ts=0.0)
        c.add(10.0, ts=5.0)
        assert c.read(5.0) == pytest.approx(15.0)

    def test_read_before_stamp_returns_value(self):
        c = DecayedCounter(ExponentialDecay(tau=1.0))
        c.add(10.0, ts=5.0)
        assert c.read(4.0) == pytest.approx(10.0)

    def test_late_add_decays_contribution(self):
        c = DecayedCounter(ExponentialDecay(tau=10.0))
        c.add(100.0, ts=10.0)
        c.add(100.0, ts=0.0)  # 10 seconds late
        expected = 100.0 + 100.0 / math.e
        assert c.read(10.0) == pytest.approx(expected)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            DecayedCounter(LinearDecay(1.0)).add(-1.0, ts=0.0)


class TestExactDecayedCounts:
    def test_query_thresholds(self):
        d = ExactDecayedCounts(ExponentialDecay(tau=10.0))
        d.update(1, 100.0, ts=0.0)
        d.update(2, 10.0, ts=0.0)
        report = d.query(50.0, now=0.0)
        assert set(report) == {1}

    def test_decay_expires_old_keys(self):
        d = ExactDecayedCounts(LinearDecay(rate=10.0))
        d.update(1, 50.0, ts=0.0)
        assert d.query(1.0, now=10.0) == {}

    def test_estimate_unseen_key(self):
        d = ExactDecayedCounts(LinearDecay(1.0))
        assert d.estimate(9, now=1.0) == 0.0

    def test_compact_drops_dead_keys(self):
        d = ExactDecayedCounts(LinearDecay(rate=10.0))
        for key in range(10):
            d.update(key, 5.0, ts=0.0)
        d.update(99, 1000.0, ts=0.0)
        dropped = d.compact(now=1.0, floor=1.0)
        assert dropped == 10
        assert len(d) == 1
        assert d.estimate(99, now=1.0) > 0

    def test_steady_state_equals_rate_times_tau(self):
        """The calibration identity behind tau=window: a constant-rate flow's
        decayed volume converges to rate * tau."""
        tau = 5.0
        d = ExactDecayedCounts(ExponentialDecay(tau=tau))
        rate = 100.0  # bytes per second, 10 updates/s
        for i in range(2000):
            d.update(1, rate / 10.0, ts=i * 0.1)
        steady = d.estimate(1, now=199.9)
        assert steady == pytest.approx(rate * tau, rel=0.05)
