"""Tests for repro.decay.decayed_countmin."""

import math
import random

import pytest

from repro.decay.decayed_counter import ExactDecayedCounts
from repro.decay.decayed_countmin import DecayedCountMin
from repro.decay.laws import ExponentialDecay, LinearDecay


class TestDecayedCountMin:
    def test_requires_law(self):
        with pytest.raises(ValueError):
            DecayedCountMin(width=16, rows=2, law=None)

    def test_single_key_decays(self):
        cm = DecayedCountMin(width=256, rows=3, law=ExponentialDecay(tau=10.0))
        cm.update(1, 100.0, ts=0.0)
        assert cm.estimate(1, now=0.0) >= 100.0
        assert cm.estimate(1, now=10.0) == pytest.approx(
            100.0 / math.e, rel=0.01
        )

    def test_never_underestimates_vs_exact_decayed(self):
        rng = random.Random(0)
        law = ExponentialDecay(tau=5.0)
        cm = DecayedCountMin(width=512, rows=4, law=law)
        exact = ExactDecayedCounts(law)
        for i in range(3000):
            key = rng.randrange(300)
            w = float(rng.randrange(1, 20))
            ts = i * 0.01
            cm.update(key, w, ts)
            exact.update(key, w, ts)
        now = 30.0
        for key in range(300):
            assert cm.estimate(key, now) >= exact.estimate(key, now) - 1e-6

    def test_late_packet_one_sided(self):
        cm = DecayedCountMin(width=64, rows=2, law=ExponentialDecay(tau=10.0))
        cm.update(1, 100.0, ts=10.0)
        cm.update(1, 50.0, ts=5.0)
        estimate = cm.estimate(1, now=10.0)
        assert 100.0 < estimate <= 150.0

    def test_steady_state_bounded(self):
        cm = DecayedCountMin(width=256, rows=3, law=ExponentialDecay(tau=1.0))
        for i in range(4000):
            cm.update(i % 20, 10.0, ts=i * 0.01)
        # Bounded by in-rate * tau (plus collision noise), not stream length.
        assert cm.estimate(5, now=40.0) < 4000

    def test_contains_threshold(self):
        cm = DecayedCountMin(width=128, rows=3, law=LinearDecay(rate=10.0))
        cm.update(9, 50.0, ts=0.0)
        assert cm.contains(9, now=1.0, threshold=30.0)
        assert not cm.contains(9, now=5.0, threshold=30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedCountMin(width=0, law=LinearDecay(1.0))
        cm = DecayedCountMin(law=LinearDecay(1.0))
        with pytest.raises(ValueError):
            cm.update(1, -1.0, ts=0.0)

    def test_num_counters(self):
        cm = DecayedCountMin(width=100, rows=4, law=LinearDecay(1.0))
        assert cm.num_counters == 400
