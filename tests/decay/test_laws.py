"""Tests for repro.decay.laws."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.decay.laws import ExponentialDecay, LinearDecay, SlidingExpiry

values = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
ages = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestLinearDecay:
    def test_basic(self):
        law = LinearDecay(rate=10.0)
        assert law.decay(100.0, 5.0) == pytest.approx(50.0)

    def test_floors_at_zero(self):
        assert LinearDecay(10.0).decay(5.0, 100.0) == 0.0

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError):
            LinearDecay(1.0).decay(1.0, -1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearDecay(0.0)

    @given(values, ages, ages)
    @settings(max_examples=60, deadline=None)
    def test_composes(self, v, a, b):
        law = LinearDecay(3.0)
        direct = law.decay(v, a + b)
        stepped = law.decay(law.decay(v, a), b)
        assert stepped == pytest.approx(direct, rel=1e-9, abs=1e-6)

    @given(values, ages, ages)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_age(self, v, a, b):
        law = LinearDecay(2.0)
        lo, hi = sorted((a, b))
        assert law.decay(v, hi) <= law.decay(v, lo)


class TestExponentialDecay:
    def test_half_life(self):
        law = ExponentialDecay(half_life=10.0)
        assert law.decay(100.0, 10.0) == pytest.approx(50.0)
        assert law.half_life == pytest.approx(10.0)

    def test_tau(self):
        law = ExponentialDecay(tau=5.0)
        assert law.decay(math.e, 5.0) == pytest.approx(1.0)

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            ExponentialDecay()
        with pytest.raises(ValueError):
            ExponentialDecay(tau=1.0, half_life=1.0)
        with pytest.raises(ValueError):
            ExponentialDecay(tau=-1.0)

    @given(values, ages, ages)
    @settings(max_examples=60, deadline=None)
    def test_composes(self, v, a, b):
        law = ExponentialDecay(tau=7.0)
        direct = law.decay(v, a + b)
        stepped = law.decay(law.decay(v, a), b)
        assert stepped == pytest.approx(direct, rel=1e-9, abs=1e-6)

    def test_horizon_finite(self):
        assert ExponentialDecay(tau=2.0).horizon() == pytest.approx(80.0)

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError):
            ExponentialDecay(tau=1.0).decay(1.0, -0.5)


class TestSlidingExpiry:
    def test_step_function(self):
        law = SlidingExpiry(window=10.0)
        assert law.decay(42.0, 9.99) == 42.0
        assert law.decay(42.0, 10.0) == 0.0

    def test_horizon_is_window(self):
        assert SlidingExpiry(3.0).horizon() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingExpiry(0.0)
        with pytest.raises(ValueError):
            SlidingExpiry(1.0).decay(1.0, -1.0)
