"""Tests for repro.decay.laws."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.decay.laws import ExponentialDecay, LinearDecay, SlidingExpiry

values = st.floats(min_value=0.0, max_value=1e9, allow_nan=False)
ages = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


class TestLinearDecay:
    def test_basic(self):
        law = LinearDecay(rate=10.0)
        assert law.decay(100.0, 5.0) == pytest.approx(50.0)

    def test_floors_at_zero(self):
        assert LinearDecay(10.0).decay(5.0, 100.0) == 0.0

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError):
            LinearDecay(1.0).decay(1.0, -1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearDecay(0.0)

    @given(values, ages, ages)
    @settings(max_examples=60, deadline=None)
    def test_composes(self, v, a, b):
        law = LinearDecay(3.0)
        direct = law.decay(v, a + b)
        stepped = law.decay(law.decay(v, a), b)
        assert stepped == pytest.approx(direct, rel=1e-9, abs=1e-6)

    @given(values, ages, ages)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_age(self, v, a, b):
        law = LinearDecay(2.0)
        lo, hi = sorted((a, b))
        assert law.decay(v, hi) <= law.decay(v, lo)


class TestExponentialDecay:
    def test_half_life(self):
        law = ExponentialDecay(half_life=10.0)
        assert law.decay(100.0, 10.0) == pytest.approx(50.0)
        assert law.half_life == pytest.approx(10.0)

    def test_tau(self):
        law = ExponentialDecay(tau=5.0)
        assert law.decay(math.e, 5.0) == pytest.approx(1.0)

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            ExponentialDecay()
        with pytest.raises(ValueError):
            ExponentialDecay(tau=1.0, half_life=1.0)
        with pytest.raises(ValueError):
            ExponentialDecay(tau=-1.0)

    @given(values, ages, ages)
    @settings(max_examples=60, deadline=None)
    def test_composes(self, v, a, b):
        law = ExponentialDecay(tau=7.0)
        direct = law.decay(v, a + b)
        stepped = law.decay(law.decay(v, a), b)
        assert stepped == pytest.approx(direct, rel=1e-9, abs=1e-6)

    def test_horizon_finite(self):
        assert ExponentialDecay(tau=2.0).horizon() == pytest.approx(80.0)

    def test_rejects_negative_age(self):
        with pytest.raises(ValueError):
            ExponentialDecay(tau=1.0).decay(1.0, -0.5)


class TestVectorizedLaws:
    """decay_array (and decay_factor) must agree with scalar decay."""

    @pytest.mark.parametrize("law", [
        LinearDecay(rate=3.0),
        ExponentialDecay(tau=5.0),
        SlidingExpiry(window=10.0),
    ])
    def test_decay_array_matches_scalar(self, law):
        import numpy as np

        values_arr = np.array([0.0, 1.0, 10.0, 1e6, 123.456])
        ages_arr = np.array([0.0, 0.5, 5.0, 9.999, 10.0, 100.0])
        for age in ages_arr.tolist():
            out = law.decay_array(values_arr, age)
            expected = [law.decay(v, age) for v in values_arr.tolist()]
            assert out.tolist() == pytest.approx(expected)

    def test_decay_array_elementwise_ages(self):
        import numpy as np

        law = ExponentialDecay(tau=2.0)
        values_arr = np.array([1.0, 2.0, 3.0])
        ages_arr = np.array([0.0, 2.0, 4.0])
        out = law.decay_array(values_arr, ages_arr)
        expected = [law.decay(v, a)
                    for v, a in zip(values_arr.tolist(), ages_arr.tolist())]
        assert out.tolist() == pytest.approx(expected)

    def test_exponential_decay_factor_is_multiplicative(self):
        import numpy as np

        law = ExponentialDecay(tau=3.0)
        ages_arr = np.array([0.0, 1.0, 10.0])
        factors = law.decay_factor(ages_arr)
        assert (7.0 * factors).tolist() == pytest.approx(
            [law.decay(7.0, a) for a in ages_arr.tolist()]
        )
        # Only the exponential law advertises the value-linear fast path.
        assert not hasattr(LinearDecay(1.0), "decay_factor")
        assert not hasattr(SlidingExpiry(1.0), "decay_factor")


class TestSlidingExpiry:
    def test_step_function(self):
        law = SlidingExpiry(window=10.0)
        assert law.decay(42.0, 9.99) == 42.0
        assert law.decay(42.0, 10.0) == 0.0

    def test_horizon_is_window(self):
        assert SlidingExpiry(3.0).horizon() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingExpiry(0.0)
        with pytest.raises(ValueError):
            SlidingExpiry(1.0).decay(1.0, -1.0)
