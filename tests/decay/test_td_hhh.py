"""Tests for repro.decay.td_hhh — the windowless HHH detector."""

import math
import random

import pytest

from repro.decay.laws import ExponentialDecay
from repro.decay.td_hhh import TimeDecayingHHH
from repro.net.prefix import Prefix


def feed_constant(det, key, bytes_per_s, duration, start=0.0, pps=10):
    for i in range(int(duration * pps)):
        det.update(key, bytes_per_s / pps, start + i / pps)


class TestDetection:
    def test_heavy_leaf_detected(self):
        det = TimeDecayingHHH(law=ExponentialDecay(tau=10.0))
        feed_constant(det, 0x0A000001, 1000.0, duration=40.0)
        feed_constant(det, 0x0B000001, 100.0, duration=40.0)
        result = det.query(0.5, now=40.0)
        assert Prefix(0x0A000001, 32) in result.prefixes

    def test_aggregate_detected_at_slash24(self):
        det = TimeDecayingHHH(law=ExponentialDecay(tau=10.0))
        rng = random.Random(0)
        # 40 hosts in one /24, individually light.
        for i in range(4000):
            host = 0x0A000000 + rng.randrange(40)
            det.update(host, 10.0, i * 0.01)
            det.update(0x30000000 + rng.randrange(1 << 20), 10.0, i * 0.01)
        result = det.query(0.3, now=40.0)
        assert Prefix(0x0A000000, 24) in result.prefixes
        assert not result.prefixes_at_length(32)

    def test_discounting_suppresses_ancestors(self):
        det = TimeDecayingHHH(law=ExponentialDecay(tau=10.0))
        feed_constant(det, 0x0A000001, 1000.0, duration=40.0)
        result = det.query(0.5, now=40.0)
        assert Prefix(0x0A000000, 24) not in result.prefixes

    def test_decayed_total_steady_state(self):
        tau = 5.0
        det = TimeDecayingHHH(law=ExponentialDecay(tau=tau))
        feed_constant(det, 1, 100.0, duration=60.0)
        # total ~= rate * tau at steady state.
        assert det.decayed_total(60.0) == pytest.approx(100.0 * tau, rel=0.1)

    def test_detection_fades_after_flow_stops(self):
        det = TimeDecayingHHH(law=ExponentialDecay(tau=5.0))
        feed_constant(det, 0x0A000001, 1000.0, duration=20.0)
        feed_constant(det, 0x0B000001, 900.0, duration=60.0, start=0.0)
        at_stop = det.query(0.4, now=20.0)
        assert Prefix(0x0A000001, 32) in at_stop.prefixes
        later = det.query(0.4, now=50.0)
        assert Prefix(0x0A000001, 32) not in later.prefixes

    def test_sees_boundary_straddling_episode(self):
        """The headline behaviour: an episode straddling a disjoint-window
        boundary is visible to the decayed detector at its midpoint."""
        det = TimeDecayingHHH(law=ExponentialDecay(tau=10.0))
        # Background.
        rng = random.Random(1)
        for i in range(3000):
            det.update(rng.randrange(1 << 31), 100.0, i * 0.01)
        # Episode from t=25 to t=35 (straddles the t=30 boundary of a
        # 10-second disjoint grid) at ~5x background rate.
        for i in range(1000):
            det.update(0x0A000001, 500.0, 25.0 + i * 0.01)
        result = det.query(0.2, now=33.0)
        assert Prefix(0x0A000001, 32) in result.prefixes


class TestModes:
    def test_sampled_updates_cheaper(self):
        det = TimeDecayingHHH(sample_levels=True, seed=3)
        for i in range(100):
            det.update(1, 1.0, i * 0.1)
        assert det.packets == 100

    def test_sampled_mode_still_detects(self):
        det = TimeDecayingHHH(
            law=ExponentialDecay(tau=10.0), sample_levels=True, seed=4,
            counters_per_level=128,
        )
        feed_constant(det, 0x0A000001, 1000.0, duration=40.0, pps=50)
        rng = random.Random(5)
        for i in range(2000):
            det.update(rng.randrange(1 << 31), 20.0, i * 0.02)
        result = det.query(0.3, now=40.0)
        assert Prefix(0x0A000001, 32) in result.prefixes


class TestInterface:
    def test_phi_validation(self):
        det = TimeDecayingHHH()
        with pytest.raises(ValueError):
            det.query(0.0, now=1.0)
        with pytest.raises(ValueError):
            det.query(1.5, now=1.0)

    def test_counters_validation(self):
        with pytest.raises(ValueError):
            TimeDecayingHHH(counters_per_level=0)

    def test_empty_query(self):
        det = TimeDecayingHHH()
        assert len(det.query(0.1, now=0.0)) == 0

    def test_estimate(self):
        det = TimeDecayingHHH(law=ExponentialDecay(tau=10.0))
        det.update(0x0A000001, 100.0, 0.0)
        assert det.estimate(0x0A000001, 0, now=0.0) == pytest.approx(100.0)
        assert det.estimate(0x0A0000FF, 1, now=0.0) == pytest.approx(100.0)

    def test_num_counters(self):
        det = TimeDecayingHHH(counters_per_level=10)
        assert det.num_counters == 10 * det.hierarchy.num_levels + 1
