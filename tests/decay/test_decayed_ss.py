"""Tests for repro.decay.decayed_spacesaving."""

import random

import pytest

from repro.decay.decayed_counter import ExactDecayedCounts
from repro.decay.decayed_spacesaving import DecayedSpaceSaving
from repro.decay.laws import ExponentialDecay, LinearDecay


class TestDecayedSpaceSaving:
    def test_exact_under_capacity(self):
        ss = DecayedSpaceSaving(8, ExponentialDecay(tau=10.0))
        ss.update(1, 100.0, ts=0.0)
        ss.update(2, 50.0, ts=0.0)
        assert ss.estimate(1, now=0.0) == pytest.approx(100.0)
        assert ss.guaranteed(1, now=0.0) == pytest.approx(100.0)

    def test_eviction_inherits_decayed_min(self):
        ss = DecayedSpaceSaving(2, LinearDecay(rate=1.0))
        ss.update(1, 10.0, ts=0.0)
        ss.update(2, 20.0, ts=0.0)
        # At t=5 key 1 has decayed to 5; key 3 inherits that.
        ss.update(3, 1.0, ts=5.0)
        assert ss.estimate(3, now=5.0) == pytest.approx(6.0)
        assert ss.guaranteed(3, now=5.0) == pytest.approx(1.0)
        assert len(ss) == 2

    def test_never_underestimates_vs_exact(self):
        rng = random.Random(0)
        law = ExponentialDecay(tau=5.0)
        ss = DecayedSpaceSaving(32, law)
        exact = ExactDecayedCounts(law)
        for i in range(4000):
            key = rng.randrange(200)
            w = float(rng.randrange(1, 20))
            ts = i * 0.01
            ss.update(key, w, ts)
            exact.update(key, w, ts)
        now = 40.0
        for key in range(200):
            assert ss.estimate(key, now) >= exact.estimate(key, now) - 1e-6

    def test_heavy_decayed_keys_tracked(self):
        rng = random.Random(1)
        law = ExponentialDecay(tau=5.0)
        ss = DecayedSpaceSaving(32, law)
        exact = ExactDecayedCounts(law)
        for i in range(4000):
            key = 7 if rng.random() < 0.3 else rng.randrange(500)
            ts = i * 0.01
            ss.update(key, 10.0, ts)
            exact.update(key, 10.0, ts)
        now = 40.0
        total = sum(exact.query(0.0, now).values())
        report = ss.query(0.1 * total, now)
        assert 7 in report

    def test_query_and_items(self):
        ss = DecayedSpaceSaving(4, LinearDecay(rate=1.0))
        ss.update(1, 100.0, ts=0.0)
        ss.update(2, 3.0, ts=0.0)
        assert set(ss.query(50.0, now=0.0)) == {1}
        assert set(ss.items(now=0.0)) == {1, 2}

    def test_decayed_values_in_items(self):
        ss = DecayedSpaceSaving(4, LinearDecay(rate=10.0))
        ss.update(1, 100.0, ts=0.0)
        assert ss.items(now=5.0)[1] == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedSpaceSaving(0, LinearDecay(1.0))

    def test_num_counters(self):
        assert DecayedSpaceSaving(16, LinearDecay(1.0)).num_counters == 16
