"""Tests for both time-decaying Bloom filter variants."""

import pytest

from repro.decay.laws import ExponentialDecay, LinearDecay
from repro.decay.ondemand_tdbf import OnDemandTDBF
from repro.decay.tdbf import TimeDecayingBloomFilter


class TestSynchronousTDBF:
    def make(self, **kw):
        kw.setdefault("cells", 1024)
        kw.setdefault("hashes", 3)
        kw.setdefault("law", ExponentialDecay(tau=10.0))
        return TimeDecayingBloomFilter(**kw)

    def test_requires_law(self):
        with pytest.raises(ValueError):
            TimeDecayingBloomFilter(cells=10, hashes=2, law=None)

    def test_insert_then_estimate(self):
        f = self.make()
        f.update(1, 100.0, ts=0.0)
        assert f.estimate(1) >= 100.0

    def test_estimate_decays_with_time(self):
        f = self.make()
        f.update(1, 100.0, ts=0.0)
        early = f.estimate(1, now=1.0)
        late = f.estimate(1, now=20.0)
        assert late < early
        assert late == pytest.approx(100.0 * pow(2.718281828, -2), rel=0.01)

    def test_clock_never_goes_backwards(self):
        f = self.make()
        f.tick(5.0)
        with pytest.raises(ValueError):
            f.tick(4.0)

    def test_contains_with_threshold(self):
        f = self.make(law=LinearDecay(rate=10.0))
        f.update(3, 50.0, ts=0.0)
        assert f.contains(3, now=1.0, threshold=30.0)
        assert not f.contains(3, now=4.9, threshold=30.0)

    def test_never_underestimates_single_key(self):
        # Bloom collisions only ever add mass: min-cell is an overestimate.
        f = self.make(cells=64, hashes=2)
        for key in range(50):
            f.update(key, 10.0, ts=0.0)
        assert f.estimate(7, now=0.0) >= 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(cells=0)
        f = self.make()
        with pytest.raises(ValueError):
            f.update(1, -1.0, ts=0.0)


class TestOnDemandTDBF:
    def make(self, **kw):
        kw.setdefault("cells", 1024)
        kw.setdefault("hashes", 3)
        kw.setdefault("law", ExponentialDecay(tau=10.0))
        return OnDemandTDBF(**kw)

    def test_requires_law(self):
        with pytest.raises(ValueError):
            OnDemandTDBF(cells=10, hashes=2, law=None)

    def test_lazy_decay_matches_synchronous(self):
        """The on-demand filter must agree with the ticking filter on a
        shared workload (composable law => lazy application is exact)."""
        law = ExponentialDecay(tau=5.0)
        sync = TimeDecayingBloomFilter(cells=512, hashes=3, law=law)
        lazy = OnDemandTDBF(cells=512, hashes=3, law=law)
        workload = [(1, 10.0, 0.0), (2, 20.0, 1.0), (1, 5.0, 3.0), (3, 7.0, 4.5)]
        for key, w, ts in workload:
            sync.update(key, w, ts)
            lazy.update(key, w, ts)
        for key in (1, 2, 3, 99):
            assert lazy.estimate(key, now=6.0) == pytest.approx(
                sync.estimate(key, now=6.0), rel=1e-9
            )

    def test_estimate_is_read_only(self):
        f = self.make()
        f.update(1, 100.0, ts=0.0)
        first = f.estimate(1, now=5.0)
        second = f.estimate(1, now=5.0)
        assert first == second

    def test_out_of_order_update_keeps_one_sided(self):
        f = self.make()
        f.update(1, 100.0, ts=10.0)
        f.update(1, 50.0, ts=8.0)  # late packet
        # The late mass is decayed by its lateness, never inflated.
        estimate = f.estimate(1, now=10.0)
        assert 100.0 < estimate <= 150.0

    def test_decay_drains_to_zero(self):
        f = self.make(law=LinearDecay(rate=100.0))
        f.update(5, 50.0, ts=0.0)
        assert f.estimate(5, now=1.0) == 0.0

    def test_no_reset_needed_for_long_streams(self):
        """The Section 3 claim: decay prevents counter blow-up without any
        window reset."""
        f = self.make(law=ExponentialDecay(tau=1.0), cells=256, hashes=3)
        for i in range(5000):
            f.update(i % 50, 10.0, ts=i * 0.01)
        # Steady state: estimate bounded by in-rate * tau, not by stream length.
        est = f.estimate(25, now=50.0)
        assert est < 5000  # far below total inserted mass (50_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(hashes=0)
        f = self.make()
        with pytest.raises(ValueError):
            f.update(1, -5.0, ts=0.0)
