"""Tests for repro.decay.sliding_hh."""

import pytest

from repro.decay.sliding_hh import SlidingWindowSpaceSaving


class TestSlidingWindowSpaceSaving:
    def test_recent_traffic_counted(self):
        sw = SlidingWindowSpaceSaving(window=10.0, num_buckets=10)
        sw.update(1, 100, ts=0.5)
        assert sw.estimate(1, now=1.0) == pytest.approx(100.0)

    def test_old_traffic_expires(self):
        sw = SlidingWindowSpaceSaving(window=10.0, num_buckets=10)
        sw.update(1, 100, ts=0.5)
        assert sw.estimate(1, now=25.0) == 0.0

    def test_partial_expiry_by_buckets(self):
        sw = SlidingWindowSpaceSaving(window=10.0, num_buckets=10)
        sw.update(1, 100, ts=0.5)   # bucket 0
        sw.update(1, 50, ts=8.5)    # bucket 8
        # At t=11.5, bucket 0 has fallen out of the window.
        assert sw.estimate(1, now=11.5) == pytest.approx(50.0)

    def test_query_aggregates_buckets(self):
        sw = SlidingWindowSpaceSaving(window=5.0, num_buckets=5)
        for second in range(5):
            sw.update(1, 10, ts=second + 0.5)
            sw.update(2, 1, ts=second + 0.5)
        report = sw.query(30.0, now=4.9)
        assert 1 in report and 2 not in report
        assert report[1] == pytest.approx(50.0)

    def test_window_slides_continuously(self):
        sw = SlidingWindowSpaceSaving(window=3.0, num_buckets=3)
        sw.update(1, 30, ts=0.5)
        sw.update(1, 20, ts=1.5)
        sw.update(1, 10, ts=2.5)
        assert sw.estimate(1, now=2.9) == pytest.approx(60.0)
        assert sw.estimate(1, now=4.2) == pytest.approx(30.0)  # first bucket gone

    def test_reordered_packet_folded_into_newest_bucket(self):
        sw = SlidingWindowSpaceSaving(window=10.0, num_buckets=10)
        sw.update(1, 10, ts=5.5)
        sw.update(1, 10, ts=5.2)  # slightly late
        assert sw.estimate(1, now=6.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowSpaceSaving(window=0.0)
        with pytest.raises(ValueError):
            SlidingWindowSpaceSaving(window=1.0, num_buckets=0)

    def test_num_counters(self):
        sw = SlidingWindowSpaceSaving(window=10.0, num_buckets=10,
                                      capacity_per_bucket=32)
        assert sw.num_counters == 11 * 32
