"""Tests for repro.dataplane.mappings."""

from repro.dataplane.mappings import (
    map_hashpipe,
    map_ondemand_tdbf,
    map_rhhh,
    map_sliding_window_hh,
    map_spacesaving_cache,
)
from repro.dataplane.pipeline import PipelineConstraints


class TestMappings:
    def test_hashpipe_stage_per_table(self):
        program = map_hashpipe(stage_slots=256, stages=4)
        assert len(program.stages) == 4
        assert program.needs_control_plane_reset
        assert program.fits(PipelineConstraints())

    def test_rhhh_stage_per_level_plus_rng(self):
        program = map_rhhh(counters_per_level=128, num_levels=5)
        assert len(program.stages) == 6
        assert program.needs_control_plane_reset

    def test_tdbf_needs_timestamps_not_resets(self):
        program = map_ondemand_tdbf(cells=4096, hashes=4)
        assert program.needs_timestamps
        assert not program.needs_control_plane_reset
        assert len(program.stages) == 4

    def test_tdbf_cells_carry_value_and_stamp(self):
        program = map_ondemand_tdbf(cells=1024, hashes=2)
        cell_bits = program.stages[0].arrays[0].cell_bits
        assert cell_bits == 32 + 48

    def test_spacesaving_single_stage(self):
        program = map_spacesaving_cache(capacity=512)
        assert len(program.stages) == 1
        assert program.needs_control_plane_reset

    def test_sliding_window_bucket_stages(self):
        program = map_sliding_window_hh(num_buckets=5, capacity_per_bucket=64)
        assert len(program.stages) == 6  # clock + 5 buckets
        assert program.needs_timestamps

    def test_all_fit_default_target_at_paper_scale(self):
        constraints = PipelineConstraints()
        assert map_hashpipe(256, 4).fits(constraints)
        assert map_rhhh(128, 5).fits(constraints)
        assert map_ondemand_tdbf(4096, 4).fits(constraints)
        assert map_spacesaving_cache(256).fits(constraints)

    def test_sram_accounting_scales_with_size(self):
        small = map_hashpipe(64, 2).profile().sram_bits
        large = map_hashpipe(256, 2).profile().sram_bits
        assert large == 4 * small
