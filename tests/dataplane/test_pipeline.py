"""Tests for repro.dataplane.pipeline."""

import pytest

from repro.dataplane.pipeline import (
    PipelineConstraints,
    PipelineProgram,
    RegisterArray,
    StageSpec,
)


def stage(entries=256, bits=64, hashes=1):
    return StageSpec(arrays=(RegisterArray("r", entries, bits),), hash_units=hashes)


class TestRegisterArray:
    def test_sram_bits(self):
        assert RegisterArray("r", 100, 64).sram_bits == 6400

    def test_single_access_rule(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 10, 32, accesses_per_packet=2)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            RegisterArray("r", 0, 32)


class TestStageSpec:
    def test_aggregates(self):
        s = StageSpec(
            arrays=(RegisterArray("a", 10, 32), RegisterArray("b", 10, 32)),
            hash_units=2,
        )
        assert s.sram_bits == 640
        assert s.register_accesses == 2


class TestPipelineProgram:
    def test_fits_within_constraints(self):
        program = PipelineProgram("ok")
        for _ in range(4):
            program.add_stage(stage())
        assert program.fits(PipelineConstraints())

    def test_too_many_stages(self):
        program = PipelineProgram("deep")
        for _ in range(20):
            program.add_stage(stage())
        problems = program.validate(PipelineConstraints(max_stages=12))
        assert any("stages" in p for p in problems)

    def test_sram_overflow(self):
        program = PipelineProgram("fat").add_stage(stage(entries=10**9))
        assert not program.fits(PipelineConstraints())

    def test_hash_budget(self):
        program = PipelineProgram("hashy").add_stage(stage(hashes=5))
        problems = program.validate(PipelineConstraints(max_hash_units_per_stage=2))
        assert any("hash" in p for p in problems)

    def test_profile(self):
        program = PipelineProgram("p", needs_timestamps=True)
        program.add_stage(stage(entries=128, bits=64))
        program.add_stage(stage(entries=128, bits=64))
        profile = program.profile()
        assert profile.stages == 2
        assert profile.sram_bits == 2 * 128 * 64
        assert profile.hash_units == 2
        assert profile.register_accesses == 2
        assert profile.needs_timestamps

    def test_profile_row(self):
        program = PipelineProgram("p").add_stage(stage())
        row = program.profile().to_row()
        assert row["detector"] == "p"
        assert row["stages"] == 1

    def test_constraints_validation(self):
        with pytest.raises(ValueError):
            PipelineConstraints(max_stages=0)
