"""Tests for the Section 3 comparison harness."""

import pytest

from repro.analysis.decay_experiment import DecayComparisonExperiment


@pytest.fixture(scope="module")
def comparison(request):
    from repro.trace import presets

    trace = presets.caida_like_day(0, duration=30.0)
    exp = DecayComparisonExperiment(
        window_size=5.0, phi=0.05, counters_per_level=64
    )
    return exp.run(trace)


class TestDecayComparison:
    def test_all_detectors_scored(self, comparison):
        names = {s.name for s in comparison.scores}
        assert names == {
            "disjoint-exact",
            "disjoint-rhhh",
            "disjoint-perlevel-ss",
            "td-hhh",
        }

    def test_scores_bounded(self, comparison):
        for score in comparison.scores:
            assert 0.0 <= score.occurrence_recall <= 1.0
            assert 0.0 <= score.precision <= 1.0
            assert 0.0 <= score.hidden_recall <= 1.0

    def test_disjoint_exact_misses_hidden_by_construction(self, comparison):
        score = comparison.score_for("disjoint-exact")
        assert score.hidden_recall == 0.0
        assert score.window_reset

    def test_td_hhh_recovers_hidden(self, comparison):
        """The Section 3 thesis: the windowless detector sees (most of)
        what disjoint windows hide."""
        td = comparison.score_for("td-hhh")
        exact = comparison.score_for("disjoint-exact")
        assert not td.window_reset
        if comparison.num_hidden_occurrences > 0:
            assert td.hidden_recall > exact.hidden_recall
            assert td.hidden_recall > 0.3

    def test_td_overall_recall_competitive(self, comparison):
        td = comparison.score_for("td-hhh")
        assert td.occurrence_recall > 0.5

    def test_resources_recorded(self, comparison):
        td = comparison.score_for("td-hhh")
        assert td.counters > 0
        assert td.stages and td.stages >= 1
        assert td.sram_kib and td.sram_kib > 0

    def test_truth_statistics(self, comparison):
        assert comparison.num_truth_occurrences > 0
        assert 0 <= comparison.num_hidden_occurrences <= comparison.num_truth_occurrences

    def test_table_renders(self, comparison):
        table = comparison.to_table()
        assert "td-hhh" in table
        assert "hidden_recall" in table

    def test_unknown_detector_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison.score_for("nope")
