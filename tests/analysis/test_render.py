"""Tests for repro.analysis.render."""

import pytest

from repro.analysis.render import ascii_bars, ascii_cdf, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        rows = [{"a": 1, "bb": "x"}, {"a": 22, "bb": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "bb" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_floats_formatted(self):
        text = format_table([{"v": 1.23456}])
        assert "1.235" in text


class TestAsciiCdf:
    def test_renders_points(self):
        points = [(i / 10, i / 10) for i in range(11)]
        art = ascii_cdf(points, title="test curve")
        assert "test curve" in art
        assert "*" in art

    def test_empty(self):
        assert ascii_cdf([]) == "(empty CDF)"

    def test_single_point(self):
        assert "*" in ascii_cdf([(0.5, 1.0)])


class TestAsciiBars:
    def test_bars_scale(self):
        art = ascii_bars(["a", "b"], [10.0, 20.0])
        lines = art.splitlines()
        assert lines[1].count("#") > lines[0].count("#")
        assert "10.0%" in lines[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_bars([], []) == "(no bars)"

    def test_zero_values(self):
        art = ascii_bars(["a"], [0.0])
        assert "0.0%" in art
