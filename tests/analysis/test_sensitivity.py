"""Tests for the Figure 3 harness."""

import pytest

from repro.analysis.sensitivity_experiment import (
    DEFAULT_DELTAS,
    WindowSensitivityExperiment,
)


class TestWindowSensitivityExperiment:
    def test_default_deltas_match_paper(self):
        assert DEFAULT_DELTAS == tuple(round(0.01 * k, 3) for k in range(1, 11))

    def test_samples_per_delta(self, small_trace):
        exp = WindowSensitivityExperiment(
            baseline_size=4.0, deltas=(0.05, 0.1), phi=0.05
        )
        result = exp.run(small_trace)
        assert set(result.samples) == {0.05, 0.1}
        # 20-second trace, 4-second baseline -> about 5 windows each.
        assert all(len(v) >= 4 for v in result.samples.values())

    def test_similarities_bounded(self, small_trace):
        exp = WindowSensitivityExperiment(baseline_size=4.0, deltas=(0.1,))
        result = exp.run(small_trace)
        assert all(0.0 <= s <= 1.0 for s in result.samples[0.1])

    def test_zero_delta_invalid(self):
        with pytest.raises(ValueError):
            WindowSensitivityExperiment(deltas=(0.0,))
        with pytest.raises(ValueError):
            WindowSensitivityExperiment(baseline_size=1.0, deltas=(1.0,))
        with pytest.raises(ValueError):
            WindowSensitivityExperiment(baseline_size=0.0)

    def test_larger_delta_no_more_similar(self, small_trace):
        """Shrinking more can only change the set as much or more (on
        average) — the paper's monotonicity."""
        exp = WindowSensitivityExperiment(
            baseline_size=4.0, deltas=(0.02, 0.4), phi=0.05
        )
        result = exp.run(small_trace)
        rows = {r.delta_s: r for r in result.rows()}
        assert rows[0.4].mean_similarity <= rows[0.02].mean_similarity + 1e-9

    def test_rows_and_rendering(self, small_trace):
        exp = WindowSensitivityExperiment(baseline_size=4.0, deltas=(0.1,))
        result = exp.run(small_trace)
        rows = result.rows()
        assert rows[0].delta_s == 0.1
        assert "delta_ms" in result.to_table()
        assert "CDF" in result.to_cdf_plot(0.1)

    def test_cdf_accessor(self, small_trace):
        exp = WindowSensitivityExperiment(baseline_size=4.0, deltas=(0.1,))
        result = exp.run(small_trace)
        cdf = result.cdf(0.1)
        assert 0.0 <= cdf.mean <= 1.0
