"""Tests for the Figure 2 harness."""

import pytest

from repro.analysis.hidden_experiment import HiddenHHHExperiment


class TestHiddenHHHExperiment:
    def test_grid_covered(self, small_trace):
        exp = HiddenHHHExperiment(
            window_sizes=(2.0, 4.0), thresholds=(0.05, 0.10)
        )
        result = exp.run(small_trace, "t")
        assert len(result.rows) == 4
        combos = {(r.window_size, r.phi) for r in result.rows}
        assert combos == {(2.0, 0.05), (2.0, 0.10), (4.0, 0.05), (4.0, 0.10)}

    def test_hidden_bounded_by_total(self, small_trace):
        exp = HiddenHHHExperiment(window_sizes=(2.0,), thresholds=(0.05,))
        for row in exp.run(small_trace, "t").rows:
            assert 0 <= row.hidden <= row.total
            assert 0.0 <= row.hidden_percent <= 100.0

    def test_bursty_hides_more_than_calm(self, small_trace, calm_small_trace):
        exp = HiddenHHHExperiment(window_sizes=(4.0,), thresholds=(0.05,))
        bursty = exp.run(small_trace, "bursty").rows[0].hidden_percent
        calm = exp.run(calm_small_trace, "calm").rows[0].hidden_percent
        assert bursty >= calm

    def test_occurrences_mode(self, small_trace):
        exp = HiddenHHHExperiment(
            window_sizes=(4.0,), thresholds=(0.05,), mode="occurrences"
        )
        row = exp.run(small_trace, "t").rows[0]
        assert row.mode == "occurrences"
        assert row.total > 0

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            HiddenHHHExperiment(mode="bogus")

    def test_run_days_pools_rows(self, small_trace, calm_small_trace):
        exp = HiddenHHHExperiment(window_sizes=(4.0,), thresholds=(0.05,))
        result = exp.run_days([small_trace, calm_small_trace], ["a", "b"])
        assert {r.label for r in result.rows} == {"a", "b"}
        with pytest.raises(ValueError):
            exp.run_days([small_trace], ["a", "b"])

    def test_rendering(self, small_trace):
        exp = HiddenHHHExperiment(window_sizes=(4.0,), thresholds=(0.05,))
        result = exp.run(small_trace, "t")
        assert "hidden_%" in result.to_table()
        assert "#" in result.to_bars() or "0.0%" in result.to_bars()
        assert result.max_hidden_percent() >= 0.0

    def test_rows_for_filter(self, small_trace):
        exp = HiddenHHHExperiment(window_sizes=(2.0, 4.0), thresholds=(0.05,))
        result = exp.run(small_trace, "t")
        assert len(result.rows_for(window_size=2.0)) == 1
        assert len(result.rows_for(phi=0.05)) == 2
