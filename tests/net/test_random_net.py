"""Unit tests for repro.net.random_net."""

import random

import pytest

from repro.net.random_net import RandomAddressSpace


class TestRandomAddressSpace:
    def test_deterministic_under_seed(self):
        a = RandomAddressSpace(rng=random.Random(5))
        b = RandomAddressSpace(rng=random.Random(5))
        assert a.networks == b.networks
        assert a.subnets == b.subnets

    def test_networks_are_distinct_and_masked(self):
        space = RandomAddressSpace(num_networks=32, rng=random.Random(1))
        assert len(set(space.networks)) == 32
        for net in space.networks:
            assert net & ~0xFF000000 == 0  # /8 values only

    def test_subnets_nested_in_networks(self):
        space = RandomAddressSpace(
            num_networks=8, subnets_per_network=4, rng=random.Random(2)
        )
        nets = set(space.networks)
        for subnet in space.subnets:
            assert (subnet & 0xFF000000) in nets

    def test_draw_host_lands_in_some_subnet(self):
        space = RandomAddressSpace(rng=random.Random(3))
        subnets = set(space.subnets)
        for _ in range(100):
            host = space.draw_host()
            assert (host & 0xFFFFFF00) in subnets

    def test_draw_hosts_count(self):
        space = RandomAddressSpace(rng=random.Random(4))
        assert len(space.draw_hosts(17)) == 17

    def test_network_of(self):
        space = RandomAddressSpace(rng=random.Random(6))
        host = space.draw_host()
        assert space.network_of(host).contains_address(host)
        assert space.network_of(host).length == 8

    def test_prefix_accessors(self):
        space = RandomAddressSpace(
            num_networks=3, subnets_per_network=2, rng=random.Random(7)
        )
        assert len(space.network_prefixes()) == 3
        assert all(p.length == 8 for p in space.network_prefixes())
        assert all(p.length == 24 for p in space.subnet_prefixes())

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomAddressSpace(network_length=24, subnet_length=8)
        with pytest.raises(ValueError):
            RandomAddressSpace(num_networks=0)

    def test_subnet_count_capped_by_space(self):
        # 4 subnets requested inside /30-sized room (2 bits) -> capped at 4.
        space = RandomAddressSpace(
            num_networks=1, network_length=22, subnets_per_network=10,
            subnet_length=24, rng=random.Random(8),
        )
        assert len(space.subnets) == 4
