"""Unit tests for repro.net.ipv4."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ipv4 import IPV4_MAX, IPv4Address, format_ipv4, parse_ipv4


class TestParse:
    def test_basic(self):
        assert parse_ipv4("10.0.0.1") == 0x0A000001

    def test_zero(self):
        assert parse_ipv4("0.0.0.0") == 0

    def test_broadcast(self):
        assert parse_ipv4("255.255.255.255") == IPV4_MAX

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1..2.3", "-1.0.0.0"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ipv4(bad)


class TestFormat:
    def test_basic(self):
        assert format_ipv4(0x0A000001) == "10.0.0.1"

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(IPV4_MAX + 1)
        with pytest.raises(ValueError):
            format_ipv4(-1)

    @given(st.integers(min_value=0, max_value=IPV4_MAX))
    def test_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestIPv4Address:
    def test_from_string(self):
        addr = IPv4Address.from_string("192.168.1.7")
        assert addr.octets == (192, 168, 1, 7)
        assert str(addr) == "192.168.1.7"
        assert int(addr) == 0xC0A80107

    def test_from_octets_matches_from_string(self):
        assert IPv4Address.from_octets(8, 8, 4, 4) == IPv4Address.from_string(
            "8.8.4.4"
        )

    def test_octet_validation(self):
        with pytest.raises(ValueError):
            IPv4Address.from_octets(256, 0, 0, 0)

    def test_value_validation(self):
        with pytest.raises(ValueError):
            IPv4Address(IPV4_MAX + 1)

    def test_ordering_matches_integer_order(self):
        a = IPv4Address.from_string("1.0.0.0")
        b = IPv4Address.from_string("2.0.0.0")
        assert a < b

    def test_hashable_and_usable_in_sets(self):
        s = {IPv4Address(1), IPv4Address(1), IPv4Address(2)}
        assert len(s) == 2
