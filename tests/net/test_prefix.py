"""Unit and property tests for repro.net.prefix."""

import pytest
from hypothesis import given, strategies as st

from repro.net.ipv4 import IPV4_MAX
from repro.net.prefix import (
    Prefix,
    common_prefix_length,
    mask_for_length,
    parse_prefix,
    prefix_contains,
    truncate,
)

addresses = st.integers(min_value=0, max_value=IPV4_MAX)
lengths = st.integers(min_value=0, max_value=32)


class TestMask:
    def test_known_values(self):
        assert mask_for_length(0) == 0
        assert mask_for_length(8) == 0xFF000000
        assert mask_for_length(24) == 0xFFFFFF00
        assert mask_for_length(32) == 0xFFFFFFFF

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mask_for_length(33)
        with pytest.raises(ValueError):
            mask_for_length(-1)

    @given(lengths)
    def test_mask_has_length_leading_ones(self, length):
        mask = mask_for_length(length)
        assert bin(mask).count("1") == length
        # All set bits are at the top.
        if length:
            assert mask >> (32 - length) == (1 << length) - 1


class TestTruncate:
    @given(addresses, lengths)
    def test_idempotent(self, addr, length):
        once = truncate(addr, length)
        assert truncate(once, length) == once

    @given(addresses, lengths)
    def test_truncated_contains_original(self, addr, length):
        assert prefix_contains(truncate(addr, length), length, addr)


class TestCommonPrefixLength:
    def test_identical(self):
        assert common_prefix_length(5, 5) == 32

    def test_differs_at_top_bit(self):
        assert common_prefix_length(0, 0x80000000) == 0

    def test_adjacent(self):
        assert common_prefix_length(0x0A000000, 0x0A000001) == 31

    @given(addresses, addresses)
    def test_symmetric(self, a, b):
        assert common_prefix_length(a, b) == common_prefix_length(b, a)

    @given(addresses, addresses)
    def test_agreement_above_common_length(self, a, b):
        k = common_prefix_length(a, b)
        if k:
            assert truncate(a, k) == truncate(b, k)


class TestParsePrefix:
    def test_with_length(self):
        p = parse_prefix("10.0.0.0/8")
        assert p == Prefix(0x0A000000, 8)

    def test_bare_address_is_host(self):
        assert parse_prefix("1.2.3.4").length == 32

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.1/8")

    @pytest.mark.parametrize("bad", ["10.0.0.0/33", "10.0.0.0/x", "10.0.0.0/"])
    def test_rejects_bad_length(self, bad):
        with pytest.raises(ValueError):
            parse_prefix(bad)


class TestPrefix:
    def test_validates_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(0x0A000001, 8)

    def test_from_address_masks(self):
        p = Prefix.from_address(0x0A0B0C0D, 16)
        assert p == Prefix(0x0A0B0000, 16)

    def test_str(self):
        assert str(Prefix(0x0A000000, 8)) == "10.0.0.0/8"

    def test_num_addresses(self):
        assert Prefix(0, 0).num_addresses == 2**32
        assert Prefix(0x0A000000, 24).num_addresses == 256

    def test_first_last_address(self):
        p = Prefix(0x0A000000, 24)
        assert p.first_address == 0x0A000000
        assert p.last_address == 0x0A0000FF

    def test_parent(self):
        p = Prefix(0x0A800000, 9)
        assert p.parent() == Prefix(0x0A000000, 8)
        assert p.parent(9) == Prefix(0, 0)
        with pytest.raises(ValueError):
            p.parent(10)

    def test_children_partition_parent(self):
        p = Prefix(0x0A000000, 8)
        left, right = p.children()
        assert left.length == right.length == 9
        assert p.contains_prefix(left) and p.contains_prefix(right)
        assert left != right
        assert left.num_addresses + right.num_addresses == p.num_addresses

    def test_children_of_host_raises(self):
        with pytest.raises(ValueError):
            Prefix(1, 32).children()

    def test_contains_operator(self):
        p = Prefix(0x0A000000, 8)
        assert 0x0A123456 in p
        assert 0x0B000000 not in p
        assert Prefix(0x0A000000, 24) in p
        assert p in Prefix(0, 0)

    @given(addresses, lengths)
    def test_from_address_contains_address(self, addr, length):
        assert Prefix.from_address(addr, length).contains_address(addr)

    @given(addresses, lengths, lengths)
    def test_ancestor_contains_descendant(self, addr, l1, l2):
        lo, hi = sorted((l1, l2))
        assert Prefix.from_address(addr, lo).contains_prefix(
            Prefix.from_address(addr, hi)
        )

    def test_root_is_root(self):
        assert Prefix(0, 0).is_root()
        assert not Prefix(0, 1).is_root()
