"""Round-trip and format tests for repro.packet.pcap."""

import struct

import pytest

from repro.packet.model import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Packet
from repro.packet.pcap import (
    PCAP_MAGIC,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def sample_packets():
    return [
        Packet(ts=0.000001, src=0x0A000001, dst=0x0B000001, length=64,
               sport=1000, dport=80, proto=PROTO_TCP),
        Packet(ts=0.5, src=0x0A000002, dst=0x0B000002, length=1500,
               sport=2000, dport=53, proto=PROTO_UDP),
        Packet(ts=1.25, src=0xC0A80101, dst=0x08080808, length=84,
               proto=PROTO_ICMP),
    ]


class TestRoundTrip:
    def test_fields_preserved(self, tmp_path):
        path = tmp_path / "t.pcap"
        packets = sample_packets()
        assert write_pcap(path, packets) == len(packets)
        back = read_pcap(path)
        assert len(back) == len(packets)
        for orig, rt in zip(packets, back):
            assert rt.src == orig.src
            assert rt.dst == orig.dst
            assert rt.length == max(orig.length, 14 + 20 + (4 if orig.proto in (6, 17) else 0))
            assert rt.proto == orig.proto
            assert abs(rt.ts - orig.ts) < 1e-5
            if orig.proto in (PROTO_TCP, PROTO_UDP):
                assert (rt.sport, rt.dport) == (orig.sport, orig.dport)

    def test_trace_roundtrip(self, tmp_path, tiny_trace):
        path = tmp_path / "trace.pcap"
        subset = [tiny_trace.packet_at(i) for i in range(0, min(200, len(tiny_trace)))]
        write_pcap(path, subset)
        back = read_pcap(path)
        assert [p.src for p in back] == [p.src for p in subset]
        assert [p.length for p in back] == [p.length for p in subset]


class TestFormat:
    def test_magic_and_linktype(self, tmp_path):
        path = tmp_path / "m.pcap"
        write_pcap(path, sample_packets()[:1])
        raw = path.read_bytes()
        magic, major, minor = struct.unpack("<IHH", raw[:8])
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        linktype = struct.unpack("<I", raw[20:24])[0]
        assert linktype == 1  # Ethernet

    def test_reader_rejects_non_pcap(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"not a pcap file at all, definitely")
        with pytest.raises(ValueError):
            list(PcapReader(path))

    def test_reader_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\xd4\xc3\xb2\xa1")
        with pytest.raises(ValueError):
            list(PcapReader(path))

    def test_truncated_record_stops_iteration(self, tmp_path):
        path = tmp_path / "cut.pcap"
        write_pcap(path, sample_packets())
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])  # cut into the last record
        back = read_pcap(path)
        assert len(back) == 2

    def test_writer_outside_context_raises(self, tmp_path):
        writer = PcapWriter(tmp_path / "x.pcap")
        with pytest.raises(RuntimeError):
            writer.write(sample_packets()[0])

    def test_microsecond_carry(self, tmp_path):
        # A timestamp whose fractional part rounds up to a full second.
        path = tmp_path / "carry.pcap"
        write_pcap(path, [Packet(ts=1.9999999, src=1, dst=2, length=60)])
        back = read_pcap(path)
        assert abs(back[0].ts - 2.0) < 1e-5
