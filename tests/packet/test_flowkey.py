"""Unit tests for repro.packet.flowkey."""

from repro.packet.flowkey import (
    FlowKey,
    destination_key,
    five_tuple_key,
    source_dest_key,
    source_key,
)
from repro.packet.model import Packet


def pkt(**kw):
    base = dict(
        ts=0.0, src=0x0A000001, dst=0x0B000002, length=64,
        sport=1234, dport=80, proto=6,
    )
    base.update(kw)
    return Packet(**base)


class TestKeyFuncs:
    def test_source_key(self):
        assert source_key(pkt()) == 0x0A000001

    def test_destination_key(self):
        assert destination_key(pkt()) == 0x0B000002

    def test_source_dest_key_packs_both(self):
        key = source_dest_key(pkt())
        assert key >> 32 == 0x0A000001
        assert key & 0xFFFFFFFF == 0x0B000002

    def test_five_tuple_key_distinguishes_ports(self):
        assert five_tuple_key(pkt(sport=1)) != five_tuple_key(pkt(sport=2))

    def test_five_tuple_key_same_for_same_flow(self):
        assert five_tuple_key(pkt(ts=0.0)) == five_tuple_key(pkt(ts=9.0))


class TestFlowKey:
    def test_of(self):
        fk = FlowKey.of(pkt())
        assert fk.src == 0x0A000001
        assert fk.dport == 80

    def test_packed_unique_per_field(self):
        base = FlowKey.of(pkt())
        assert base.packed() != FlowKey.of(pkt(proto=17)).packed()
        assert base.packed() != FlowKey.of(pkt(dst=0x0B000003)).packed()

    def test_str_contains_addresses(self):
        text = str(FlowKey.of(pkt()))
        assert "10.0.0.1" in text and "11.0.0.2" in text

    def test_orderable_and_hashable(self):
        keys = sorted({FlowKey.of(pkt(sport=p)) for p in (3, 1, 2)})
        assert len(keys) == 3
