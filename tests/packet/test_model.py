"""Unit tests for repro.packet.model."""

import pytest

from repro.packet.model import PROTO_TCP, PROTO_UDP, Packet


def make(**kw):
    base = dict(ts=1.0, src=0x0A000001, dst=0x0B000002, length=100)
    base.update(kw)
    return Packet(**base)


class TestPacket:
    def test_defaults(self):
        pkt = make()
        assert pkt.proto == PROTO_TCP
        assert pkt.sport == 0 and pkt.dport == 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make().length = 5  # type: ignore[misc]

    @pytest.mark.parametrize(
        "field,value",
        [
            ("length", -1),
            ("src", 1 << 32),
            ("dst", -5),
            ("sport", 70000),
            ("dport", -1),
            ("proto", 300),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            make(**{field: value})

    def test_shifted(self):
        pkt = make(ts=2.5)
        moved = pkt.shifted(1.5)
        assert moved.ts == 4.0
        assert moved.src == pkt.src and moved.length == pkt.length

    def test_with_length(self):
        assert make().with_length(1500).length == 1500

    def test_udp_proto_constant(self):
        assert make(proto=PROTO_UDP).proto == 17
