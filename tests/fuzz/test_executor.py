"""The fuzz executor: plans run through the real stack, outcomes diff
under the per-axis contracts."""

import pytest

from repro.core import get_spec
from repro.fuzz import (
    CONTRACTS,
    Divergence,
    ExecutionPlan,
    FuzzError,
    PlanOutcome,
    PlanPair,
    ProbeReportDetector,
    diff_outcomes,
    run_pair,
    run_plan,
)
from repro.fuzz.executor import EmissionRecord

STREAM = "zipf:duration=4,seed=1"


def plan(**kwargs):
    defaults = dict(
        detector="spacesaving", stream=STREAM, take=256, emit="128p",
    )
    defaults.update(kwargs)
    return ExecutionPlan(**defaults)


class TestRunPlan:
    def test_serial_outcome_shape(self):
        outcome = run_plan(plan(chunk=64))
        assert outcome.packets == 256
        assert outcome.emissions and outcome.digest
        first = outcome.emissions[0]
        assert first.packets == 128 and first.start_packet == 0

    def test_deterministic(self):
        p = plan(chunk=48)
        one, two = run_plan(p), run_plan(p)
        assert one.emissions == two.emissions
        assert one.digest == two.digest

    def test_restart_plan_matches_uninterrupted(self):
        base = plan(chunk=32, take=256)
        plain = run_plan(base)
        restarted = run_plan(base.with_(restart_at=(2, 5)))
        assert diff_outcomes(plain, restarted, "checkpoint") is None

    def test_non_enumerable_needs_probe(self):
        with pytest.raises(FuzzError, match="cannot enumerate"):
            run_plan(plan(detector="bloom"))

    def test_probe_shards_need_mergeable(self):
        with pytest.raises(FuzzError, match="not mergeable"):
            run_plan(plan(detector="spacesaving", probe=True, shards=2))

    def test_skip_shifts_the_window(self):
        assert run_plan(plan()).emissions != run_plan(plan(skip=64)).emissions


class TestAxisEquivalences:
    """One sampled pair per axis through the real stack — the fuzz
    harness's core claim, pinned at tier-1 speed."""

    def test_chunking(self):
        base = plan(chunk=64)
        _, _, divergence = run_pair(
            PlanPair("chunking", base, base.with_(chunk=48))
        )
        assert divergence is None

    def test_sharding(self):
        base = plan(detector="countmin", probe=True, chunk=64)
        _, _, divergence = run_pair(
            PlanPair("sharding", base, base.with_(shards=3))
        )
        assert divergence is None

    def test_checkpoint(self):
        base = plan(chunk=32)
        _, _, divergence = run_pair(
            PlanPair("checkpoint", base, base.with_(restart_at=(3,)))
        )
        assert divergence is None

    def test_merge_order(self):
        base = plan(detector="countsketch", probe=True, chunk=64, shards=3)
        _, _, divergence = run_pair(
            PlanPair(
                "merge-order",
                base.with_(merge_order=(0, 1, 2)),
                base.with_(merge_order=(2, 0, 1)),
            )
        )
        assert divergence is None

    def test_serve(self):
        base = plan(chunk=64, shards=2, emit="2s")
        _, _, divergence = run_pair(
            PlanPair("serve", base, base.with_(serve_workers=2))
        )
        assert divergence is None


class TestProbeReportDetector:
    def test_probes_observed_keys_sorted(self):
        spec = get_spec("countmin")
        probe = ProbeReportDetector(spec.factory(), spec)
        probe.update_batch([5, 3, 5], [10, 1, 10])
        report = probe.query(0.0)
        assert list(report) == [3, 5]
        assert report[5] >= 20.0

    def test_reset_clears_observations(self):
        spec = get_spec("countmin")
        probe = ProbeReportDetector(spec.factory(), spec)
        probe.update(1, 4)
        probe.reset()
        assert probe.query(0.0) == {}


def record(report, **kwargs):
    defaults = dict(
        index=0, t0=0.0, t1=1.0, packets=10, bytes=100,
        start_packet=0, end_packet=10, partial=False,
    )
    defaults.update(kwargs)
    return EmissionRecord(report=tuple(report), **defaults)


def outcome(records, digest="d0", packets=10, nbytes=100):
    return PlanOutcome(
        plan=plan(), emissions=tuple(records), digest=digest,
        packets=packets, bytes=nbytes,
    )


class TestDiffOutcomes:
    def test_totals_divergence(self):
        d = diff_outcomes(
            outcome([], packets=10), outcome([], packets=11), "chunking"
        )
        assert d is not None and d.kind == "totals"

    def test_emission_count_divergence(self):
        d = diff_outcomes(
            outcome([record([])]), outcome([]), "chunking"
        )
        assert d is not None and d.kind == "emission-count"

    def test_report_order_matters_only_when_promised(self):
        a = outcome([record([(1, 5.0), (2, 3.0)])])
        b = outcome([record([(2, 3.0), (1, 5.0)])])
        assert diff_outcomes(a, b, "chunking") is None
        strict = diff_outcomes(a, b, "checkpoint")
        assert strict is not None and strict.kind == "report"

    def test_tolerance_only_on_loose_axes(self):
        a = outcome([record([(1, 1.0)])])
        b = outcome([record([(1, 1.0 + 1e-12)])])
        assert diff_outcomes(a, b, "chunking") is None
        assert diff_outcomes(a, b, "serve") is not None

    def test_value_beyond_tolerance_diverges(self):
        a = outcome([record([(1, 1.0)])])
        b = outcome([record([(1, 1.1)])])
        d = diff_outcomes(a, b, "chunking")
        assert d is not None and d.kind == "report" and d.emission == 0

    def test_digest_compared_on_strict_axes(self):
        a, b = outcome([], digest="aaaa"), outcome([], digest="bbbb")
        assert diff_outcomes(a, b, "chunking") is None
        d = diff_outcomes(a, b, "checkpoint")
        assert d is not None and d.kind == "digest"

    def test_contracts_cover_every_axis(self):
        from repro.fuzz import AXES

        assert set(CONTRACTS) == set(AXES)


class TestDivergenceSerialization:
    def test_round_trip(self):
        d = Divergence("serve", "report", "key 5 differs", emission=3)
        assert Divergence.from_dict(d.to_dict()) == d
        assert "serve" in str(d) and "@emission 3" in str(d)
