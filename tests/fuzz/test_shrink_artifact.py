"""The shrinker and the fuzz-case artifact, exercised against a toy
detector with a deliberately injected batch/scalar divergence."""

import json

import pytest

from repro.core.detector import Detector, as_batch
from repro.core.registry import _REGISTRY, register_detector
from repro.fuzz import (
    FUZZ_CASE_SCHEMA,
    ExecutionPlan,
    FuzzCase,
    FuzzError,
    PlanPair,
    case_filename,
    diff_outcomes,
    read_case,
    replay_case,
    run_plan,
    shrink_pair,
    validate_fuzz_case_dict,
    write_case,
)

STREAM = "zipf:duration=4,seed=1"


class BrokenCounter(Detector):
    """Exact counter whose batch path drops the last packet of any batch
    of >= 40 packets — the injected off-by-one the harness must find."""

    def __init__(self):
        self.counts = {}

    def update(self, key, weight=1, ts=None):
        self.counts[key] = self.counts.get(key, 0) + weight

    def update_batch(self, keys, weights=None, ts=None):
        keys, weights, _ = as_batch(keys, weights, ts)
        if len(keys) >= 40:
            keys, weights = keys[:-1], weights[:-1]
        for key, weight in zip(keys.tolist(), weights.tolist()):
            self.update(key, weight)

    def query(self, threshold, now=None):
        return {
            key: float(count)
            for key, count in sorted(self.counts.items())
            if count >= threshold
        }

    def reset(self):
        self.counts = {}

    @property
    def num_counters(self):
        return len(self.counts)


@pytest.fixture
def broken_toy():
    register_detector(
        "broken-toy", BrokenCounter,
        description="test-only: batch path drops packets",
    )
    try:
        yield "broken-toy"
    finally:
        _REGISTRY.pop("broken-toy", None)


def broken_pair(take=512, small=16, big=64):
    base = ExecutionPlan(
        detector="broken-toy", stream=STREAM, take=take, emit="2s",
    )
    return PlanPair(
        "chunking", base.with_(chunk=small), base.with_(chunk=big)
    )


class TestShrinker:
    def test_minimises_the_injected_divergence(self, broken_toy):
        pair = broken_pair()
        a, b = run_plan(pair.a), run_plan(pair.b)
        divergence = diff_outcomes(a, b, pair.axis)
        assert divergence is not None

        result = shrink_pair(pair, divergence, max_executions=80)
        assert result.shrunk
        assert result.divergence.axis == "chunking"
        # A 40-packet chunk triggers the bug, so the reproducer needs at
        # most a couple of chunks' worth of stream.
        assert result.pair.a.take < pair.a.take
        assert result.pair.a.take <= 64
        # The minimal pair must itself still diverge.
        ra, rb = run_plan(result.pair.a), run_plan(result.pair.b)
        assert diff_outcomes(ra, rb, "chunking") is not None

    def test_shrunk_pair_stays_in_family(self, broken_toy):
        pair = broken_pair()
        divergence = diff_outcomes(
            run_plan(pair.a), run_plan(pair.b), pair.axis
        )
        result = shrink_pair(pair, divergence, max_executions=60)
        # Workload knobs stay shared — still a valid chunking pair.
        assert result.pair.a.take == result.pair.b.take
        assert result.pair.a.stream == result.pair.b.stream
        assert result.pair.a.chunk != result.pair.b.chunk

    def test_budget_bounds_executions(self, broken_toy):
        pair = broken_pair()
        divergence = diff_outcomes(
            run_plan(pair.a), run_plan(pair.b), pair.axis
        )
        result = shrink_pair(pair, divergence, max_executions=5)
        assert result.executions <= 5
        assert result.divergence is not None


def make_case(pair, divergence, **kwargs):
    defaults = dict(
        axis=pair.axis, seed=0, pair_index=3, divergence=divergence,
        plan_a=pair.a, plan_b=pair.b,
        original_a=pair.a, original_b=pair.b,
    )
    defaults.update(kwargs)
    return FuzzCase(**defaults)


class TestArtifact:
    def test_write_read_round_trip(self, broken_toy, tmp_path):
        pair = broken_pair(take=48)
        divergence = diff_outcomes(
            run_plan(pair.a), run_plan(pair.b), pair.axis
        )
        assert divergence is not None
        case = make_case(pair, divergence, shrink_executions=7, shrunk=True)

        path = write_case(case, tmp_path / "case.json")
        loaded = read_case(path)
        assert loaded == case
        assert json.loads(path.read_text())["schema"] == FUZZ_CASE_SCHEMA

    def test_replay_reproduces_deterministically(self, broken_toy):
        pair = broken_pair(take=48)
        divergence = diff_outcomes(
            run_plan(pair.a), run_plan(pair.b), pair.axis
        )
        case = make_case(pair, divergence)
        assert replay_case(case) is not None
        assert replay_case(case) == replay_case(case)

    def test_replay_clean_pair_returns_none(self):
        base = ExecutionPlan(
            detector="spacesaving", stream=STREAM, take=128, emit="2s",
        )
        pair = PlanPair("chunking", base.with_(chunk=16), base.with_(chunk=48))
        from repro.fuzz import Divergence

        case = make_case(pair, Divergence("chunking", "report", "stale"))
        assert replay_case(case) is None

    def test_case_filename_is_stable(self, broken_toy):
        pair = broken_pair(take=48)
        from repro.fuzz import Divergence

        case = make_case(pair, Divergence("chunking", "report", "x"))
        assert case_filename(case) == \
            "fuzz-case-chunking-broken-toy-s0-p3.json"

    @pytest.mark.parametrize("mangle", [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="repro-hhh/fuzz-case/v2"),
        lambda d: d.pop("plan_b"),
        lambda d: d.update(axis="warp"),
        lambda d: d.update(divergence="not-a-dict"),
    ])
    def test_validation_rejects_mangled_documents(self, mangle):
        base = ExecutionPlan(detector="spacesaving", stream=STREAM)
        from repro.fuzz import Divergence

        pair = PlanPair("chunking", base, base.with_(chunk=64))
        case = make_case(pair, Divergence("chunking", "report", "x"))
        document = case.to_dict()
        mangle(document)
        with pytest.raises(FuzzError):
            validate_fuzz_case_dict(document)

    def test_read_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(FuzzError, match="not valid JSON"):
            read_case(path)
