"""Execution plans and the seeded plan space: validation, round-trip,
determinism, and axis/detector coverage."""

import pytest

from repro.core import get_spec
from repro.fuzz import (
    AXES,
    ExecutionPlan,
    FuzzError,
    PlanPair,
    PlanSpace,
    eligible_detectors,
)

STREAM = "zipf:duration=4,seed=1"


def plan(**kwargs):
    defaults = dict(detector="spacesaving", stream=STREAM)
    defaults.update(kwargs)
    return ExecutionPlan(**defaults)


class TestExecutionPlan:
    def test_defaults_validate(self):
        p = plan()
        assert p.take == 512 and p.shards == 1 and not p.probe

    @pytest.mark.parametrize("bad", [
        dict(take=0),
        dict(skip=-1),
        dict(chunk=0),
        dict(shards=0),
        dict(serve_workers=-1),
        dict(phi=0.0),
        dict(phi=1.5),
        dict(restart_at=(0,)),
        dict(merge_order=(0, 1)),                      # needs probe
        dict(shards=2, probe=True, merge_order=(0, 2)),  # not a perm
        dict(probe=True, restart_at=(1,)),
        dict(shards=2, serve_workers=1, probe=True),
        dict(shards=2, serve_workers=1, restart_at=(1,)),
        dict(shards=2, serve_workers=3),               # workers > shards
        dict(checkpoint_every=-1),
        dict(crash_at=-2),
        dict(churn=(0,)),
        dict(checkpoint_every=1),                      # needs serve
        dict(churn=(2,)),                              # needs serve
        dict(crash_at=3),                              # needs serve
        dict(shards=2, serve_workers=2, crash_at=2),   # needs checkpoints
    ])
    def test_invalid_plans_rejected(self, bad):
        with pytest.raises(FuzzError):
            plan(**bad)

    def test_restart_points_sorted_deduped(self):
        p = plan(restart_at=(3, 1, 3))
        assert p.restart_at == (1, 3)

    def test_churn_points_sorted_deduped(self):
        p = plan(shards=2, serve_workers=2, churn=(5, 2, 5))
        assert p.churn == (2, 5)

    def test_dict_round_trip(self):
        p = plan(
            take=300, skip=7, chunk=32, shards=3, probe=True,
            merge_order=(2, 0, 1), phi=0.05, key="dst",
        )
        assert ExecutionPlan.from_dict(p.to_dict()) == p

    def test_round_trip_serve_and_restarts(self):
        for p in (
            plan(shards=2, serve_workers=2, chunk=64),
            plan(restart_at=(1, 4), emit="250p"),
            plan(shards=2, serve_workers=2, churn=(1, 3),
                 checkpoint_every=2, crash_at=2),
        ):
            assert ExecutionPlan.from_dict(p.to_dict()) == p

    def test_from_dict_rejects_unknown_fields(self):
        data = plan().to_dict()
        data["bogus"] = 1
        with pytest.raises(FuzzError, match="unknown plan fields"):
            ExecutionPlan.from_dict(data)

    def test_describe_names_the_interleaving(self):
        label = plan(
            shards=3, probe=True, merge_order=(2, 1, 0), chunk=16
        ).describe()
        assert "spacesaving" in label
        assert "chunk=16" in label and "shards=3" in label
        assert "order=210" in label


class TestPlanPair:
    def test_unknown_axis_rejected(self):
        with pytest.raises(FuzzError, match="unknown axis"):
            PlanPair("warp", plan(), plan())

    def test_workload_must_match(self):
        with pytest.raises(FuzzError, match="must share"):
            PlanPair("chunking", plan(take=100), plan(take=200))

    def test_with_workload_changes_both_sides(self):
        pair = PlanPair("chunking", plan(chunk=16), plan(chunk=64))
        smaller = pair.with_workload(take=50)
        assert smaller.a.take == smaller.b.take == 50
        assert (smaller.a.chunk, smaller.b.chunk) == (16, 64)


class TestEligibility:
    def test_report_axes_need_enumerable(self):
        for axis in ("chunking", "checkpoint", "serve"):
            names = eligible_detectors(axis)
            assert names and all(get_spec(n).enumerable for n in names)

    def test_merge_axes_need_mergeable(self):
        for axis in ("sharding", "merge-order"):
            names = eligible_detectors(axis)
            assert names and all(get_spec(n).mergeable for n in names)

    def test_unknown_axis(self):
        with pytest.raises(FuzzError):
            eligible_detectors("warp")


class TestPlanSpace:
    def test_pair_is_pure_function_of_seed_and_index(self):
        one, two = PlanSpace(7), PlanSpace(7)
        for i in range(12):
            assert one.pair(i) == two.pair(i)

    def test_different_seeds_differ(self):
        assert PlanSpace(0).pair(0) != PlanSpace(1).pair(0)

    def test_axes_round_robin_covers_all(self):
        space = PlanSpace(0)
        seen = {space.pair(i).axis for i in range(len(AXES))}
        assert seen == set(AXES)

    def test_detectors_rotate_within_axis(self):
        space = PlanSpace(0, axes=["chunking"])
        pool = space.pools["chunking"]
        seen = {space.pair(i).a.detector for i in range(len(pool))}
        assert seen == set(pool)

    def test_pairs_validate_by_construction(self):
        space = PlanSpace(3)
        for i in range(15):
            pair = space.pair(i)
            assert pair.axis in AXES
            # Frozen dataclass __post_init__ already validated both plans;
            # round-tripping re-validates from plain data.
            assert ExecutionPlan.from_dict(pair.a.to_dict()) == pair.a

    def test_detector_restriction(self):
        space = PlanSpace(0, detectors=["countmin"])
        # countmin is mergeable but not enumerable: report axes drop out.
        assert set(space.axes) == {"sharding", "merge-order"}
        for i in range(4):
            assert space.pair(i).a.detector == "countmin"

    def test_unknown_detector_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown detector"):
            PlanSpace(0, detectors=["nope"])

    def test_unknown_axis_rejected(self):
        with pytest.raises(FuzzError, match="unknown axis"):
            PlanSpace(0, axes=["warp"])

    def test_empty_space_rejected(self):
        # bloom cannot enumerate: restricting to it kills report axes.
        with pytest.raises(FuzzError, match="no .* combination"):
            PlanSpace(0, detectors=["bloom"], axes=["chunking"])

    def test_stream_specs_carry_explicit_seeds(self):
        space = PlanSpace(0)
        for i in range(10):
            assert "seed=" in space.pair(i).a.stream
