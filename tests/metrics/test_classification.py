"""Tests for repro.metrics.classification."""

import pytest

from repro.metrics.classification import ClassificationReport, classify_sets


class TestClassifySets:
    def test_perfect(self):
        report = classify_sets({1, 2}, {1, 2})
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_counts(self):
        report = classify_sets({1, 2, 3}, {2, 3, 4})
        assert report.true_positives == 2
        assert report.false_positives == 1
        assert report.false_negatives == 1
        assert report.precision == pytest.approx(2 / 3)
        assert report.recall == pytest.approx(2 / 3)

    def test_empty_report_is_precise(self):
        report = classify_sets({1}, set())
        assert report.precision == 1.0
        assert report.recall == 0.0

    def test_nothing_to_find(self):
        report = classify_sets(set(), set())
        assert report.recall == 1.0
        assert report.f1 > 0

    def test_f1_zero_when_no_overlap(self):
        report = classify_sets({1}, {2})
        assert report.f1 == 0.0

    def test_merged_micro_average(self):
        a = classify_sets({1, 2}, {1})
        b = classify_sets({3}, {3, 4})
        merged = a.merged(b)
        assert merged.true_positives == 2
        assert merged.false_positives == 1
        assert merged.false_negatives == 1
