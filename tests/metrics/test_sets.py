"""Tests for repro.metrics.sets."""

from hypothesis import given, strategies as st

from repro.metrics.sets import jaccard, set_difference_report

int_sets = st.sets(st.integers(min_value=0, max_value=50), max_size=20)


class TestJaccard:
    def test_identical(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint(self):
        assert jaccard({1}, {2}) == 0.0

    def test_partial(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == 0.5

    def test_both_empty_is_one(self):
        assert jaccard(set(), set()) == 1.0

    def test_one_empty_is_zero(self):
        assert jaccard({1}, set()) == 0.0

    @given(int_sets, int_sets)
    def test_symmetric(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(int_sets, int_sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(int_sets)
    def test_self_similarity(self, a):
        assert jaccard(a, a) == 1.0


class TestSetDifferenceReport:
    def test_breakdown(self):
        report = set_difference_report({1, 2, 3}, {2, 3, 4, 5})
        assert report.common == 2
        assert report.only_reference == 1
        assert report.only_observed == 2

    @given(int_sets, int_sets)
    def test_jaccard_consistent(self, a, b):
        report = set_difference_report(a, b)
        assert report.jaccard == jaccard(a, b)
