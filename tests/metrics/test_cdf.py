"""Tests for repro.metrics.cdf."""

import pytest

from repro.metrics.cdf import EmpiricalCDF


class TestEmpiricalCDF:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([])

    def test_fraction_at_most(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_most(2.0) == 0.5
        assert cdf.fraction_at_most(0.5) == 0.0
        assert cdf.fraction_at_most(4.0) == 1.0

    def test_fraction_at_least(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_least(3.0) == 0.5
        assert cdf.fraction_at_least(5.0) == 0.0

    def test_quantile(self):
        cdf = EmpiricalCDF(range(101))
        assert cdf.quantile(0.5) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_summaries(self):
        cdf = EmpiricalCDF([2.0, 4.0, 6.0])
        assert cdf.mean == pytest.approx(4.0)
        assert cdf.min == 2.0
        assert cdf.max == 6.0
        assert len(cdf) == 3

    def test_points_monotone(self):
        cdf = EmpiricalCDF([3.0, 1.0, 2.0])
        points = cdf.points()
        assert [x for x, _ in points] == [1.0, 2.0, 3.0]
        fractions = [y for _, y in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_series_on_grid(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        assert cdf.series([0.0, 1.5, 3.0]) == [0.0, 0.5, 1.0]
