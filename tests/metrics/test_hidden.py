"""Tests for repro.metrics.hidden — the Figure 2 metric."""

import pytest

from repro.hhh.exact_hhh import HHHItem, HHHResult
from repro.metrics.hidden import hidden_hhh_occurrences, hidden_hhh_unique
from repro.net.prefix import Prefix
from repro.windows.schedule import Window


def result(*prefixes):
    items = tuple(HHHItem(p, 100) for p in prefixes)
    return HHHResult(items, 50.0, 1000)


P1 = Prefix(0x0A000000, 24)
P2 = Prefix(0x0B000000, 24)
P3 = Prefix(0x0C000000, 24)


class TestUnique:
    def test_no_hidden_when_equal(self):
        disjoint = [(Window(0, 5, 0), result(P1))]
        sliding = [(Window(0, 5, 0), result(P1))]
        report = hidden_hhh_unique(disjoint, sliding)
        assert report.hidden == 0
        assert report.total == 1
        assert report.hidden_fraction == 0.0

    def test_hidden_counted(self):
        disjoint = [(Window(0, 5, 0), result(P1))]
        sliding = [
            (Window(0, 5, 0), result(P1)),
            (Window(1, 6, 1), result(P2)),
            (Window(2, 7, 2), result(P3)),
        ]
        report = hidden_hhh_unique(disjoint, sliding)
        assert report.total == 3
        assert report.hidden == 2
        assert report.hidden_prefixes == {P2, P3}
        assert report.hidden_percent == pytest.approx(200 / 3)

    def test_anywhere_in_trace_covers(self):
        # A prefix found by ANY disjoint window is not hidden, regardless
        # of when the sliding schedule saw it.
        disjoint = [(Window(50, 55, 10), result(P1))]
        sliding = [(Window(0, 5, 0), result(P1))]
        assert hidden_hhh_unique(disjoint, sliding).hidden == 0

    def test_empty_sliding(self):
        report = hidden_hhh_unique([], [])
        assert report.total == 0
        assert report.hidden_fraction == 0.0


class TestOccurrences:
    def test_overlap_credit(self):
        # The disjoint window [0,5) overlaps sliding [3,8): its detection
        # of P1 covers the sliding occurrence.
        disjoint = [(Window(0, 5, 0), result(P1))]
        sliding = [(Window(3, 8, 3), result(P1))]
        report = hidden_hhh_occurrences(disjoint, sliding)
        assert report.hidden == 0
        assert report.total == 1

    def test_no_credit_without_overlap(self):
        disjoint = [(Window(0, 5, 0), result(P1))]
        sliding = [(Window(10, 15, 10), result(P1))]
        report = hidden_hhh_occurrences(disjoint, sliding)
        assert report.hidden == 1

    def test_per_occurrence_counting(self):
        # The same prefix in two sliding windows counts twice.
        disjoint = [(Window(0, 5, 0), result())]
        sliding = [
            (Window(0, 5, 0), result(P1)),
            (Window(1, 6, 1), result(P1)),
        ]
        report = hidden_hhh_occurrences(disjoint, sliding)
        assert report.total == 2
        assert report.hidden == 2
        assert report.mode == "occurrences"

    def test_mixed_coverage(self):
        disjoint = [
            (Window(0, 5, 0), result(P1)),
            (Window(5, 10, 1), result()),
        ]
        sliding = [
            (Window(2, 7, 2), result(P1, P2)),
        ]
        report = hidden_hhh_occurrences(disjoint, sliding)
        assert report.total == 2
        assert report.hidden == 1  # P2 never reported by disjoint
        assert report.hidden_prefixes == {P2}
