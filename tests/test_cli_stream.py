"""The ``repro-hhh stream`` subcommand: online emission, checkpoint files,
resume with fast-forward, and the JSON artifact."""

import json
import re

import pytest

from repro.cli import main
from repro.experiments import validate_result_dict

SOURCE = "drift:duration=12"


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestStreamCommand:
    def test_emissions_print_online(self, capsys):
        code, out = _run(
            capsys, "stream", "countmin-hh",
            "--source", SOURCE, "--chunk", "2048", "--emit-every", "2s",
        )
        assert code == 0
        emits = [line for line in out.splitlines() if line.startswith("emit")]
        assert len(emits) >= 3
        assert re.search(r"stream: \d+ packets", out)

    def test_emit_every_packets(self, capsys):
        code, out = _run(
            capsys, "stream", "spacesaving",
            "--source", SOURCE, "--chunk", "1024",
            "--emit-every", "3000p", "--max-packets", "9000",
        )
        assert code == 0
        assert out.count("pkts     3000") >= 2

    def test_json_artifact_validates(self, capsys, tmp_path):
        path = tmp_path / "stream.json"
        code, _ = _run(
            capsys, "stream", "countmin-hh",
            "--source", SOURCE, "--chunk", "2048",
            "--json", str(path),
        )
        assert code == 0
        document = json.loads(path.read_text())
        validate_result_dict(document)
        assert document["experiment"] == "stream"
        assert document["traces"][0]["spec"] == SOURCE
        assert document["rows"]

    @staticmethod
    def _emission_fields(out):
        """(index, window, pkts, report) per printed emission — the
        deterministic columns (pps and the resumed run's first churn line
        are process-local)."""
        rows = []
        for line in out.splitlines():
            if line.startswith("emit"):
                parts = line.split()
                rows.append((parts[1], parts[2], parts[3], parts[5], parts[7]))
        return rows

    def test_checkpoint_and_resume_round_trip(self, capsys, tmp_path):
        """Split run + resume reproduces the uninterrupted emissions —
        the checkpoint stops with the open interval intact (no spurious
        partial flush at the stop point)."""
        code, uninterrupted = _run(
            capsys, "stream", "countmin-hh",
            "--source", SOURCE, "--chunk", "2048",
            "--emit-every", "3000p", "--max-packets", "8192",
        )
        assert code == 0
        checkpoint = tmp_path / "pipeline.ckpt"
        code, first = _run(
            capsys, "stream", "countmin-hh",
            "--source", SOURCE, "--chunk", "2048",
            "--emit-every", "3000p", "--max-packets", "4096",
            "--checkpoint", str(checkpoint),
        )
        assert code == 0 and checkpoint.exists()
        assert "partial" not in first  # open interval kept for the resume
        code, second = _run(
            capsys, "stream", "countmin-hh",
            "--source", SOURCE, "--chunk", "2048",
            "--emit-every", "3000p", "--max-packets", "4096",
            "--resume", str(checkpoint), "--fast-forward",
        )
        assert code == 0
        assert "resumed at packet 4096" in second
        combined = self._emission_fields(first) + self._emission_fields(second)
        assert combined == self._emission_fields(uninterrupted)

    def test_infinite_source_is_bounded(self, capsys):
        code, out = _run(
            capsys, "stream", "countmin-hh",
            "--source", "repeat:zipf:duration=1,sources=100",
            "--chunk", "512", "--emit-every", "1000p",
            "--max-packets", "3000",
        )
        assert code == 0
        assert "stream: 3000 packets" in out

    def test_unknown_detector_fails_cleanly(self, capsys):
        code = main(["stream", "bogus", "--source", SOURCE])
        assert code == 2
        assert "unknown detector" in capsys.readouterr().err

    def test_non_enumerable_detector_fails_cleanly(self, capsys):
        code = main(["stream", "countmin", "--source", SOURCE])
        assert code == 2
        assert "enumerate" in capsys.readouterr().err

    def test_bad_source_fails_cleanly(self, capsys):
        code = main(["stream", "countmin-hh", "--source", "nope:x=1"])
        assert code == 2
        assert "registered scenarios" in capsys.readouterr().err

    def test_bad_emission_policy_fails_cleanly(self, capsys):
        code = main(["stream", "countmin-hh", "--source", SOURCE,
                     "--emit-every", "sideways"])
        assert code == 2
        assert "emission policy" in capsys.readouterr().err

    def test_run_alias_reaches_stream_replay(self, capsys, tmp_path):
        path = tmp_path / "replay.json"
        code, out = _run(
            capsys, "run", "stream-replay", "--smoke", "--json", str(path),
        )
        assert code == 0
        validate_result_dict(json.loads(path.read_text()))
        assert "churn_flips" in out
