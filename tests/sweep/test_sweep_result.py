"""SweepResult artifact: tables, pivots, best-cell, schema round-trips."""

import json

import pytest

from repro.sweep import (
    SWEEP_SCHEMA_ID,
    CellOutcome,
    SweepError,
    SweepResult,
    validate_sweep_dict,
)


def _cell(index, experiment="detector-accuracy", trace="zipf:duration=2",
          params=None, headline=None, status="ok", error=None):
    result = None
    if status == "ok":
        result = {
            "schema": "repro-hhh/experiment-result/v1",
            "experiment": experiment,
            "params": dict(params or {}),
            "traces": [{
                "spec": trace, "label": "t", "num_packets": 10,
                "duration_s": 2.0, "total_bytes": 1000,
            }],
            "rows": [{"detector": "x", "recall": 1.0}],
            "headline": dict(headline or {}),
            "timings": {"run_s": 0.01},
        }
    return CellOutcome(
        index=index, experiment=experiment, trace=trace,
        params=dict(params or {}), status=status, wall_s=0.01,
        error=error, result=result,
    )


def _result(cells):
    return SweepResult(
        grid="exp=detector-accuracy", mode="cartesian", backend="serial",
        workers=1, cells=cells, timings={"total_s": 0.1, "cells_per_s": 10.0},
    )


class TestRows:
    def test_columns_are_union_across_cells(self):
        result = _result([
            _cell(0, params={"phi": "0.01"}, headline={"recall": 1.0}),
            _cell(1, experiment="trace-stats", params={},
                  headline={"num_packets": 10}),
        ])
        rows = result.rows()
        assert set(rows[0]) == set(rows[1])
        assert rows[0]["phi"] == "0.01"
        assert rows[1]["phi"] == ""  # padded, not dropped
        assert rows[1]["num_packets"] == 10

    def test_to_table_renders(self):
        result = _result([_cell(0, headline={"recall": 1.0})])
        table = result.to_table()
        assert "experiment" in table and "recall" in table


class TestPivot:
    def _two_detector_result(self):
        return _result([
            _cell(0, params={"detector": "a"}, headline={"f1": 1.0}),
            _cell(1, params={"detector": "a"}, headline={"f1": 0.5}),
            _cell(2, params={"detector": "b"}, headline={"f1": 0.8}),
        ])

    def test_groups_and_averages(self):
        rows = self._two_detector_result().pivot("detector")
        by_det = {r["detector"]: r for r in rows}
        assert by_det["a"]["cells"] == 2
        assert by_det["a"]["f1"] == 0.75
        assert by_det["b"]["f1"] == 0.8

    def test_multi_column_group(self):
        rows = self._two_detector_result().pivot(["experiment", "detector"])
        assert all("experiment" in r and "detector" in r for r in rows)

    def test_heterogeneous_groups_keep_all_metric_columns(self):
        # The first group lacks the second group's metrics; the pivot must
        # pad to the union so no group's metrics vanish from the table.
        result = _result([
            _cell(0, experiment="trace-stats", trace="zipf:duration=2",
                  headline={"num_packets": 10}),
            _cell(1, experiment="detector-accuracy",
                  params={"detector": "a"}, headline={"f1": 0.9}),
        ])
        rows = result.pivot("experiment")
        assert all(set(r) == set(rows[0]) for r in rows)
        by_exp = {r["experiment"]: r for r in rows}
        assert by_exp["detector-accuracy"]["f1"] == 0.9
        assert by_exp["trace-stats"]["f1"] == ""
        assert "f1" in result.to_table("experiment").splitlines()[0]

    def test_unknown_column_suggests(self):
        with pytest.raises(SweepError, match="did you mean 'detector'"):
            self._two_detector_result().pivot("detectr")

    def test_error_cells_excluded_from_groups(self):
        # An error cell has no metrics; counting it would misstate how
        # many cells back each average.
        result = _result([
            _cell(0, params={"detector": "a"}, headline={"f1": 1.0}),
            _cell(1, params={"detector": "a"}, status="error", error="boom"),
        ])
        rows = result.pivot("detector")
        assert rows == [{"detector": "a", "cells": 1, "f1": 1.0}]


class TestBestCell:
    def test_max_and_min(self):
        result = _result([
            _cell(0, params={"detector": "a"}, headline={"f1": 0.2}),
            _cell(1, params={"detector": "b"}, headline={"f1": 0.9}),
        ])
        assert result.best_cell("f1").index == 1
        assert result.best_cell("f1", mode="min").index == 0

    def test_error_cells_excluded(self):
        result = _result([
            _cell(0, headline={"f1": 0.9}),
            _cell(1, status="error", error="boom"),
        ])
        assert result.best_cell("f1").index == 0

    def test_unknown_metric_suggests(self):
        result = _result([_cell(0, headline={"recall": 1.0})])
        with pytest.raises(SweepError, match="did you mean 'recall'"):
            result.best_cell("recal")


class TestSchema:
    def test_to_dict_carries_schema_and_counts(self):
        result = _result([
            _cell(0), _cell(1, status="error", error="boom"),
        ])
        document = result.to_dict()
        assert document["schema"] == SWEEP_SCHEMA_ID
        assert document["num_cells"] == 2
        assert document["num_errors"] == 1
        validate_sweep_dict(document)

    def test_json_round_trip_is_byte_identical(self):
        result = _result([
            _cell(0, params={"detector": "a", "phi": "0.01"},
                  headline={"f1": 1.0, "recall": 0.5}),
            _cell(1, status="error", error="boom"),
        ])
        text = result.to_json()
        assert SweepResult.from_json(text).to_json() == text

    def test_from_json_file_path(self, tmp_path):
        result = _result([_cell(0)])
        path = tmp_path / "sweep.json"
        result.to_json(path)
        loaded = SweepResult.from_json(path)
        assert loaded.grid == result.grid
        assert loaded.cells[0].experiment == "detector-accuracy"

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(schema="nope"),
        lambda d: d.pop("grid"),
        lambda d: d.update(cells=[]),
        lambda d: d.update(cells="x"),
        lambda d: d["cells"][0].pop("status"),
        lambda d: d["cells"][0].pop("trace"),
        lambda d: d["cells"][0].update(status="ok", result=None),
        lambda d: d["cells"][0].update(status="error", error=None),
    ])
    def test_validation_rejects_malformed(self, mutate):
        document = _result([_cell(0)]).to_dict()
        document = json.loads(json.dumps(document))
        mutate(document)
        with pytest.raises(ValueError):
            validate_sweep_dict(document)

    def test_ok_cell_result_validates_as_experiment_result(self):
        document = _result([_cell(0)]).to_dict()
        document["cells"][0]["result"]["schema"] = "bogus"
        with pytest.raises(ValueError, match="schema"):
            validate_sweep_dict(document)
