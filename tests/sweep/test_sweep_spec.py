"""SweepSpec grammar, round-tripping, and expansion semantics."""

import pytest

from repro.sweep import SweepAxis, SweepCell, SweepError, SweepSpec


class TestParsing:
    def test_single_axis(self):
        spec = SweepSpec.parse("exp=hidden-hhh")
        assert spec.axes == (SweepAxis("exp", ("hidden-hhh",)),)
        assert spec.mode == "cartesian"

    def test_multi_axis_multi_value(self):
        spec = SweepSpec.parse("exp=a,b;phi=0.01,0.001")
        assert spec.axis("exp").values == ("a", "b")
        assert spec.axis("phi").values == ("0.01", "0.001")

    def test_zip_prefix(self):
        spec = SweepSpec.parse("zip:exp=a;phi=1,2")
        assert spec.mode == "zip"

    def test_whitespace_tolerated(self):
        spec = SweepSpec.parse(" exp = a , b ; phi = 1 ")
        assert spec.axis("exp").values == ("a", "b")

    def test_trace_axis_keeps_params_with_commas(self):
        spec = SweepSpec.parse(
            "exp=a;trace=caida:day=0,duration=30,zipf:duration=30"
        )
        assert spec.axis("trace").values == (
            "caida:day=0,duration=30", "zipf:duration=30",
        )

    def test_trace_axis_bare_scenarios_split(self):
        spec = SweepSpec.parse("exp=a;trace=calm,zipf:skew=1.2,drift")
        assert spec.axis("trace").values == ("calm", "zipf:skew=1.2", "drift")

    def test_trace_axis_stream_specs(self):
        spec = SweepSpec.parse(
            "exp=a;trace=calm:duration=20+ddos-burst:duration=20,"
            "repeat:zipf:duration=5"
        )
        assert spec.axis("trace").values == (
            "calm:duration=20+ddos-burst:duration=20",
            "repeat:zipf:duration=5",
        )

    @pytest.mark.parametrize("text", [
        "", "exp=", "=a", "exp=a;;phi=1", "exp=a;phi", "exp=a;phi=1,,2",
    ])
    def test_malformed_rejected(self, text):
        with pytest.raises(SweepError):
            SweepSpec.parse(text)

    def test_missing_exp_axis_rejected(self):
        with pytest.raises(SweepError, match="'exp' axis"):
            SweepSpec.parse("trace=calm;phi=1")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SweepError, match="duplicate sweep axis"):
            SweepSpec.parse("exp=a;phi=1;phi=2")


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "exp=hidden-hhh",
        "exp=a,b;trace=zipf:duration=30,ddos-burst:duration=30;phi=0.01,0.001",
        "zip:exp=a;detector=x,y;phi=1,2",
        "exp=a;trace=caida:day=0,duration=30",
    ])
    def test_parse_format_round_trips(self, text):
        spec = SweepSpec.parse(text)
        assert spec.format() == text
        assert SweepSpec.parse(spec.format()) == spec

    def test_str_is_format(self):
        assert str(SweepSpec.parse("exp=a;phi=1")) == "exp=a;phi=1"


class TestExpansion:
    def test_cartesian_product_order(self):
        cells = SweepSpec.parse(
            "exp=detector-accuracy;trace=zipf:duration=2,calm:duration=2;"
            "detector=countmin-hh,spacesaving;phi=0.01,0.02"
        ).expand()
        assert len(cells) == 8
        assert [c.index for c in cells] == list(range(8))
        # trace is the outer loop, then declared param-axis order.
        assert cells[0].trace == "zipf:duration=2"
        assert cells[0].params == {"detector": "countmin-hh", "phi": "0.01"}
        assert cells[1].params == {"detector": "countmin-hh", "phi": "0.02"}
        assert cells[4].trace == "calm:duration=2"

    def test_param_axes_apply_where_declared(self):
        # trace-stats declares neither detector nor phi: the axes collapse
        # and its cells dedupe to one per trace.
        cells = SweepSpec.parse(
            "exp=detector-accuracy,trace-stats;trace=zipf:duration=2;"
            "detector=countmin-hh,spacesaving;phi=0.01"
        ).expand()
        kinds = [(c.experiment, tuple(sorted(c.params))) for c in cells]
        assert kinds.count(("trace-stats", ())) == 1
        assert len([k for k in kinds if k[0] == "detector-accuracy"]) == 2

    def test_no_trace_axis_uses_default(self):
        cells = SweepSpec.parse("exp=detector-accuracy;phi=0.01,0.02").expand()
        assert len(cells) == 2
        assert all(c.trace is None for c in cells)

    def test_zip_lockstep(self):
        cells = SweepSpec.parse(
            "zip:exp=detector-accuracy;detector=countmin-hh,spacesaving;"
            "phi=0.01,0.02"
        ).expand()
        assert len(cells) == 2
        assert cells[0].params == {"detector": "countmin-hh", "phi": "0.01"}
        assert cells[1].params == {"detector": "spacesaving", "phi": "0.02"}

    def test_zip_unequal_lengths_rejected(self):
        with pytest.raises(SweepError, match="equal-length"):
            SweepSpec.parse(
                "zip:exp=detector-accuracy;"
                "detector=countmin-hh,spacesaving,misragries;phi=0.01,0.02"
            ).expand()

    def test_unknown_experiment_suggests_closest(self):
        with pytest.raises(ValueError, match="did you mean 'hidden-hhh'"):
            SweepSpec.parse("exp=hiden-hhh").expand()

    def test_unknown_axis_suggests_closest(self):
        with pytest.raises(SweepError, match="did you mean 'detector'"):
            SweepSpec.parse("exp=detector-accuracy;detectr=countmin-hh").expand()

    def test_unknown_detector_suggests_closest(self):
        with pytest.raises(SweepError, match="did you mean 'countmin-hh'"):
            SweepSpec.parse(
                "exp=detector-accuracy;detector=countmin-hhh"
            ).expand()

    def test_sweep_over_sweep_rejected(self):
        with pytest.raises(SweepError, match="meta-experiment"):
            SweepSpec.parse("exp=sweep").expand()

    def test_cell_label(self):
        cell = SweepCell(0, "a", "zipf:duration=2", {"phi": "0.01"})
        assert cell.label() == "exp=a;trace=zipf:duration=2;phi=0.01"
