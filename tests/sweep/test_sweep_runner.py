"""SweepRunner execution: backends, equivalence, and per-cell errors."""

import pytest

from repro.experiments import run_experiment
from repro.sweep import SweepError, SweepRunner, run_sweep

# >= 2 experiments x >= 2 scenarios x >= 2 detectors (the acceptance
# shape); detector/phi apply to detector-accuracy, hidden-hhh rides the
# same traces with its own tiny windows.
GRID = (
    "exp=detector-accuracy,hidden-hhh;"
    "trace=zipf:duration=4,ddos-burst:duration=4;"
    "detector=countmin-hh,spacesaving;phi=0.02,0.01;"
    "window_sizes=2;thresholds=0.05"
)


@pytest.fixture(scope="module")
def serial_result():
    return run_sweep(GRID)


class TestSerialBackend:
    def test_expected_cell_count(self, serial_result):
        # detector-accuracy: 2 traces x 2 detectors x 2 phis = 8;
        # hidden-hhh: 2 traces (its axes are window_sizes/thresholds).
        assert serial_result.num_cells == 10
        assert serial_result.num_ok == 10
        assert serial_result.num_errors == 0

    def test_cells_match_individual_runs(self, serial_result):
        """The acceptance core: every cell's rows byte-match the same
        configuration run standalone through the spec-to-artifact path."""
        for cell in serial_result.cells:
            standalone = run_experiment(
                cell.experiment,
                trace_specs=[cell.trace],
                overrides=dict(cell.params),
            )
            assert cell.rows == standalone.to_dict()["rows"], cell.label()
            assert cell.headline == standalone.to_dict()["headline"]

    def test_cell_provenance_carries_trace_spec(self, serial_result):
        for cell in serial_result.cells:
            assert cell.result["traces"][0]["spec"] == cell.trace

    def test_timings_recorded(self, serial_result):
        assert serial_result.timings["total_s"] > 0
        assert serial_result.timings["cells_per_s"] > 0
        assert all(cell.wall_s >= 0 for cell in serial_result.cells)


class TestProcessBackend:
    def test_process_rows_bit_identical_to_serial(self, serial_result):
        with SweepRunner("process", workers=2) as runner:
            parallel = runner.run(GRID)
        assert parallel.backend == "process"
        assert parallel.num_cells == serial_result.num_cells
        for serial_cell, process_cell in zip(
            serial_result.cells, parallel.cells
        ):
            assert process_cell.experiment == serial_cell.experiment
            assert process_cell.trace == serial_cell.trace
            assert process_cell.params == serial_cell.params
            assert process_cell.rows == serial_cell.rows
            assert process_cell.headline == serial_cell.headline


class TestErrors:
    def test_bad_cell_value_is_recorded_not_fatal(self):
        # phi=2 fails detector-accuracy's check at bind time inside the
        # cell; the sweep completes and records the error per cell.
        result = run_sweep(
            "exp=detector-accuracy;trace=zipf:duration=2;phi=2,0.02"
        )
        assert result.num_cells == 2
        assert result.num_errors == 1
        bad = [c for c in result.cells if c.status == "error"][0]
        assert "phi" in bad.error
        assert bad.result is None

    def test_unknown_experiment_fails_before_running(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_sweep("exp=nope-not-real;trace=zipf:duration=2")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            SweepRunner("gpu")

    def test_runner_repr(self):
        assert "serial" in repr(SweepRunner())


class TestMemoization:
    def test_shared_trace_built_once_across_cells(self):
        from repro.trace.spec import cache_info

        run_sweep(
            "exp=detector-accuracy;trace=zipf:duration=2;"
            "detector=countmin-hh,spacesaving,misragries;phi=0.02"
        )
        info = cache_info()
        # 3 cells, one spec: one miss, the rest hits.
        assert info.misses == 1
        assert info.hits >= 2
