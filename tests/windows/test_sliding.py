"""Tests for repro.windows.sliding."""

import pytest

from repro.windows.disjoint import DisjointWindows
from repro.windows.schedule import Window
from repro.windows.sliding import SlidingWindows


class TestSchedule:
    def test_step_advances_start(self):
        windows = list(SlidingWindows(5.0, 1.0).over_span(0.0, 10.0))
        assert windows[0] == Window(0.0, 5.0, 0)
        assert windows[1] == Window(1.0, 6.0, 1)
        assert windows[-1] == Window(5.0, 10.0, 5)

    def test_count_formula(self):
        # floor((span - size)/step) + 1 complete windows.
        windows = list(SlidingWindows(5.0, 1.0).over_span(0.0, 60.0))
        assert len(windows) == 56

    def test_disjoint_schedule_is_subset(self):
        """Every disjoint window appears in the sliding schedule (the
        property that makes hidden-HHH counts well-defined)."""
        sliding = set(
            (w.t0, w.t1) for w in SlidingWindows(5.0, 1.0).over_span(0.0, 30.0)
        )
        disjoint = set(
            (w.t0, w.t1) for w in DisjointWindows(5.0).over_span(0.0, 30.0)
        )
        assert disjoint <= sliding

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindows(0.0, 1.0)
        with pytest.raises(ValueError):
            SlidingWindows(5.0, 0.0)
        with pytest.raises(ValueError):
            SlidingWindows(5.0, 6.0)  # step > size

    def test_step_equal_size_is_disjoint(self):
        sliding = list(SlidingWindows(5.0, 5.0).over_span(0.0, 20.0))
        disjoint = list(DisjointWindows(5.0).over_span(0.0, 20.0))
        assert [(w.t0, w.t1) for w in sliding] == [
            (w.t0, w.t1) for w in disjoint
        ]

    def test_over_empty_trace(self):
        from repro.trace.container import Trace

        assert list(SlidingWindows(5.0).over_trace(Trace.empty())) == []


class TestWindowsCovering:
    def test_all_covering_windows_found(self):
        schedule = SlidingWindows(5.0, 1.0)
        covering = schedule.windows_covering(7.5)
        assert all(w.contains(7.5) for w in covering)
        assert len(covering) == 5  # starts at 3,4,5,6,7

    def test_before_start(self):
        assert SlidingWindows(5.0, 1.0).windows_covering(-1.0) == []
