"""Windowed driver with a sharded per-window detector."""

import pytest

from repro.core import make_detector
from repro.engine import ParallelRunner, ShardedDetector
from repro.trace import build_trace
from repro.windows.driver import WindowedDetectorDriver


@pytest.fixture(scope="module")
def trace():
    return build_trace("zipf:duration=30")


def _reports(driver, trace):
    return [(window.index, report) for window, report in driver.run(trace)]


def test_sharded_windows_report_like_single_stream(trace):
    """Per-window reports from a sharded detector match the single-stream
    driver when per-shard capacity is not the binding constraint."""
    single = WindowedDetectorDriver(
        lambda: make_detector("spacesaving", capacity=512),
        window_size=5.0, phi=0.05,
    )
    sharded = WindowedDetectorDriver(
        lambda: make_detector("spacesaving", capacity=512),
        window_size=5.0, phi=0.05, shards=4,
    )
    expected = _reports(single, trace)
    got = _reports(sharded, trace)
    assert len(expected) == len(got) > 0
    for (i, a), (j, b) in zip(expected, got):
        assert i == j
        assert set(a) == set(b)


def test_driver_builds_sharded_detectors(trace):
    driver = WindowedDetectorDriver(
        lambda: make_detector("countmin-hh"), window_size=5.0, shards=3
    )
    detector = driver.detector_factory()
    assert isinstance(detector, ShardedDetector)
    assert detector.num_shards == 3


def test_shards_one_keeps_plain_factory(trace):
    driver = WindowedDetectorDriver(
        lambda: make_detector("countmin-hh"), window_size=5.0, shards=1
    )
    assert not isinstance(driver.detector_factory(), ShardedDetector)


def test_shards_one_with_runner_still_uses_runner(trace):
    """A requested runner is honored even at one shard — the single shard
    routes through the runner's backend instead of being silently serial."""
    runner = ParallelRunner("serial")
    driver = WindowedDetectorDriver(
        lambda: make_detector("countmin-hh"), window_size=5.0,
        shards=1, runner=runner,
    )
    detector = driver.detector_factory()
    assert isinstance(detector, ShardedDetector)
    assert detector.runner is runner


def test_runner_requires_shards():
    with pytest.raises(ValueError, match="runner requires shards"):
        WindowedDetectorDriver(
            lambda: make_detector("countmin-hh"), window_size=5.0,
            runner=ParallelRunner("serial"),
        )


def test_bad_shard_count_rejected():
    with pytest.raises(ValueError, match="shards"):
        WindowedDetectorDriver(
            lambda: make_detector("countmin-hh"), window_size=5.0, shards=0
        )
