"""Tests for repro.windows.shrunk (the Figure 1c model)."""

import pytest

from repro.windows.shrunk import NestedShrunkWindows


class TestNestedShrunkWindows:
    def test_pairs_share_start(self):
        pairs = list(NestedShrunkWindows(10.0, 0.1).over_span(0.0, 30.0))
        assert len(pairs) == 3
        for base, shrunk in pairs:
            assert shrunk.t0 == base.t0
            assert shrunk.t1 == pytest.approx(base.t1 - 0.1)
            assert shrunk.index == base.index

    def test_shrunk_nested_in_baseline(self):
        for base, shrunk in NestedShrunkWindows(5.0, 0.05).over_span(0.0, 20.0):
            assert base.t0 <= shrunk.t0 and shrunk.t1 <= base.t1
            assert base.overlap(shrunk) == pytest.approx(shrunk.length)

    def test_validation(self):
        with pytest.raises(ValueError):
            NestedShrunkWindows(0.0, 0.1)
        with pytest.raises(ValueError):
            NestedShrunkWindows(5.0, 0.0)
        with pytest.raises(ValueError):
            NestedShrunkWindows(5.0, 5.0)  # delta == size

    def test_over_trace(self, tiny_trace):
        pairs = list(NestedShrunkWindows(1.0, 0.01).over_trace(tiny_trace))
        assert pairs
        assert pairs[0][0].t0 == tiny_trace.start_time

    def test_over_empty_trace(self):
        from repro.trace.container import Trace

        assert list(NestedShrunkWindows(1.0, 0.01).over_trace(Trace.empty())) == []
