"""Tests for repro.windows.disjoint."""

import pytest

from repro.windows.disjoint import DisjointWindows
from repro.windows.schedule import Window


class TestSchedule:
    def test_exact_tiling(self):
        windows = list(DisjointWindows(5.0).over_span(0.0, 20.0))
        assert len(windows) == 4
        assert windows[0] == Window(0.0, 5.0, 0)
        assert windows[-1] == Window(15.0, 20.0, 3)

    def test_windows_are_disjoint_and_contiguous(self):
        windows = list(DisjointWindows(3.0).over_span(0.0, 30.0))
        for a, b in zip(windows, windows[1:]):
            assert a.t1 == pytest.approx(b.t0)
            assert a.overlap(b) == 0.0

    def test_partial_window_dropped_by_default(self):
        windows = list(DisjointWindows(5.0).over_span(0.0, 12.0))
        assert len(windows) == 2

    def test_partial_window_included_on_request(self):
        windows = list(
            DisjointWindows(5.0, include_partial=True).over_span(0.0, 12.0)
        )
        assert len(windows) == 3
        assert windows[-1].length == pytest.approx(2.0)

    def test_nonzero_start(self):
        windows = list(DisjointWindows(2.0).over_span(10.0, 16.0))
        assert windows[0].t0 == 10.0
        assert len(windows) == 3

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            list(DisjointWindows(5.0).over_span(10.0, 10.0))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DisjointWindows(0.0)

    def test_over_trace(self, tiny_trace):
        windows = list(DisjointWindows(1.0).over_trace(tiny_trace))
        assert windows[0].t0 == tiny_trace.start_time
        assert windows[-1].t1 <= tiny_trace.end_time + 1e-9

    def test_over_empty_trace(self):
        from repro.trace.container import Trace

        assert list(DisjointWindows(1.0).over_trace(Trace.empty())) == []


class TestWindowOf:
    def test_maps_timestamp_to_window(self):
        schedule = DisjointWindows(5.0)
        w = schedule.window_of(12.3)
        assert w == Window(10.0, 15.0, 2)
        assert w.contains(12.3)

    def test_boundary_belongs_to_next_window(self):
        w = DisjointWindows(5.0).window_of(5.0)
        assert w.index == 1

    def test_before_start_rejected(self):
        with pytest.raises(ValueError):
            DisjointWindows(5.0).window_of(1.0, start=2.0)
