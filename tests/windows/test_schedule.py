"""Tests for repro.windows.schedule."""

import pytest

from repro.windows.schedule import Window, align_start


class TestWindow:
    def test_length(self):
        assert Window(1.0, 3.5).length == 2.5

    def test_contains_half_open(self):
        w = Window(1.0, 2.0)
        assert w.contains(1.0)
        assert w.contains(1.999)
        assert not w.contains(2.0)
        assert not w.contains(0.999)

    def test_overlap(self):
        a, b = Window(0.0, 5.0), Window(3.0, 8.0)
        assert a.overlap(b) == pytest.approx(2.0)
        assert b.overlap(a) == pytest.approx(2.0)
        assert a.overlap(Window(5.0, 6.0)) == 0.0

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Window(2.0, 1.0)

    def test_zero_length_allowed(self):
        assert Window(1.0, 1.0).length == 0.0

    def test_str(self):
        assert "#3" in str(Window(0.0, 1.0, 3))

    def test_ordering(self):
        assert Window(0.0, 1.0) < Window(1.0, 2.0)


def test_align_start_validates():
    assert align_start(1.0, 2.0) == (1.0, 2.0)
    with pytest.raises(ValueError):
        align_start(2.0, 2.0)
